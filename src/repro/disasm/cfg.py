"""Control-flow-graph recovery: leader detection, blocks, typed edges.

Edge semantics follow Section II-A of the paper: the weighted adjacency
matrix ``A`` has ``A[i, j] = 1`` when code naturally flows from block i
to j or jumps there, ``A[i, j] = 2`` for a call, and 0 otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.disasm.instruction import Instruction
from repro.disasm.program import Program

__all__ = [
    "BasicBlock",
    "CFG",
    "CFGBuildError",
    "EdgeKind",
    "build_cfg",
    "find_leaders",
]


class CFGBuildError(ValueError):
    """A program's control flow cannot be recovered (dangling target)."""

    def __init__(self, name: str, label: str) -> None:
        super().__init__(
            f"cannot build CFG for {name!r}: jump/call target {label!r} "
            "is not a defined label"
        )
        self.program_name: str = name
        self.label: str = label


class EdgeKind(enum.Enum):
    """Edge types; ``weight`` gives the paper's adjacency value."""

    FALLTHROUGH = "fallthrough"
    JUMP = "jump"
    CALL = "call"

    @property
    def weight(self) -> int:
        return 2 if self is EdgeKind.CALL else 1


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    index: int
    start: int  # index of first instruction in the program
    instructions: tuple[Instruction, ...]
    labels: tuple[str, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]

    def __str__(self) -> str:
        header = ", ".join(self.labels) if self.labels else f"block_{self.index}"
        body = "; ".join(str(i) for i in self.instructions)
        return f"<{header}: {body}>"


@dataclass
class CFG:
    """A recovered control flow graph.

    ``edges`` holds ``(source_block, target_block, kind)`` triples.
    """

    blocks: list[BasicBlock]
    edges: list[tuple[int, int, EdgeKind]]
    name: str = "program"

    @property
    def node_count(self) -> int:
        return len(self.blocks)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def adjacency_matrix(self) -> np.ndarray:
        """The paper's weighted adjacency: 1 fallthrough/jump, 2 call.

        Parallel edges of different kinds between the same pair keep the
        largest weight (a call dominates a fallthrough).
        """
        n = self.node_count
        matrix = np.zeros((n, n), dtype=np.int8)
        for source, target, kind in self.edges:
            matrix[source, target] = max(matrix[source, target], kind.weight)
        return matrix

    def out_degree(self, block_index: int) -> int:
        """Number of distinct successor blocks (parallel edges collapse)."""
        return len({t for s, t, _ in self.edges if s == block_index})

    def successors(self, block_index: int) -> list[int]:
        return [t for s, t, _ in self.edges if s == block_index]

    def predecessors(self, block_index: int) -> list[int]:
        return [s for s, t, _ in self.edges if t == block_index]

    def to_networkx(self) -> nx.DiGraph:
        graph = nx.DiGraph(name=self.name)
        for block in self.blocks:
            graph.add_node(block.index, block=block)
        for source, target, kind in self.edges:
            graph.add_edge(source, target, kind=kind.name, weight=kind.weight)
        return graph


def find_leaders(program: Program) -> list[int]:
    """Instruction indices that start basic blocks.

    Public so the ``repro.staticcheck`` verifier can independently
    recompute leaders and diff them against a CFG's block starts.
    """
    leaders: set[int] = {0}
    leaders.update(i for i in program.labels.values() if i < len(program))
    for i, instruction in enumerate(program.instructions):
        splits_after = instruction.ends_block or (
            instruction.is_call and instruction.target is not None
        )
        if splits_after and i + 1 < len(program):
            leaders.add(i + 1)
    return sorted(leaders)


def build_cfg(program: Program) -> CFG:
    """Recover basic blocks and typed edges from a linear program."""
    if not program.instructions:
        return CFG([], [], program.name)

    leaders = find_leaders(program)
    boundaries = leaders + [len(program)]

    blocks: list[BasicBlock] = []
    start_to_block: dict[int, int] = {}
    for index, (start, stop) in enumerate(zip(boundaries[:-1], boundaries[1:])):
        block = BasicBlock(
            index=index,
            start=start,
            instructions=tuple(program.instructions[start:stop]),
            labels=tuple(sorted(program.label_at(start))),
        )
        blocks.append(block)
        start_to_block[start] = index

    def block_of_label(label: str) -> int:
        try:
            return start_to_block[program.labels[label]]
        except KeyError:
            raise CFGBuildError(program.name, label) from None

    edges: list[tuple[int, int, EdgeKind]] = []
    for block in blocks:
        terminator = block.terminator
        next_start = block.start + len(block.instructions)
        has_next = next_start in start_to_block

        if terminator.is_unconditional_jump:
            edges.append((block.index, block_of_label(terminator.target), EdgeKind.JUMP))
        elif terminator.is_conditional_jump:
            edges.append((block.index, block_of_label(terminator.target), EdgeKind.JUMP))
            if has_next:
                edges.append((block.index, start_to_block[next_start], EdgeKind.FALLTHROUGH))
        elif terminator.is_return:
            pass  # control leaves the function
        elif terminator.is_call and terminator.target is not None:
            edges.append((block.index, block_of_label(terminator.target), EdgeKind.CALL))
            if has_next:
                edges.append((block.index, start_to_block[next_start], EdgeKind.FALLTHROUGH))
        elif has_next:
            edges.append((block.index, start_to_block[next_start], EdgeKind.FALLTHROUGH))

    return CFG(blocks, edges, program.name)
