"""The ``Instruction`` value type and its operand-level introspection."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.disasm.isa import (
    CONDITIONAL_JUMPS,
    InstructionCategory,
    UNCONDITIONAL_JUMPS,
    category_of,
    is_register,
)

__all__ = ["Instruction"]

# Immediate operands: decimal (42, -7) or hex in masm style (0FFh, 87BDC1D7h)
# or 0x-prefixed.
_NUMERIC_RE = re.compile(r"^-?(?:\d+|0x[0-9a-fA-F]+|[0-9][0-9a-fA-F]*h)$")
_STRING_RE = re.compile(r"^(?:'[^']*'|\"[^\"]*\")$")
_MEMORY_RE = re.compile(r"^(?:\w+:)?\[.*\]$")


@dataclass(frozen=True)
class Instruction:
    """One assembly instruction: a mnemonic plus string operands.

    Operands follow common disassembler notation: registers (``eax``),
    immediates (``42``, ``0FFh``), memory (``[ebp+8]``, ``ds:[eax]``),
    labels (``loc_401000``), API symbols (``ds:CreateThread``), and
    string literals (``'cmd.exe'``).
    """

    mnemonic: str
    operands: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "mnemonic", self.mnemonic.lower())
        # Validate eagerly: an unknown mnemonic is a generator bug.
        category_of(self.mnemonic)

    @property
    def category(self) -> InstructionCategory:
        return category_of(self.mnemonic)

    # ------------------------------------------------------------------
    # control-flow classification
    # ------------------------------------------------------------------
    @property
    def is_jump(self) -> bool:
        return self.mnemonic in CONDITIONAL_JUMPS or self.mnemonic in UNCONDITIONAL_JUMPS

    @property
    def is_conditional_jump(self) -> bool:
        return self.mnemonic in CONDITIONAL_JUMPS

    @property
    def is_unconditional_jump(self) -> bool:
        return self.mnemonic in UNCONDITIONAL_JUMPS

    @property
    def is_call(self) -> bool:
        return self.category is InstructionCategory.CALL

    @property
    def is_return(self) -> bool:
        return self.category is InstructionCategory.TERMINATION

    @property
    def ends_block(self) -> bool:
        """Whether control cannot simply continue past this instruction."""
        return self.is_jump or self.is_return

    @property
    def target(self) -> str | None:
        """The label this jump/call targets, if it targets a local label.

        Calls through API symbols (``ds:Sleep``) or registers have no
        local target and return ``None``.
        """
        if not (self.is_jump or self.is_call) or not self.operands:
            return None
        operand = self.operands[0]
        if is_register(operand) or _MEMORY_RE.match(operand) or ":" in operand:
            return None
        if operand.startswith("j_"):  # thunk to an imported symbol
            return None
        if _NUMERIC_RE.match(operand) or _STRING_RE.match(operand):
            return None
        return operand

    @property
    def api_symbol(self) -> str | None:
        """The Windows API symbol called, e.g. ``CreateThread``, if any."""
        if not self.is_call or not self.operands:
            return None
        operand = self.operands[0]
        if operand.startswith("ds:"):
            return operand[3:]
        if operand.startswith("j_"):
            return operand[2:]
        return None

    # ------------------------------------------------------------------
    # operand-level counts for Table I features
    # ------------------------------------------------------------------
    @property
    def numeric_constant_count(self) -> int:
        return sum(1 for op in self.operands if _NUMERIC_RE.match(op))

    @property
    def string_constant_count(self) -> int:
        return sum(1 for op in self.operands if _STRING_RE.match(op))

    # ------------------------------------------------------------------
    # register dataflow (used by the qualitative analysis)
    # ------------------------------------------------------------------
    @property
    def registers_read(self) -> frozenset[str]:
        found: set[str] = set()
        for operand in self.operands:
            for token in re.split(r"[\[\]+\-*,:\s]+", operand):
                if is_register(token):
                    found.add(token.lower())
        return frozenset(found)

    @property
    def writes_first_operand_register(self) -> bool:
        """True when the destination (first) operand is a bare register."""
        return bool(self.operands) and is_register(self.operands[0])

    @property
    def is_semantic_nop(self) -> bool:
        """NOP or an alias that provably changes nothing (``mov edx, edx``)."""
        if self.mnemonic == "nop":
            return True
        if self.mnemonic in {"mov", "xchg"} and len(self.operands) == 2:
            a, b = self.operands
            return is_register(a) and a.lower() == b.lower()
        return False

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} {', '.join(self.operands)}"
