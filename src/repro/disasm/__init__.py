"""Assembly-level substrate: instruction model, programs, CFG recovery.

This package replaces the IDA Pro / Ghidra stage of the paper's pipeline:
it defines an x86-like instruction set (rich enough to express every
pattern the paper's qualitative analysis discusses — XOR obfuscation,
semantic NOPs, call/return manipulation, Windows API calls), a program
container with labels, and a leader-based control-flow-graph builder
producing the typed edges the paper uses (fallthrough/jump = 1, call = 2).
"""

from repro.disasm.cfg import (
    BasicBlock,
    CFG,
    CFGBuildError,
    EdgeKind,
    build_cfg,
    find_leaders,
)
from repro.disasm.instruction import Instruction
from repro.disasm.isa import (
    CONDITIONAL_JUMPS,
    InstructionCategory,
    REGISTERS,
    UNCONDITIONAL_JUMPS,
    category_of,
    is_register,
)
from repro.disasm.parser import ParseError, parse_program
from repro.disasm.program import Program, ProgramBuilder

__all__ = [
    "InstructionCategory",
    "REGISTERS",
    "CONDITIONAL_JUMPS",
    "UNCONDITIONAL_JUMPS",
    "category_of",
    "is_register",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "CFG",
    "CFGBuildError",
    "BasicBlock",
    "EdgeKind",
    "build_cfg",
    "find_leaders",
    "parse_program",
    "ParseError",
]
