"""Parse textual assembly listings into :class:`Program` objects.

Accepts the same format :meth:`Program.to_text` emits — and, more
importantly, the flat listings an analyst can export from a
disassembler: one instruction per line, labels as ``name:`` lines,
``;`` comments, case-insensitive mnemonics.  This is the entry point
for running the pipeline on *your own* disassembly instead of the
synthetic corpus.
"""

from __future__ import annotations

from repro.disasm.instruction import Instruction
from repro.disasm.program import Program

__all__ = ["parse_program", "ParseError"]


class ParseError(ValueError):
    """A line could not be parsed; carries the 1-based line number."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number: int = line_number
        self.line: str = line
        self.reason: str = reason


def _split_operands(text: str) -> tuple[str, ...]:
    """Split an operand list on commas, respecting quotes and brackets."""
    operands: list[str] = []
    current: list[str] = []
    depth = 0
    quote: str | None = None
    for char in text:
        if quote:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if quote:
        raise ValueError("unterminated string literal")
    if depth != 0:
        raise ValueError("unbalanced brackets")
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return tuple(operands)


def parse_program(
    text: str,
    name: str = "parsed",
    require_targets: bool = True,
    max_instructions: int | None = None,
    max_line_length: int | None = None,
) -> Program:
    """Parse an assembly listing into a :class:`Program`.

    Raises :class:`ParseError` on malformed lines and ``ValueError`` on
    unknown mnemonics (via :class:`Instruction` validation).

    The input is treated as hostile: with ``require_targets`` (default)
    a jump/call to a local label that is never defined is a
    :class:`ParseError` — the same invariant ``ProgramBuilder.build``
    enforces — so CFG recovery never chases a dangling target.
    ``max_instructions`` / ``max_line_length`` bound resource use on
    adversarial listings (both unlimited by default).
    """
    instructions: list[Instruction] = []
    lines_of: list[int] = []  # 1-based source line per instruction
    labels: dict[str, int] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        if max_line_length is not None and len(raw) > max_line_length:
            raise ParseError(
                line_number, raw[:80] + "...", f"line longer than {max_line_length}"
            )
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label:
                raise ParseError(line_number, raw, "empty label")
            if label in labels:
                raise ParseError(line_number, raw, f"duplicate label {label!r}")
            labels[label] = len(instructions)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        try:
            operands = _split_operands(parts[1]) if len(parts) > 1 else ()
            instructions.append(Instruction(mnemonic, operands))
            lines_of.append(line_number)
        except ValueError as error:
            raise ParseError(line_number, raw, str(error)) from error
        if max_instructions is not None and len(instructions) > max_instructions:
            raise ParseError(
                line_number, raw, f"more than {max_instructions} instructions"
            )
    # Anchor trailing labels the same way ProgramBuilder does.
    if any(index == len(instructions) for index in labels.values()):
        instructions.append(Instruction("ret"))
        lines_of.append(len(text.splitlines()))
    if require_targets:
        for instruction, line_number in zip(instructions, lines_of):
            target = instruction.target
            if target is not None and target not in labels:
                raise ParseError(
                    line_number,
                    str(instruction),
                    f"jump/call target {target!r} never defined",
                )
    return Program(instructions, labels, name)
