"""Program container and a small builder DSL used by the corpus generators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disasm.instruction import Instruction

__all__ = ["Program", "ProgramBuilder"]


@dataclass
class Program:
    """A linear sequence of instructions plus label → index mapping.

    This is the artifact a disassembler would hand to CFG recovery:
    instruction at ``labels[name]`` is the first instruction of the
    region named ``name``.
    """

    instructions: list[Instruction]
    labels: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ValueError(
                    f"label {label!r} points at {index}, outside the program"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def label_at(self, index: int) -> list[str]:
        """All labels attached to instruction ``index``."""
        return [name for name, i in self.labels.items() if i == index]

    def to_text(self) -> str:
        """Disassembly-style listing (labels on their own lines)."""
        by_index: dict[int, list[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines: list[str] = []
        for i, instruction in enumerate(self.instructions):
            for name in sorted(by_index.get(i, [])):
                lines.append(f"{name}:")
            lines.append(f"    {instruction}")
        return "\n".join(lines)


class ProgramBuilder:
    """Incremental program construction with forward label references.

    >>> b = ProgramBuilder("demo")
    >>> b.emit("cmp", "eax", "0")
    >>> b.emit("je", "done")
    >>> b.emit("inc", "eax")
    >>> b.label("done")
    >>> b.emit("ret")
    >>> program = b.build()
    """

    def __init__(self, name: str = "program") -> None:
        self._name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._label_counter = 0

    def emit(self, mnemonic: str, *operands: str) -> None:
        self._instructions.append(Instruction(mnemonic, tuple(operands)))

    def emit_instruction(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def label(self, name: str) -> None:
        if name in self._labels:
            raise ValueError(f"label {name!r} defined twice")
        self._labels[name] = len(self._instructions)

    def fresh_label(self, prefix: str = "loc") -> str:
        """A program-unique label name (not yet placed)."""
        self._label_counter += 1
        return f"{prefix}_{self._label_counter:04d}"

    def build(self) -> Program:
        # A trailing label would point one past the end; anchor it by
        # terminating the program, which a real disassembler also sees.
        if any(i == len(self._instructions) for i in self._labels.values()):
            self.emit("ret")
        unresolved = self._unresolved_targets()
        if unresolved:
            raise ValueError(f"jump/call targets never defined: {sorted(unresolved)}")
        return Program(list(self._instructions), dict(self._labels), self._name)

    def _unresolved_targets(self) -> set[str]:
        wanted = {
            instr.target
            for instr in self._instructions
            if instr.target is not None
        }
        return wanted - set(self._labels)
