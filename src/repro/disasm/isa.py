"""Instruction-set definitions for the synthetic x86-like assembly.

The categories mirror Table I of the paper ("# Transfer instructions",
"# Call instructions", ...); every mnemonic the corpus generator can
emit maps to exactly one category.
"""

from __future__ import annotations

import enum

__all__ = [
    "InstructionCategory",
    "REGISTERS",
    "CONDITIONAL_JUMPS",
    "UNCONDITIONAL_JUMPS",
    "MNEMONIC_CATEGORIES",
    "category_of",
    "is_register",
]


class InstructionCategory(enum.Enum):
    """Block-level feature buckets from Table I of the paper."""

    TRANSFER = "transfer"
    CALL = "call"
    ARITHMETIC = "arithmetic"
    COMPARE = "compare"
    MOV = "mov"
    TERMINATION = "termination"
    DATA_DECLARATION = "data_declaration"
    OTHER = "other"


#: General-purpose x86 registers (32-bit plus common sub-registers).
REGISTERS: frozenset[str] = frozenset(
    {
        "eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp",
        "ax", "bx", "cx", "dx", "si", "di", "bp", "sp",
        "al", "ah", "bl", "bh", "cl", "ch", "dl", "dh",
    }
)

CONDITIONAL_JUMPS: frozenset[str] = frozenset(
    {"je", "jne", "jz", "jnz", "jg", "jge", "jl", "jle", "ja", "jae",
     "jb", "jbe", "js", "jns", "jo", "jno", "jc", "jnc", "loop", "loopne"}
)

UNCONDITIONAL_JUMPS: frozenset[str] = frozenset({"jmp"})

_TRANSFER = CONDITIONAL_JUMPS | UNCONDITIONAL_JUMPS

_ARITHMETIC = frozenset(
    {"add", "sub", "mul", "imul", "div", "idiv", "inc", "dec",
     "xor", "or", "and", "not", "neg", "shl", "shr", "sar", "sal",
     "rol", "ror", "adc", "sbb"}
)

_COMPARE = frozenset({"cmp", "test"})

_MOV = frozenset({"mov", "movzx", "movsx", "lea", "xchg", "push", "pop"})

_TERMINATION = frozenset({"ret", "retn", "hlt", "iret"})

_DATA_DECLARATION = frozenset({"db", "dw", "dd", "dq"})

_OTHER = frozenset({"nop", "int", "cdq", "std", "cld", "leave", "sti", "cli"})

MNEMONIC_CATEGORIES: dict[str, InstructionCategory] = {}
for _names, _category in (
    (_TRANSFER, InstructionCategory.TRANSFER),
    ({"call"}, InstructionCategory.CALL),
    (_ARITHMETIC, InstructionCategory.ARITHMETIC),
    (_COMPARE, InstructionCategory.COMPARE),
    (_MOV, InstructionCategory.MOV),
    (_TERMINATION, InstructionCategory.TERMINATION),
    (_DATA_DECLARATION, InstructionCategory.DATA_DECLARATION),
    (_OTHER, InstructionCategory.OTHER),
):
    for _name in _names:
        MNEMONIC_CATEGORIES[_name] = _category


def category_of(mnemonic: str) -> InstructionCategory:
    """Category of ``mnemonic``; unknown mnemonics raise ``ValueError``.

    Raising (rather than defaulting to OTHER) catches typos in the corpus
    generators, which would otherwise silently skew the Table I features.
    """
    try:
        return MNEMONIC_CATEGORIES[mnemonic.lower()]
    except KeyError:
        raise ValueError(f"unknown mnemonic: {mnemonic!r}") from None


def is_register(operand: str) -> bool:
    """Whether ``operand`` is a bare general-purpose register name."""
    return operand.lower() in REGISTERS
