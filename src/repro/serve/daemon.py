"""Service layer: admission queue, micro-batcher, explanation cache.

:class:`ServeDaemon` is the front door over an
:class:`~repro.serve.engine.InferenceEngine`.  Division of labor by
thread:

* **Caller threads** run admission — sanitize → verify → reduce →
  fingerprint → scale are pure or read-only, so any number of clients
  may be admitted concurrently — plus the cache lookup, then either
  return a cached response immediately or enqueue a ticket.
* **One service thread** drains the bounded queue, coalesces tickets
  into micro-batches for ``forward_batch`` within a latency budget,
  explains each request, and fills the cache.  Model execution stays on
  this single thread because the shared A-hat/embedding caches mutate
  plain ``OrderedDict``s.

Rejections are typed (:class:`~repro.serve.engine.RequestRejected`):
``backpressure`` when the bounded queue is full, ``oversize`` /
``quarantine`` from the ingestion gate.  Every decision increments a
``serve.*`` counter in the process-wide metrics registry.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.acfg import ACFG
from repro.malgen.corpus import LabeledSample
from repro.obs import add_counter
from repro.serve.engine import (
    EngineResponse,
    InferenceEngine,
    PreparedRequest,
    RequestRejected,
    _bare_sample,
    submission_from_text,
)

__all__ = ["DaemonConfig", "ExplanationCache", "ServeDaemon"]


@dataclass(frozen=True)
class DaemonConfig:
    """Service knobs: queue bound, batching budget, cache capacity."""

    #: Admission queue bound; a submission arriving when this many
    #: tickets are already waiting is rejected with ``backpressure``.
    max_queue_depth: int = 64
    #: Micro-batch size cap: the batcher flushes as soon as this many
    #: tickets are in hand, budget or not.
    max_batch: int = 8
    #: Latency budget: after the first ticket of a batch arrives, the
    #: batcher waits at most this long for more before flushing.
    batch_window_ms: float = 5.0
    #: Explanation cache capacity in entries (LRU eviction); 0 disables
    #: caching.
    cache_capacity: int = 256

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms cannot be negative")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity cannot be negative")


class ExplanationCache:
    """Content-addressed LRU of :class:`EngineResponse` by fingerprint.

    Thread-safe: caller threads look up while the service thread
    inserts.  A hit is returned as a ``cached=True`` copy of the stored
    response — the stored arrays are shared, not copied, so a cached
    response is bit-identical to the cold-path one.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[str, EngineResponse]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Fingerprints, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def get(self, fingerprint: str) -> EngineResponse | None:
        if self.capacity == 0:
            return None
        with self._lock:
            response = self._entries.get(fingerprint)
            if response is None:
                add_counter("serve.cache.miss")
                return None
            self._entries.move_to_end(fingerprint)
            add_counter("serve.cache.hit")
            return replace(response, cached=True)

    def put(self, response: EngineResponse) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[response.fingerprint] = replace(response, cached=False)
            self._entries.move_to_end(response.fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                add_counter("serve.cache.evicted")


class _Ticket:
    """One enqueued request: the prepared work plus its rendezvous."""

    __slots__ = ("request", "explainer", "done", "response", "error")

    def __init__(self, request: PreparedRequest, explainer: str | None):
        self.request = request
        self.explainer = explainer
        self.done = threading.Event()
        self.response: EngineResponse | None = None
        self.error: BaseException | None = None


_SHUTDOWN = object()


class ServeDaemon:
    """Long-running serving front door over one engine.

    Use as a context manager (``with ServeDaemon(engine) as daemon:``)
    or call :meth:`start`/:meth:`stop` explicitly.  :meth:`submit`
    blocks the calling thread until its response is ready, so driving
    the daemon concurrently means one caller thread per in-flight
    request — exactly what :mod:`repro.serve.loadgen` does.  ``stop``
    drains already-admitted tickets before the service thread exits; it
    must not race new submissions.
    """

    def __init__(self, engine: InferenceEngine, config: DaemonConfig | None = None):
        self.engine = engine
        self.config = config or DaemonConfig()
        self.cache = ExplanationCache(self.config.cache_capacity)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.max_queue_depth)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeDaemon":
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self._thread = threading.Thread(
            target=self._serve_loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._queue.put(_SHUTDOWN)  # blocking put: shutdown waits its turn
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client API (any thread)
    # ------------------------------------------------------------------
    def submit(
        self, sample: LabeledSample, explainer: str | None = None
    ) -> EngineResponse:
        """Serve one submission; blocks until its response is ready.

        Raises :class:`RequestRejected` (``quarantine`` / ``oversize``
        from admission, ``backpressure`` when the queue is full) or
        re-raises whatever the request's execution raised.
        """
        return self._serve(self.engine.admit(sample), explainer)

    def submit_text(
        self, text: str, name: str = "submission", explainer: str | None = None
    ) -> EngineResponse:
        return self.submit(submission_from_text(text, name=name), explainer=explainer)

    def submit_graph(self, graph: ACFG, name: str | None = None) -> EngineResponse:
        """Serve a bare (unscaled, unreduced) ACFG with no CFG attached."""
        return self._serve(
            self.engine.admit(_bare_sample(graph, name), graph=graph), None
        )

    def _serve(
        self, request: PreparedRequest, explainer: str | None
    ) -> EngineResponse:
        if self._thread is None:
            raise RuntimeError("daemon not started")
        add_counter("serve.submitted")
        # Only default-explainer responses are cached, so a request for
        # a specific other explainer never consults the cache.
        use_cache = explainer in (None, self.engine.default_explainer)
        if use_cache:
            cached = self.cache.get(request.fingerprint)
            if cached is not None:
                return cached
        ticket = _Ticket(request, explainer)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            add_counter("serve.rejected.backpressure")
            raise RequestRejected(
                "backpressure",
                f"admission queue full ({self.config.max_queue_depth} waiting)",
            ) from None
        ticket.done.wait()
        if ticket.error is not None:
            raise ticket.error
        return ticket.response

    # ------------------------------------------------------------------
    # service thread
    # ------------------------------------------------------------------
    def _collect_batch(self, first: _Ticket) -> tuple[list[_Ticket], bool]:
        """Coalesce tickets until ``max_batch`` or the latency budget.

        Returns ``(batch, saw_shutdown)``; the sentinel is consumed
        here (never re-enqueued — a blocking re-put could deadlock
        against a full queue) and reported via the flag.
        """
        batch = [first]
        deadline = time.monotonic() + self.config.batch_window_ms / 1000.0
        while len(batch) < self.config.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                add_counter("serve.batch.flush_on_budget")
                return batch, False
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                add_counter("serve.batch.flush_on_budget")
                return batch, False
            if item is _SHUTDOWN:
                add_counter("serve.batch.flush_on_budget")
                return batch, True
            batch.append(item)
        add_counter("serve.batch.flush_on_size")
        return batch, False

    def _execute_batch(self, batch: list[_Ticket]) -> None:
        add_counter("serve.batch.count")
        add_counter("serve.batch.tickets", len(batch))
        try:
            probabilities = self.engine.classify([t.request for t in batch])
        except BaseException as error:  # poisoned batch: fail its tickets
            for ticket in batch:
                ticket.error = error
                ticket.done.set()
            return
        for ticket, probs in zip(batch, probabilities):
            try:
                response = self.engine.execute(
                    ticket.request, probabilities=probs, explainer=ticket.explainer
                )
            except BaseException as error:
                ticket.error = error
            else:
                if ticket.explainer in (None, self.engine.default_explainer):
                    self.cache.put(response)
                ticket.response = response
            ticket.done.set()

    def _serve_loop(self) -> None:
        draining = False
        while True:
            if draining and self._queue.empty():
                return
            item = self._queue.get()
            if item is _SHUTDOWN:
                draining = True
                continue
            batch, saw_shutdown = self._collect_batch(item)
            draining = draining or saw_shutdown
            self._execute_batch(batch)
