"""Service layer: admission queue, micro-batcher, cache, resilience.

:class:`ServeDaemon` is the front door over an
:class:`~repro.serve.engine.InferenceEngine`.  Division of labor by
thread:

* **Caller threads** run admission — sanitize → verify → reduce →
  fingerprint → scale are pure or read-only, so any number of clients
  may be admitted concurrently — plus the cache lookup, then either
  return a cached response immediately or enqueue a ticket.
* **One service thread** drains the bounded queue, coalesces tickets
  into micro-batches for ``forward_batch`` within a latency budget,
  explains each request, and fills the cache.  Model execution stays on
  this single thread because the shared A-hat/embedding caches mutate
  plain ``OrderedDict``s.

Rejections are typed (:class:`~repro.serve.engine.RequestRejected`):
``backpressure`` when the bounded queue is full, ``oversize`` /
``quarantine`` from the ingestion gate.  Every decision increments a
``serve.*`` counter in the process-wide metrics registry.

**Resilience** (:mod:`repro.resilience`): every stage boundary —
sanitize, verify, reduce, classify, explain — runs under a per-request
:class:`~repro.resilience.Deadline`, a bounded jittered retry for
transient faults, and a per-stage :class:`~repro.resilience
.CircuitBreaker`.  An explainer that keeps failing falls down the
degradation ladder (requested explainer → ``Gradient`` saliency →
classification-only) and the submitter receives a typed
:class:`~repro.serve.engine.DegradedResponse` instead of an exception;
the only exceptions :meth:`ServeDaemon.submit` raises are the
deliberate :class:`RequestRejected` verdicts.  A
:class:`~repro.resilience.FaultPlan` passed to the constructor injects
deterministic chaos at the same boundaries for the chaos benchmarks.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.acfg import ACFG
from repro.malgen.corpus import LabeledSample
from repro.nn.guards import assert_finite_array
from repro.obs import add_counter
from repro.resilience import (
    SERVING_STAGES,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    corrupt_array,
    failure_kind,
)
from repro.serve.engine import (
    DegradedResponse,
    EngineResponse,
    InferenceEngine,
    PreparedRequest,
    RequestRejected,
    _bare_sample,
    submission_from_text,
)

__all__ = ["DaemonConfig", "ExplanationCache", "ServeDaemon"]

#: The admission stages run on caller threads, in order.
_ADMISSION_STAGES = ("sanitize", "verify", "reduce")


class _BreakerOpen(RuntimeError):
    """Internal: a stage's circuit breaker shed this request."""

    def __init__(self, stage: str):
        super().__init__(f"circuit breaker open for stage {stage!r}")
        self.stage = stage


@dataclass(frozen=True)
class DaemonConfig:
    """Service knobs: queue bound, batching budget, cache, resilience."""

    #: Admission queue bound; a submission arriving when this many
    #: tickets are already waiting is rejected with ``backpressure``.
    max_queue_depth: int = 64
    #: Micro-batch size cap: the batcher flushes as soon as this many
    #: tickets are in hand, budget or not.
    max_batch: int = 8
    #: Latency budget: after the first ticket of a batch arrives, the
    #: batcher waits at most this long for more before flushing.
    batch_window_ms: float = 5.0
    #: Explanation cache capacity in entries (LRU eviction); 0 disables
    #: caching.
    cache_capacity: int = 256
    #: Deadlines, retry, breakers and the degradation ladder.
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms cannot be negative")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity cannot be negative")


class ExplanationCache:
    """Content-addressed LRU of :class:`EngineResponse` by fingerprint.

    Thread-safe: caller threads look up while the service thread
    inserts.  A hit is returned as a ``cached=True`` copy of the stored
    response — the stored arrays are shared, not copied, so a cached
    response is bit-identical to the cold-path one.  Degraded responses
    are never stored: a fault must not be replayed from the cache after
    the faulting condition has passed.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[str, EngineResponse]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Fingerprints, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def get(self, fingerprint: str) -> EngineResponse | None:
        if self.capacity == 0:
            return None
        with self._lock:
            response = self._entries.get(fingerprint)
            if response is None:
                add_counter("serve.cache.miss")
                return None
            self._entries.move_to_end(fingerprint)
            add_counter("serve.cache.hit")
            return replace(response, cached=True)

    def put(self, response: EngineResponse) -> None:
        if self.capacity == 0:
            return
        if getattr(response, "degraded", False):
            return
        with self._lock:
            self._entries[response.fingerprint] = replace(response, cached=False)
            self._entries.move_to_end(response.fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                add_counter("serve.cache.evicted")


class _Ticket:
    """One enqueued request: the prepared work plus its rendezvous."""

    __slots__ = ("request", "explainer", "done", "response", "error")

    def __init__(self, request: PreparedRequest, explainer: str | None):
        self.request = request
        self.explainer = explainer
        self.done = threading.Event()
        self.response: EngineResponse | None = None
        self.error: BaseException | None = None


_SHUTDOWN = object()


class ServeDaemon:
    """Long-running serving front door over one engine.

    Use as a context manager (``with ServeDaemon(engine) as daemon:``)
    or call :meth:`start`/:meth:`stop` explicitly.  :meth:`submit`
    blocks the calling thread until its response is ready, so driving
    the daemon concurrently means one caller thread per in-flight
    request — exactly what :mod:`repro.serve.loadgen` does.  ``stop``
    drains already-admitted tickets before the service thread exits; it
    must not race new submissions.

    ``fault_plan`` arms deterministic chaos injection at every stage
    boundary (see :class:`~repro.resilience.FaultPlan`); ``None`` or an
    empty plan leaves the request path bit-identical to an uninjected
    daemon.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        config: DaemonConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ):
        self.engine = engine
        self.config = config or DaemonConfig()
        self.resilience = self.config.resilience
        self.cache = ExplanationCache(self.config.cache_capacity)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.config.max_queue_depth)
        self._thread: threading.Thread | None = None
        self._injector = (
            FaultInjector(fault_plan)
            if fault_plan is not None and not fault_plan.empty
            else None
        )
        self._breakers = {
            stage: CircuitBreaker(
                stage,
                failure_threshold=self.resilience.breaker_threshold,
                cooldown_ms=self.resilience.breaker_cooldown_ms,
            )
            for stage in SERVING_STAGES
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServeDaemon":
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self._thread = threading.Thread(
            target=self._serve_loop, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._queue.put(_SHUTDOWN)  # blocking put: shutdown waits its turn
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # client API (any thread)
    # ------------------------------------------------------------------
    def submit(
        self, sample: LabeledSample, explainer: str | None = None
    ) -> EngineResponse:
        """Serve one submission; blocks until its response is ready.

        Raises :class:`RequestRejected` (``quarantine`` / ``oversize``
        from admission, ``backpressure`` when the queue is full) — the
        deliberate verdicts.  Every *failure* comes back as a typed
        :class:`DegradedResponse` instead of an exception.
        """
        return self._serve(sample, None, explainer)

    def submit_text(
        self, text: str, name: str = "submission", explainer: str | None = None
    ) -> EngineResponse:
        return self.submit(submission_from_text(text, name=name), explainer=explainer)

    def submit_graph(self, graph: ACFG, name: str | None = None) -> EngineResponse:
        """Serve a bare (unscaled, unreduced) ACFG with no CFG attached."""
        return self._serve(_bare_sample(graph, name), graph, None)

    def _serve(
        self,
        sample: LabeledSample,
        graph: ACFG | None,
        explainer: str | None,
    ) -> EngineResponse:
        if self._thread is None:
            raise RuntimeError("daemon not started")
        add_counter("serve.submitted")
        deadline = None
        if self.resilience.deadline_ms is not None:
            deadline = Deadline.after_ms(self.resilience.deadline_ms)
        admitted = self._admit_resilient(sample, graph, explainer, deadline)
        if isinstance(admitted, DegradedResponse):
            return admitted
        request = admitted
        # Only default-explainer responses are cached, so a request for
        # a specific other explainer never consults the cache.
        use_cache = explainer in (None, self.engine.default_explainer)
        if use_cache:
            cached = self.cache.get(request.fingerprint)
            if cached is not None:
                return cached
        ticket = _Ticket(request, explainer)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            add_counter("serve.rejected.backpressure")
            raise RequestRejected(
                "backpressure",
                f"admission queue full ({self.config.max_queue_depth} waiting)",
            ) from None
        if deadline is None:
            ticket.done.wait()
        else:
            # The service thread resolves every ticket (it drains on
            # stop and survives batch failures); the generous grace is
            # a last-resort guard against a hung submitter.
            budget = deadline.remaining_ms() / 1000.0 + 30.0
            if not ticket.done.wait(timeout=budget):
                return self._degraded_unclassified(
                    ticket.request,
                    ticket.explainer,
                    "deadline",
                    DeadlineExceeded("service", deadline.budget_ms),
                )
        if ticket.error is not None:
            raise ticket.error
        return ticket.response

    # ------------------------------------------------------------------
    # resilient admission (caller threads)
    # ------------------------------------------------------------------
    def _admit_resilient(
        self,
        sample: LabeledSample,
        graph: ACFG | None,
        explainer: str | None,
        deadline: Deadline | None,
    ):
        """Admission with breakers, fault injection and bounded retry.

        Returns a :class:`PreparedRequest` on success, a
        :class:`DegradedResponse` when admission failed persistently,
        and raises only :class:`RequestRejected` (deliberate verdicts
        neither retry nor trip breakers — a hostile input is the
        pipeline *working*).
        """
        retry = self.resilience.retry
        key = getattr(sample.program, "name", "submission")
        for attempt in range(retry.max_retries + 1):
            entered: list[str] = []

            def hook(stage: str, _attempt: int = attempt) -> None:
                entered.append(stage)
                if not self._breakers[stage].allow():
                    raise _BreakerOpen(stage)
                if self._injector is not None:
                    self._injector.fire(stage, key, _attempt, has_output=False)

            try:
                request = self.engine.admit(
                    sample, graph=graph, deadline=deadline, stage_hook=hook
                )
            except RequestRejected:
                # The stages that ran did their job; resolve their
                # breaker probes as successes before re-raising.
                for stage in entered:
                    self._breakers[stage].record_success()
                raise
            except _BreakerOpen as error:
                for stage in entered[:-1]:
                    self._breakers[stage].record_success()
                return self._degraded_unadmitted(
                    key, explainer, "breaker_open", error.stage, error
                )
            except DeadlineExceeded as error:
                for stage in entered:
                    if stage != error.stage:
                        self._breakers[stage].record_success()
                return self._degraded_unadmitted(
                    key, explainer, "deadline", error.stage, error
                )
            except BaseException as error:
                failed = getattr(error, "stage", None)
                if failed not in self._breakers:
                    failed = entered[-1] if entered else "sanitize"
                for stage in entered:
                    if stage == failed:
                        break
                    self._breakers[stage].record_success()
                self._breakers[failed].record_failure()
                if attempt < retry.max_retries:
                    delay = retry.delay(attempt + 1, key=f"admit:{key}")
                    if (
                        deadline is not None
                        and deadline.remaining_ms() <= delay * 1000.0
                    ):
                        return self._degraded_unadmitted(
                            key, explainer, "deadline", failed,
                            DeadlineExceeded(failed, deadline.budget_ms),
                        )
                    add_counter("resilience.retry.admit")
                    if delay > 0:
                        time.sleep(delay)
                    continue
                return self._degraded_unadmitted(
                    key, explainer, "unavailable", failed, error
                )
            else:
                for stage in entered:
                    self._breakers[stage].record_success()
                return request
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # degraded-response builders
    # ------------------------------------------------------------------
    def _degraded_unadmitted(
        self,
        name: str,
        explainer: str | None,
        reason: str,
        stage: str,
        error: BaseException | None,
    ) -> DegradedResponse:
        """Nothing beyond the typed record is meaningful."""
        add_counter(f"resilience.degraded.{reason}")
        families = getattr(self.engine, "families", ()) or ()
        return DegradedResponse(
            name=name,
            fingerprint="",
            probabilities=np.zeros(len(families), dtype=float),
            predicted_class=-1,
            family="unknown",
            explainer=explainer or getattr(self.engine, "default_explainer", ""),
            explanation=None,
            degradation_reason=reason,
            failed_stage=stage,
            failure_kind=failure_kind(error) if error is not None else "exception",
            detail=str(error) if error is not None else "",
        )

    def _degraded_unclassified(
        self,
        request: PreparedRequest,
        explainer: str | None,
        reason: str,
        error: BaseException | None,
        stage: str = "classify",
    ) -> DegradedResponse:
        """Admitted but never classified: placeholder class fields."""
        add_counter(f"resilience.degraded.{reason}")
        families = getattr(self.engine, "families", ()) or ()
        return DegradedResponse(
            name=getattr(request.sample.program, "name", ""),
            fingerprint=request.fingerprint,
            probabilities=np.zeros(len(families), dtype=float),
            predicted_class=-1,
            family="unknown",
            explainer=explainer or getattr(self.engine, "default_explainer", ""),
            explanation=None,
            degradation_reason=reason,
            failed_stage=stage,
            failure_kind=failure_kind(error) if error is not None else "exception",
            detail=str(error) if error is not None else "",
        )

    # ------------------------------------------------------------------
    # resilient stage runner (service thread)
    # ------------------------------------------------------------------
    def _run_stage(
        self,
        stage: str,
        key: str,
        deadline: Deadline | None,
        func,
        attempt_offset: int = 0,
        array_output: bool = True,
    ):
        """Deadline check → breaker gate → fault injection → bounded retry.

        ``attempt_offset`` keeps the injected-fault attempt index
        monotonic across explainer ladder rungs, so a fallback rung
        re-rolls its faults instead of deterministically replaying the
        rung above it.  Raises :class:`DeadlineExceeded` /
        :class:`_BreakerOpen` immediately (no retry — those are
        decisions, not faults) and the last error once retries are
        exhausted.
        """
        retry = self.resilience.retry
        breaker = self._breakers[stage]
        for attempt in range(retry.max_retries + 1):
            if deadline is not None:
                deadline.check(stage)
            if not breaker.allow():
                raise _BreakerOpen(stage)
            try:
                kind = None
                if self._injector is not None:
                    kind = self._injector.fire(
                        stage, key, attempt_offset + attempt,
                        has_output=array_output,
                    )
                value = func()
                if array_output:
                    value = np.asarray(value, dtype=float)
                    if kind == "nonfinite":
                        value = corrupt_array(value)
                    assert_finite_array(value, f"serving {stage} output")
            except BaseException as error:
                breaker.record_failure()
                if attempt < retry.max_retries:
                    add_counter(f"resilience.retry.{stage}")
                    delay = retry.delay(attempt + 1, key=f"{stage}:{key}")
                    if (
                        deadline is not None
                        and deadline.remaining_ms() <= delay * 1000.0
                    ):
                        raise DeadlineExceeded(
                            stage, deadline.budget_ms
                        ) from error
                    if delay > 0:
                        time.sleep(delay)
                    continue
                raise
            else:
                breaker.record_success()
                return value
        raise AssertionError("unreachable")  # pragma: no cover

    def _classify_ticket(self, ticket: _Ticket, row) -> np.ndarray:
        """Per-ticket classify: consume the batched row once, recompute
        individually on retry (isolating a poisoned batch to the ticket
        that poisoned it)."""
        request = ticket.request
        held = {"row": row}

        def func():
            value = held["row"]
            if value is not None:
                held["row"] = None
                return value
            return self.engine.classify([request])[0]

        return self._run_stage(
            "classify", request.fingerprint, request.deadline, func
        )

    def _respond_ticket(self, ticket: _Ticket, probabilities: np.ndarray) -> None:
        """Walk the explainer degradation ladder and resolve the ticket."""
        engine = self.engine
        request = ticket.request
        requested = ticket.explainer or engine.default_explainer
        available = getattr(engine, "explainers", None)
        ladder = [requested]
        if available is not None:
            for name in self.resilience.fallback_explainers:
                if name != requested and name in available:
                    ladder.append(name)
        per_rung = self.resilience.retry.max_retries + 1
        last_error: BaseException | None = None
        for rung, name in enumerate(ladder):
            try:
                response = self._run_stage(
                    "explain",
                    request.fingerprint,
                    request.deadline,
                    lambda name=name: engine.execute(
                        request, probabilities=probabilities, explainer=name
                    ),
                    attempt_offset=rung * per_rung,
                    array_output=False,
                )
            except (DeadlineExceeded, _BreakerOpen) as error:
                last_error = error
                break  # no budget / breaker shed: skip straight down
            except BaseException as error:
                last_error = error
                continue  # next rung
            else:
                if rung == 0:
                    if ticket.explainer in (None, engine.default_explainer):
                        self.cache.put(response)
                    ticket.response = response
                else:
                    add_counter("resilience.degraded.explainer_fallback")
                    ticket.response = DegradedResponse(
                        name=response.name,
                        fingerprint=response.fingerprint,
                        probabilities=response.probabilities,
                        predicted_class=response.predicted_class,
                        family=response.family,
                        explainer=name,
                        explanation=response.explanation,
                        degradation_reason="explainer_fallback",
                        failed_stage="explain",
                        failure_kind=(
                            failure_kind(last_error)
                            if last_error is not None else "exception"
                        ),
                        detail=str(last_error) if last_error is not None else "",
                    )
                ticket.done.set()
                return
        # Every rung failed (or a deadline/breaker cut the ladder):
        # classification-only, the real class fields are still served.
        if isinstance(last_error, DeadlineExceeded):
            reason = "deadline"
        elif isinstance(last_error, _BreakerOpen):
            reason = "breaker_open"
        else:
            reason = "classification_only"
        add_counter(f"resilience.degraded.{reason}")
        probabilities = np.asarray(probabilities, dtype=float)
        predicted = int(np.argmax(probabilities)) if probabilities.size else -1
        families = getattr(engine, "families", ()) or ()
        family = (
            families[predicted]
            if 0 <= predicted < len(families)
            else str(predicted)
        )
        ticket.response = DegradedResponse(
            name=getattr(request.sample.program, "name", ""),
            fingerprint=request.fingerprint,
            probabilities=probabilities,
            predicted_class=predicted,
            family=family,
            explainer=requested,
            explanation=None,
            degradation_reason=reason,
            failed_stage="explain",
            failure_kind=(
                failure_kind(last_error) if last_error is not None else "exception"
            ),
            detail=str(last_error) if last_error is not None else "",
        )
        ticket.done.set()

    # ------------------------------------------------------------------
    # service thread
    # ------------------------------------------------------------------
    def _resolve_expired(self, ticket: _Ticket) -> bool:
        """Drop a ticket whose deadline passed while it queued."""
        deadline = getattr(ticket.request, "deadline", None)
        if deadline is None or not deadline.expired:
            return False
        add_counter("resilience.deadline.dropped")
        ticket.response = self._degraded_unclassified(
            ticket.request,
            ticket.explainer,
            "deadline",
            DeadlineExceeded("queue", deadline.budget_ms),
            stage="queue",
        )
        ticket.done.set()
        return True

    def _collect_batch(self, first: _Ticket) -> tuple[list[_Ticket], bool]:
        """Coalesce tickets until ``max_batch`` or the latency budget.

        Returns ``(batch, saw_shutdown)``; the sentinel is consumed
        here (never re-enqueued — a blocking re-put could deadlock
        against a full queue) and reported via the flag.  Tickets whose
        deadline expired while queueing are resolved as degraded and
        never batched, and a non-positive remaining budget can never
        reach ``queue.get`` (``timeout=`` must be positive).
        """
        batch = [first]
        deadline = time.monotonic() + self.config.batch_window_ms / 1000.0
        while len(batch) < self.config.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                add_counter("serve.batch.flush_on_budget")
                return batch, False
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                add_counter("serve.batch.flush_on_budget")
                return batch, False
            if item is _SHUTDOWN:
                add_counter("serve.batch.flush_on_budget")
                return batch, True
            if self._resolve_expired(item):
                continue
            batch.append(item)
        add_counter("serve.batch.flush_on_size")
        return batch, False

    def _execute_batch(self, batch: list[_Ticket]) -> None:
        add_counter("serve.batch.count")
        add_counter("serve.batch.tickets", len(batch))
        # Batched classify fast path: skipped when the breaker is not
        # closed (per-ticket classify will gate each request through
        # it) and abandoned wholesale on failure — the per-ticket path
        # then isolates a poisoned request to its own ticket instead of
        # failing every neighbor in the batch.
        rows = None
        if self._breakers["classify"].state == "closed":
            try:
                rows = self.engine.classify([t.request for t in batch])
            except BaseException:
                rows = None
        for index, ticket in enumerate(batch):
            row = rows[index] if rows is not None else None
            try:
                probabilities = self._classify_ticket(ticket, row)
            except RequestRejected as error:
                ticket.error = error
                ticket.done.set()
            except BaseException as error:
                if isinstance(error, DeadlineExceeded):
                    reason = "deadline"
                elif isinstance(error, _BreakerOpen):
                    reason = "breaker_open"
                else:
                    reason = "unavailable"
                ticket.response = self._degraded_unclassified(
                    ticket.request, ticket.explainer, reason, error
                )
                ticket.done.set()
            else:
                self._respond_ticket(ticket, probabilities)

    def _serve_loop(self) -> None:
        draining = False
        while True:
            if draining and self._queue.empty():
                return
            item = self._queue.get()
            if item is _SHUTDOWN:
                draining = True
                continue
            if self._resolve_expired(item):
                continue
            batch, saw_shutdown = self._collect_batch(item)
            draining = draining or saw_shutdown
            try:
                self._execute_batch(batch)
            except BaseException as error:  # no lost tickets, ever
                add_counter("serve.batch.aborted")
                for ticket in batch:
                    if not ticket.done.is_set():
                        ticket.response = self._degraded_unclassified(
                            ticket.request, ticket.explainer, "unavailable", error
                        )
                        ticket.done.set()
