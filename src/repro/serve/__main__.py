"""Serving CLI.

``python -m repro.serve`` trains a tiny pipeline, starts the daemon
in-process and serves a handful of submissions — including a repeat
that must hit the explanation cache — then prints the ``serve.*``
counters.  ``python -m repro.serve bench`` runs the closed-loop SLO
benchmark at several concurrency levels and writes
``BENCH_serving.json`` (to the repo root or ``$REPRO_BENCH_DIR``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path


def _tiny_config(samples_per_family: int):
    from repro.eval.profile import PROFILE_CONFIG

    return replace(
        PROFILE_CONFIG,
        samples_per_family=samples_per_family,
        gnn_epochs=8,
        explainer_epochs=10,
        gnnexplainer_epochs=3,
        pgexplainer_epochs=2,
        subgraphx_iterations=4,
        subgraphx_shapley_samples=1,
    )


def _bench_path(name: str) -> Path:
    override = os.environ.get("REPRO_BENCH_DIR")
    base = Path(override) if override else Path.cwd()
    base.mkdir(parents=True, exist_ok=True)
    return base / name


def _build_engine(samples_per_family: int, explainer: str):
    from repro.eval.pipeline import run_pipeline

    print(f"[serve] training tiny pipeline ({samples_per_family} graphs/family)...")
    artifacts = run_pipeline(_tiny_config(samples_per_family))
    return artifacts, artifacts.engine(explainer=explainer)


def _demo(args) -> int:
    from repro.obs import metrics_registry
    from repro.serve import DaemonConfig, ServeDaemon

    artifacts, engine = _build_engine(args.samples, args.explainer)
    submissions = artifacts.corpus[: args.requests]
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, DaemonConfig()) as daemon:
        print(f"[serve] daemon up; serving {len(submissions)} submissions")
        for sample in submissions:
            start = time.perf_counter()
            response = daemon.submit(sample)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            top = ", ".join(
                str(i) for i in response.explanation.node_order[:5]
            )
            print(
                f"  {response.name:<24} -> {response.family:<12} "
                f"p={response.probabilities[response.predicted_class]:.3f} "
                f"top blocks [{top}] "
                f"{'cached' if response.cached else 'cold':>6} "
                f"{elapsed_ms:8.1f} ms"
            )
        # The repeat must be served from the content-addressed cache.
        start = time.perf_counter()
        repeat = daemon.submit(submissions[0])
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        print(
            f"  {repeat.name:<24} -> {repeat.family:<12} "
            f"{'cached' if repeat.cached else 'cold':>6} {elapsed_ms:8.1f} ms"
        )
    delta = metrics_registry().delta_since(before)
    print("[serve] counters:")
    for name in sorted(delta):
        if name.startswith("serve."):
            print(f"  {name:<32} {delta[name]}")
    return 0 if repeat.cached else 1


def _bench(args) -> int:
    from repro.acfg.graph import from_sample
    from repro.serve import DaemonConfig
    from repro.serve.loadgen import run_slo_benchmark

    artifacts, engine = _build_engine(args.samples, args.explainer)
    graphs = [from_sample(sample) for sample in artifacts.corpus]
    report = run_slo_benchmark(
        engine,
        graphs,
        levels=tuple(args.levels),
        requests_per_client=args.requests_per_client,
        daemon_config=DaemonConfig(cache_capacity=args.cache_capacity),
    )
    path = Path(args.out) if args.out else _bench_path("BENCH_serving.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[serve] wrote {path}")
    for level, numbers in report["serving"].items():
        print(
            f"  {level:<16} p50 {numbers['latency_p50_ms']:8.1f} ms   "
            f"p99 {numbers['latency_p99_ms']:8.1f} ms   "
            f"{numbers['graphs_per_sec']:6.2f} graphs/s   "
            f"{numbers['cache_hits']} cache hits"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the explanation-serving daemon (demo) or its "
        "SLO benchmark.",
    )
    parser.add_argument(
        "--samples", type=int, default=2,
        help="graphs per family for the tiny backing pipeline",
    )
    parser.add_argument(
        "--explainer", default="CFGExplainer",
        help="default explainer served by the engine",
    )
    parser.add_argument(
        "--requests", type=int, default=6,
        help="demo submissions to serve (before the cached repeat)",
    )
    subparsers = parser.add_subparsers(dest="command")
    bench = subparsers.add_parser(
        "bench",
        help="closed-loop SLO benchmark, writes BENCH_serving.json",
    )
    bench.add_argument(
        "--levels", type=int, nargs="+", default=[1, 2, 4],
        help="concurrency levels to sweep",
    )
    bench.add_argument(
        "--requests-per-client", type=int, default=12,
        help="closed-loop requests each client issues",
    )
    bench.add_argument(
        "--cache-capacity", type=int, default=256,
        help="explanation cache entries (0 disables caching)",
    )
    bench.add_argument(
        "--out", default=None,
        help="artifact path (default: BENCH_serving.json in cwd or "
        "$REPRO_BENCH_DIR)",
    )
    args = parser.parse_args(argv)
    if args.command == "bench":
        return _bench(args)
    return _demo(args)


if __name__ == "__main__":
    sys.exit(main())
