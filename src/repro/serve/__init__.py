"""Layered serving system: engine → daemon → load generator.

Turns the one-shot pipeline into a long-running service (the ROADMAP's
"system serving traffic" refactor).  Three layers:

* :mod:`repro.serve.engine` — :class:`InferenceEngine`, frozen model
  artifacts plus the single implementation of the per-submission
  sanitize → verify → (reduce) → classify → explain path, shared with
  corpus construction through :mod:`repro.acfg.ingest` and with
  ``python -m repro.eval``'s explain loop.
* :mod:`repro.serve.daemon` — :class:`ServeDaemon`, the front door:
  bounded admission queue with typed rejection (backpressure /
  oversize / quarantine), a micro-batcher coalescing concurrent
  classifies through ``forward_batch`` within a latency budget, and a
  content-addressed explanation cache keyed by
  :func:`repro.obs.fingerprint_graph` with LRU eviction.
* :mod:`repro.serve.loadgen` — closed-loop deterministic load
  generation emitting the ``BENCH_serving.json`` SLO numbers gated by
  ``repro-bench-compare``.

``python -m repro.serve`` runs a demo daemon; ``python -m repro.serve
bench`` produces the benchmark artifact.  See DESIGN.md §Serving.
"""

from repro.serve.daemon import DaemonConfig, ExplanationCache, ServeDaemon
from repro.serve.engine import (
    DegradedResponse,
    EngineResponse,
    InferenceEngine,
    PreparedRequest,
    RequestRejected,
    submission_from_text,
)
from repro.serve.loadgen import (
    LoadResult,
    run_chaos_benchmark,
    run_closed_loop,
    run_slo_benchmark,
)

__all__ = [
    "DaemonConfig",
    "DegradedResponse",
    "EngineResponse",
    "ExplanationCache",
    "InferenceEngine",
    "LoadResult",
    "PreparedRequest",
    "RequestRejected",
    "ServeDaemon",
    "run_chaos_benchmark",
    "run_closed_loop",
    "run_slo_benchmark",
    "submission_from_text",
]
