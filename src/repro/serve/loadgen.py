"""Benchmark layer: closed-loop deterministic load generation.

Drives a :class:`~repro.serve.daemon.ServeDaemon` in-process with ``c``
closed-loop clients (each submits, waits for the response, submits
again) and measures per-request wall latency.  The request *sequence*
is deterministic — client ``k``'s ``i``-th submission is graph
``(k + i * stride) % len(graphs)`` — so two runs at the same
concurrency level issue exactly the same multiset of requests; only the
thread interleaving (and therefore the latencies) varies.

:func:`run_slo_benchmark` sweeps several concurrency levels and shapes
the result for ``BENCH_serving.json``: per-level ``latency_p50_ms`` /
``latency_p99_ms`` / ``graphs_per_sec``, the metrics gated by
``repro-bench-compare``'s latency (lower-is-better) and throughput
(higher-is-better) policies.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import metrics_registry
from repro.resilience import FaultPlan, ResilienceConfig
from repro.serve.daemon import DaemonConfig, ServeDaemon
from repro.serve.engine import InferenceEngine, RequestRejected

__all__ = [
    "LoadResult",
    "run_chaos_benchmark",
    "run_closed_loop",
    "run_slo_benchmark",
]


@dataclass
class LoadResult:
    """One concurrency level's measurements."""

    concurrency: int
    requests: int
    rejected: int
    cache_hits: int
    wall_seconds: float
    latencies_ms: list[float] = field(default_factory=list)
    #: Typed :class:`~repro.serve.engine.DegradedResponse` count (chaos
    #: runs; always 0 on an unfaulted daemon).
    degraded: int = 0
    #: Exceptions that escaped ``submit`` other than typed rejections.
    #: The resilience contract is that this stays 0 even under faults.
    unhandled: int = 0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    @property
    def graphs_per_sec(self) -> float:
        completed = len(self.latencies_ms)
        return completed / self.wall_seconds if self.wall_seconds > 0 else float("nan")

    def to_dict(self) -> dict:
        return {
            "concurrency": self.concurrency,
            "requests": self.requests,
            "completed": len(self.latencies_ms),
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "wall_seconds": round(self.wall_seconds, 4),
            "latency_p50_ms": round(self.percentile_ms(50), 3),
            "latency_p99_ms": round(self.percentile_ms(99), 3),
            "graphs_per_sec": round(self.graphs_per_sec, 2),
        }

    @property
    def availability(self) -> float:
        """Fraction of requests answered with a *full* (non-degraded,
        non-rejected, typed) response."""
        if self.requests == 0:
            return float("nan")
        full = len(self.latencies_ms) - self.degraded
        return full / self.requests

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.requests if self.requests else float("nan")

    @property
    def typed_response_rate(self) -> float:
        """Fraction of requests that got *a typed answer* — full,
        degraded, or typed rejection — rather than a raw exception."""
        if self.requests == 0:
            return float("nan")
        return 1.0 - self.unhandled / self.requests

    def to_chaos_dict(self) -> dict:
        payload = self.to_dict()
        payload.update(
            {
                "degraded": self.degraded,
                "unhandled": self.unhandled,
                "availability": round(self.availability, 4),
                "degraded_rate": round(self.degraded_rate, 4),
                "typed_response_rate": round(self.typed_response_rate, 4),
            }
        )
        return payload


def run_closed_loop(
    daemon: ServeDaemon,
    graphs,
    concurrency: int,
    requests_per_client: int,
    stride: int = 3,
    tolerate_errors: bool = False,
) -> LoadResult:
    """``concurrency`` closed-loop clients, fixed deterministic schedule.

    ``graphs`` are bare ACFGs (unscaled, unreduced) submitted through
    :meth:`ServeDaemon.submit_graph`.  Backpressure rejections are
    counted, not fatal — a closed-loop client retries its request once
    admission frees up, which is what a well-behaved client does.

    ``tolerate_errors`` (chaos runs) counts any non-rejection exception
    escaping ``submit`` in ``LoadResult.unhandled`` instead of killing
    the client thread — the resilience acceptance criterion is that
    this count is exactly zero even under an aggressive fault plan.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    graphs = list(graphs)
    if not graphs:
        raise ValueError("need at least one graph to submit")
    barrier = threading.Barrier(concurrency + 1)
    latencies: list[list[float]] = [[] for _ in range(concurrency)]
    rejected = [0] * concurrency
    hits = [0] * concurrency
    degraded = [0] * concurrency
    unhandled = [0] * concurrency

    def client(index: int) -> None:
        barrier.wait()
        for i in range(requests_per_client):
            graph = graphs[(index + i * stride) % len(graphs)]
            start = time.perf_counter()
            while True:
                try:
                    response = daemon.submit_graph(graph)
                except RequestRejected as rejection:
                    if rejection.reason != "backpressure":
                        raise
                    rejected[index] += 1
                    time.sleep(0.001)
                    continue
                except BaseException:
                    if not tolerate_errors:
                        raise
                    unhandled[index] += 1
                    response = None
                break
            if response is None:
                continue
            latencies[index].append((time.perf_counter() - start) * 1000.0)
            if response.cached:
                hits[index] += 1
            if getattr(response, "degraded", False):
                degraded[index] += 1

    threads = [
        threading.Thread(target=client, args=(k,), name=f"loadgen-{k}")
        for k in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    return LoadResult(
        concurrency=concurrency,
        requests=concurrency * requests_per_client,
        rejected=sum(rejected),
        cache_hits=sum(hits),
        wall_seconds=wall,
        latencies_ms=[value for per_client in latencies for value in per_client],
        degraded=sum(degraded),
        unhandled=sum(unhandled),
    )


def run_slo_benchmark(
    engine: InferenceEngine,
    graphs,
    levels: tuple[int, ...] = (1, 2, 4),
    requests_per_client: int = 12,
    daemon_config: DaemonConfig | None = None,
) -> dict:
    """Sweep concurrency levels; one fresh daemon (and cold cache) each.

    Returns the ``BENCH_serving.json`` payload: a ``serving`` section
    keyed ``concurrency_<c>`` with p50/p99 latency and sustained
    graphs/sec, plus the workload description.
    """
    graphs = list(graphs)
    results: dict[str, dict] = {}
    for level in levels:
        daemon = ServeDaemon(engine, daemon_config or DaemonConfig())
        with daemon:
            result = run_closed_loop(
                daemon, graphs, concurrency=level,
                requests_per_client=requests_per_client,
            )
        results[f"concurrency_{level}"] = result.to_dict()
    return {
        "workload": {
            "unique_graphs": len(graphs),
            "nodes_per_graph": int(max(g.n_real for g in graphs)),
            "requests_per_client": requests_per_client,
            "levels": list(levels),
            "explainer": engine.default_explainer,
        },
        "serving": results,
    }


def _resilience_delta(delta: dict) -> dict:
    """Aggregate the breaker/fault/deadline counters one level emitted."""
    def total(suffix: str, prefix: str = "resilience.breaker.") -> int:
        return sum(
            count for name, count in delta.items()
            if name.startswith(prefix) and name.endswith(suffix)
        )

    return {
        "faults_injected": sum(
            count for name, count in delta.items()
            if name.startswith("resilience.fault.")
        ),
        "breaker_trips": total(".trip"),
        "breaker_recoveries": total(".recover"),
        "breaker_short_circuits": total(".short_circuit"),
        "deadline_dropped": int(delta.get("resilience.deadline.dropped", 0)),
        "retries": sum(
            count for name, count in delta.items()
            if name.startswith("resilience.retry.")
        ),
    }


def run_chaos_benchmark(
    engine: InferenceEngine,
    graphs,
    plan: FaultPlan,
    levels: tuple[int, ...] = (1, 2, 4),
    requests_per_client: int = 12,
    daemon_config: DaemonConfig | None = None,
) -> dict:
    """The SLO sweep under a committed :class:`FaultPlan`.

    One fresh daemon (cold cache, closed breakers) per concurrency
    level, injected faults at every stage boundary.  Returns the
    ``BENCH_chaos.json`` payload: availability, degraded-response rate,
    typed-response rate (must be 1.0 — the no-unhandled-exceptions
    contract), fault-latency percentiles, and breaker trip/recovery
    counts per level, plus the plan itself so the artifact names the
    exact chaos it survived.
    """
    graphs = list(graphs)
    if daemon_config is None:
        daemon_config = DaemonConfig(
            resilience=ResilienceConfig(deadline_ms=2000.0)
        )
    results: dict[str, dict] = {}
    for level in levels:
        daemon = ServeDaemon(engine, daemon_config, fault_plan=plan)
        before = metrics_registry().snapshot()
        with daemon:
            result = run_closed_loop(
                daemon, graphs, concurrency=level,
                requests_per_client=requests_per_client,
                tolerate_errors=True,
            )
        delta = metrics_registry().delta_since(before)
        payload = result.to_chaos_dict()
        payload.update(_resilience_delta(delta))
        results[f"concurrency_{level}"] = payload
    return {
        "workload": {
            "unique_graphs": len(graphs),
            "nodes_per_graph": int(max(g.n_real for g in graphs)),
            "requests_per_client": requests_per_client,
            "levels": list(levels),
            "explainer": engine.default_explainer,
            "deadline_ms": daemon_config.resilience.deadline_ms,
            "fault_plan": plan.to_dict(),
            "fault_plan_fingerprint": plan.fingerprint(),
        },
        "chaos": results,
    }
