"""Engine layer: one implementation of the request path.

:class:`InferenceEngine` owns frozen model artifacts (classifier Φ,
feature scaler, trained explainers) plus the sanitize → verify →
(optional reduce) → classify → explain sequence for a *single*
submission.  The same ingestion primitives back corpus construction
(:func:`repro.acfg.ingest_corpus`) and this per-request path
(:func:`repro.acfg.ingest_sample`), so there is exactly one ordering of
the security-sensitive stages in the repository.

The engine is deliberately synchronous and thread-compatible but not
thread-managing: :meth:`admit` is pure/read-only and safe from any
thread, while :meth:`classify`/:meth:`explain_graph` touch the shared
A-hat/embedding caches and must stay on one thread.  The service layer
(:mod:`repro.serve.daemon`) builds queueing, micro-batching and caching
on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.acfg import ACFG, FeatureScaler, IngestPolicy, ingest_sample
from repro.malgen.corpus import LabeledSample, block_motif_tags
from repro.nn.guards import NumericalError, assert_finite_array
from repro.obs import add_counter, fingerprint_graph
from repro.resilience import Deadline

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.explain.base import Explainer
    from repro.explain.explanation import Explanation
    from repro.gnn.model import GCNClassifier
    from repro.harden.sanitize import QuarantineRecord
    from repro.reduce import LiftMap

__all__ = [
    "DegradedResponse",
    "EngineResponse",
    "InferenceEngine",
    "PreparedRequest",
    "RequestRejected",
    "submission_from_text",
]

#: Typed rejection reasons the front door can emit.  ``backpressure``
#: is raised by the daemon's bounded admission queue; ``oversize`` and
#: ``quarantine`` by the engine's ingestion gate.
REJECTION_REASONS = ("backpressure", "oversize", "quarantine")


class RequestRejected(RuntimeError):
    """A submission the service refused, with a typed reason.

    ``reason`` is one of :data:`REJECTION_REASONS`; ``records`` carries
    the underlying :class:`~repro.harden.QuarantineRecord` findings for
    ingestion rejections (empty for backpressure).
    """

    def __init__(
        self,
        reason: str,
        detail: str = "",
        records: "Sequence[QuarantineRecord]" = (),
    ):
        if reason not in REJECTION_REASONS:
            raise ValueError(
                f"reason must be one of {REJECTION_REASONS}, got {reason!r}"
            )
        super().__init__(f"request rejected ({reason}): {detail}" if detail else
                         f"request rejected ({reason})")
        self.reason = reason
        self.detail = detail
        self.records = list(records)


def submission_from_text(text: str, name: str = "submission") -> LabeledSample:
    """Wrap raw assembly text as an unlabeled serving submission."""
    from repro.disasm import build_cfg, parse_program

    program = parse_program(text, name=name)
    cfg = build_cfg(program)
    return LabeledSample(
        program=program,
        cfg=cfg,
        family="unknown",
        label=0,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )


@dataclass
class PreparedRequest:
    """A submission that survived admission, ready to classify.

    ``graph`` is model-ready (reduced when the policy reduces, scaled,
    unpadded); ``original`` the unreduced/unscaled ACFG used as the
    lift target and fingerprint source; ``lift`` the reduction lift map
    (None when reduction was off or an identity).
    """

    sample: LabeledSample
    graph: ACFG
    fingerprint: str
    original: ACFG | None = None
    lift: "LiftMap | None" = None
    #: Per-request wall budget, checked at every downstream stage
    #: boundary; ``None`` means unbounded (the pre-resilience default).
    deadline: Deadline | None = None


@dataclass
class EngineResponse:
    """What the service returns for one accepted submission."""

    name: str
    fingerprint: str
    probabilities: np.ndarray
    predicted_class: int
    family: str
    explainer: str
    explanation: "Explanation"
    #: True when the response was served from the explanation cache.
    cached: bool = False


@dataclass
class DegradedResponse(EngineResponse):
    """A response the resilience layer salvaged instead of failing.

    Same shape as :class:`EngineResponse` — callers that only read the
    classification fields need no branch — plus the typed degradation
    record.  ``degradation_reason`` is one of
    :data:`repro.resilience.DEGRADATION_REASONS`; ``explanation`` is
    a real (fallback-explainer) explanation for ``explainer_fallback``
    and ``None`` for every deeper rung; for ``unavailable`` even the
    classification fields are placeholders (``predicted_class == -1``).
    """

    explanation: "Explanation | None" = None
    degradation_reason: str = "unavailable"
    #: Stage whose failure caused the degradation.
    failed_stage: str = ""
    #: One of :data:`repro.exec.tasks.FAILURE_KINDS`.
    failure_kind: str = "exception"
    detail: str = ""

    @property
    def degraded(self) -> bool:
        return True


# Non-degraded responses answer False so callers can branch uniformly.
EngineResponse.degraded = property(lambda self: False)


class InferenceEngine:
    """Frozen artifacts + the single-submission request path."""

    def __init__(
        self,
        gnn: "GCNClassifier",
        scaler: FeatureScaler,
        explainers: "dict[str, Explainer]",
        families: tuple[str, ...],
        policy: IngestPolicy | None = None,
        default_explainer: str = "CFGExplainer",
        batch_size: int = 64,
        step_size: int = 10,
        compute_dtype=None,
    ):
        if default_explainer not in explainers:
            raise ValueError(
                f"unknown explainer {default_explainer!r}; "
                f"have {sorted(explainers)}"
            )
        self.gnn = gnn
        self.scaler = scaler
        self.explainers = dict(explainers)
        if "Gradient" not in self.explainers:
            # Every engine carries the cheap saliency explainer so the
            # resilience ladder always has a rung below the heavy ones.
            from repro.baselines.gradient import GradientExplainer

            self.explainers["Gradient"] = GradientExplainer(gnn)
        self.families = tuple(families)
        #: Serving always sanitizes: the front door faces untrusted
        #: input, so a policy of ``on_bad_input=None`` is upgraded to
        #: ``"quarantine"`` by :meth:`from_artifacts`.
        self.policy = policy if policy is not None else IngestPolicy(
            on_bad_input="quarantine", verify="strict"
        )
        self.default_explainer = default_explainer
        self.batch_size = batch_size
        self.step_size = step_size
        #: Optional kernel compute dtype for the classification path
        #: (``None`` keeps the process default, float64).  float32
        #: halves the memory traffic of the batched forward at the
        #: tolerance documented in :mod:`repro.nn.dtype`; explainers
        #: always run in the reference dtype.
        self.compute_dtype = compute_dtype

    @classmethod
    def from_artifacts(cls, artifacts, explainer: str = "CFGExplainer"):
        """Build an engine over :class:`repro.eval.PipelineArtifacts`.

        ``artifacts`` is duck-typed (``config``/``gnn``/``scaler``/
        ``explainers``/``train_set``) so :mod:`repro.eval` can stay
        ignorant of this module.  The ingestion policy follows the
        training config — reduction **must** match what the model was
        trained on — except that sanitation is never disabled for
        serving.
        """
        config = artifacts.config
        policy = IngestPolicy(
            on_bad_input=config.on_bad_input or "quarantine",
            verify=config.verify_mode,
            reduce=config.reduce,
        )
        return cls(
            gnn=artifacts.gnn,
            scaler=artifacts.scaler,
            explainers=dict(artifacts.explainers),
            families=tuple(artifacts.train_set.families),
            policy=policy,
            default_explainer=explainer,
            step_size=config.step_size,
        )

    # ------------------------------------------------------------------
    # admission (safe from any thread)
    # ------------------------------------------------------------------
    def admit(
        self,
        sample: LabeledSample,
        graph: ACFG | None = None,
        deadline: Deadline | None = None,
        stage_hook=None,
    ) -> PreparedRequest:
        """Run sanitize → verify → reduce and prepare a model-ready graph.

        Raises :class:`RequestRejected` with reason ``"oversize"`` when
        the sanitizer's size bounds fired, ``"quarantine"`` for every
        other fatal finding (hostile structure, NaN features, invariant
        violations, failed construction/reduction).  A prebuilt
        ``graph`` serves bare-ACFG submissions (ACFG-level checks only).

        ``deadline`` is carried onto the returned request and checked at
        each admission stage boundary (raising
        :class:`~repro.resilience.DeadlineExceeded`); ``stage_hook`` is
        the resilience seam forwarded to
        :func:`~repro.acfg.ingest_sample` — whatever it raises (e.g. an
        injected fault) propagates untouched, distinct from the typed
        :class:`RequestRejected` verdicts.
        """
        if deadline is None and stage_hook is None:
            hook = None
        else:
            def hook(stage: str) -> None:
                if deadline is not None:
                    deadline.check(stage)
                if stage_hook is not None:
                    stage_hook(stage)

        result = ingest_sample(sample, self.policy, graph=graph, stage_hook=hook)
        if not result.ok:
            reason = "quarantine"
            detail = "fatal ingestion finding"
            if result.fatal:
                first = result.fatal[0]
                if any(r.reason.startswith("oversized") for r in result.fatal):
                    reason = "oversize"
                detail = f"{first.reason} at {first.stage}: {first.detail}"
            add_counter(f"serve.rejected.{reason}")
            raise RequestRejected(reason, detail, result.records)
        fingerprint = fingerprint_graph(result.original)
        return PreparedRequest(
            sample=sample,
            graph=self.scaler.transform(result.graph),
            fingerprint=fingerprint,
            original=result.original,
            lift=result.lift,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # model stages (single-threaded: shared caches underneath)
    # ------------------------------------------------------------------
    def classify(self, requests: Sequence[PreparedRequest]) -> np.ndarray:
        """Class probabilities ``[len(requests), C]`` via one batched pass."""
        from repro.nn import compute_dtype as _compute_dtype_ctx

        graphs = [request.graph for request in requests]
        if self.compute_dtype is not None:
            with _compute_dtype_ctx(self.compute_dtype):
                probabilities = self.gnn.predict_proba_batch(
                    graphs, batch_size=self.batch_size
                )
        else:
            probabilities = self.gnn.predict_proba_batch(
                graphs, batch_size=self.batch_size
            )
        # Surface kernel NaN/Inf as a typed NumericalError here, where
        # the resilience layer can retry or degrade, instead of letting
        # non-finite probabilities poison argmax/cache downstream.
        assert_finite_array(probabilities, "serving class probabilities")
        add_counter("serve.classified", len(requests))
        return probabilities

    def explain_graph(
        self,
        graph: ACFG,
        original: ACFG | None = None,
        lift: "LiftMap | None" = None,
        explainer: str | None = None,
        step_size: int | None = None,
    ) -> "Explanation":
        """Explain one classified graph, lifting through ``lift`` if real.

        This is *the* implementation of the reduce-aware explain
        branch; ``python -m repro.eval``'s Table V loop and the daemon
        both call it.
        """
        implementation = self.explainers[explainer or self.default_explainer]
        step = self.step_size if step_size is None else step_size
        if lift is not None and not lift.is_identity:
            if original is None:
                raise ValueError("a lifted explanation needs the original graph")
            explanation = implementation.explain_lifted(
                graph, original, lift, step_size=step
            )
        else:
            explanation = implementation.explain(graph, step_size=step)
        if explanation.node_scores is not None:
            assert_finite_array(
                explanation.node_scores, "serving explanation scores"
            )
        return explanation

    def execute(
        self,
        request: PreparedRequest,
        probabilities: np.ndarray | None = None,
        explainer: str | None = None,
    ) -> EngineResponse:
        """Classify (unless pre-batched) and explain one admitted request."""
        if probabilities is None:
            probabilities = self.classify([request])[0]
        probabilities = np.asarray(probabilities, dtype=float)
        explanation = self.explain_graph(
            request.graph, request.original, request.lift, explainer
        )
        predicted = int(np.argmax(probabilities))
        family = (
            self.families[predicted]
            if predicted < len(self.families)
            else str(predicted)
        )
        add_counter("serve.responses")
        return EngineResponse(
            name=request.sample.program.name,
            fingerprint=request.fingerprint,
            probabilities=probabilities,
            predicted_class=predicted,
            family=family,
            explainer=explainer or self.default_explainer,
            explanation=explanation,
        )

    # ------------------------------------------------------------------
    # one-shot conveniences
    # ------------------------------------------------------------------
    def submit(
        self, sample: LabeledSample, explainer: str | None = None
    ) -> EngineResponse:
        """The full request path for one submission, no service layer."""
        return self.execute(self.admit(sample), explainer=explainer)

    def submit_text(
        self, text: str, name: str = "submission", explainer: str | None = None
    ) -> EngineResponse:
        return self.submit(submission_from_text(text, name=name), explainer=explainer)

    def submit_graph(self, graph: ACFG, name: str | None = None) -> EngineResponse:
        """Serve a bare (unscaled, unreduced) ACFG with no CFG attached."""
        return self.execute(self.admit(_bare_sample(graph, name), graph=graph))


@dataclass
class _BareProgram:
    """Just enough ``Program`` surface for a CFG-less ACFG submission."""

    name: str
    instructions: tuple = field(default_factory=tuple)


def _bare_sample(graph: ACFG, name: str | None = None) -> LabeledSample:
    sample = LabeledSample(
        program=_BareProgram(name or graph.name),
        cfg=None,
        family=graph.family,
        label=graph.label,
        motif_spans=[],
        block_tags=list(graph.block_tags),
    )
    return sample
