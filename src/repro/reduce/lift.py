"""LiftMap: project supernode importance back onto original blocks.

Reduction rewrites a graph, but every downstream consumer of an
explanation — Table III/V metrics, the stability benchmark, the
ground-truth motif evaluation — speaks in *original* block indices.
The :class:`LiftMap` records, for every original real block, which
supernode absorbed it (or :data:`PRUNED`), and provides the inverse
projection:

* **scores** lift by *mass splitting*: a supernode's importance is
  divided equally among its members, so total importance mass is
  conserved (``lift_scores(s).sum() == s.sum()``) and a merged chain
  never outweighs an unmerged block just by being larger.
* **orderings** lift by expansion: each supernode in the reduced
  ranking expands to its members (ascending original index), and
  pruned blocks are appended last (ascending) — they carry zero
  importance by construction.  The result is always a permutation of
  the original real-node indices, exactly what
  :class:`~repro.explain.explanation.Explanation` requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.base import ladder_from_order
from repro.explain.explanation import Explanation, kept_count

__all__ = ["LiftMap", "PRUNED"]

#: Sentinel in ``super_of`` for original blocks no supernode absorbed
#: (unreachable blocks, bypassed dead-store regions, filtered leaves).
PRUNED: int = -1


@dataclass(frozen=True, eq=False)
class LiftMap:
    """Original block → supernode mapping for one reduced graph.

    ``super_of[i]`` is the supernode index of original real block ``i``
    or :data:`PRUNED`; ``members[s]`` lists the original blocks merged
    into supernode ``s``, in ascending order.  Every surviving original
    block belongs to exactly one supernode (validated on construction).
    """

    original_n: int
    super_of: np.ndarray
    members: tuple[tuple[int, ...], ...]

    def __post_init__(self):
        object.__setattr__(
            self, "super_of", np.asarray(self.super_of, dtype=int)
        )
        if self.super_of.shape != (self.original_n,):
            raise ValueError(
                f"super_of has shape {self.super_of.shape}, expected "
                f"({self.original_n},)"
            )
        seen: set[int] = set()
        for s, block_indices in enumerate(self.members):
            if not block_indices:
                raise ValueError(f"supernode {s} has no members")
            for index in block_indices:
                if not 0 <= index < self.original_n:
                    raise ValueError(
                        f"supernode {s} member {index} outside "
                        f"[0, {self.original_n})"
                    )
                if index in seen:
                    raise ValueError(
                        f"original block {index} belongs to multiple supernodes"
                    )
                if self.super_of[index] != s:
                    raise ValueError(
                        f"super_of[{index}] = {self.super_of[index]} but "
                        f"block is a member of supernode {s}"
                    )
                seen.add(index)
        for index in range(self.original_n):
            if index not in seen and self.super_of[index] != PRUNED:
                raise ValueError(
                    f"original block {index} maps to supernode "
                    f"{self.super_of[index]} but is a member of none"
                )

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def num_supernodes(self) -> int:
        return len(self.members)

    @property
    def pruned_blocks(self) -> np.ndarray:
        """Original block indices absorbed by no supernode, ascending."""
        return np.where(self.super_of == PRUNED)[0]

    @property
    def is_identity(self) -> bool:
        """True when reduction was a no-op (every block its own supernode)."""
        return self.num_supernodes == self.original_n and all(
            member == (s,) for s, member in enumerate(self.members)
        )

    # ------------------------------------------------------------------
    # projections
    # ------------------------------------------------------------------
    def lift_scores(self, scores: np.ndarray) -> np.ndarray:
        """Mass-conserving projection of per-supernode scores.

        Each original member receives ``score / |members|``; pruned
        blocks receive 0.  ``lift_scores(s).sum() == s.sum()`` exactly
        (up to float addition order).
        """
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (self.num_supernodes,):
            raise ValueError(
                f"scores have shape {scores.shape}, expected "
                f"({self.num_supernodes},)"
            )
        lifted = np.zeros(self.original_n, dtype=float)
        for s, block_indices in enumerate(self.members):
            lifted[list(block_indices)] = scores[s] / len(block_indices)
        return lifted

    def lift_order(self, node_order: np.ndarray) -> np.ndarray:
        """Expand a supernode ranking into an original-block ranking.

        ``node_order`` is a permutation of the supernode indices
        (most important first).  Members expand in ascending original
        order; pruned blocks trail, ascending.  The result is a
        permutation of ``range(original_n)``.
        """
        node_order = np.asarray(node_order, dtype=int)
        if sorted(node_order.tolist()) != list(range(self.num_supernodes)):
            raise ValueError(
                "node_order must be a permutation of the supernode indices"
            )
        expanded: list[int] = []
        for s in node_order.tolist():
            expanded.extend(self.members[s])
        expanded.extend(self.pruned_blocks.tolist())
        return np.asarray(expanded, dtype=int)

    def lift_explanation(
        self,
        explanation: Explanation,
        original: ACFG,
        step_size: int | None = None,
    ) -> Explanation:
        """An :class:`Explanation` over the original graph.

        The reduced explanation's ordering and scores are projected
        back; the subgraph ladder is rebuilt over the original
        adjacency at the same step size (inferred from the reduced
        ladder when not given), so Table III's
        ``model.predict_subgraph`` calls see original structure.
        """
        if original.n_real != self.original_n:
            raise ValueError(
                f"original graph has {original.n_real} real nodes, lift map "
                f"covers {self.original_n}"
            )
        if step_size is None:
            step_size = (
                int(round(100 * explanation.levels[0].fraction))
                if explanation.levels
                else 10
            )
        order = self.lift_order(explanation.node_order)
        scores = (
            self.lift_scores(np.asarray(explanation.node_scores, dtype=float))
            if explanation.node_scores is not None
            else None
        )
        return Explanation(
            graph=original,
            explainer_name=explanation.explainer_name,
            predicted_class=explanation.predicted_class,
            node_order=order,
            levels=ladder_from_order(original, order, step_size),
            node_scores=scores,
        )

    def lift_top_nodes(
        self, explanation: Explanation, fraction: float
    ) -> np.ndarray:
        """Top-``fraction`` *original* blocks of a reduced explanation.

        ``fraction`` is measured against the original real-node count,
        so a 20 % subgraph means the same thing pre- and post-reduction.
        Cheaper than :meth:`lift_explanation` when only the kept set is
        needed (the ground-truth motif metric).
        """
        count = kept_count(fraction, self.original_n)
        return self.lift_order(explanation.node_order)[:count]

    # ------------------------------------------------------------------
    # persistence / manifests
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "original_n": self.original_n,
            "members": [list(m) for m in self.members],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LiftMap":
        original_n = int(payload["original_n"])
        members = tuple(
            tuple(int(i) for i in member) for member in payload["members"]
        )
        super_of = np.full(original_n, PRUNED, dtype=int)
        for s, member in enumerate(members):
            for index in member:
                super_of[index] = s
        return cls(original_n=original_n, super_of=super_of, members=members)

    @classmethod
    def identity(cls, n: int) -> "LiftMap":
        """The no-op map: every block is its own supernode."""
        return cls(
            original_n=n,
            super_of=np.arange(n, dtype=int),
            members=tuple((i,) for i in range(n)),
        )
