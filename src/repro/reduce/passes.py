"""Multi-pass static-analysis CFG/ACFG reduction.

The paper's real graphs reach ~7000 nodes, and both GNN training and
the explainer ladder scale super-linearly in node count — but a large
fraction of those nodes are straight-line filler the classifier learns
nothing from.  This module shrinks an :class:`~repro.acfg.graph.ACFG`
*before* padding, using the analyses ``repro.staticcheck`` already
computes for verification:

1. **Unreachable prune** — blocks with no path from the entry
   (``dataflow.unreachable_blocks`` semantics, recomputed on the
   adjacency) are dropped.  Lossless for any entry-rooted analysis.
2. **Dead-store bypass** (opt-in, needs the source
   :class:`~repro.disasm.cfg.CFG`) — a non-branching block whose every
   instruction is a dead store computes nothing; predecessors are
   rewired straight to its unique successor and the block is dropped.
3. **Leaf filter** (opt-in, lossy) — exit blocks with in-degree at most
   ``leaf_max_in_degree`` are dropped.  Cheap compression, but it eats
   ``ret`` blocks, so it is off by default and documented as unsafe for
   ground-truth motif evaluation.
4. **Chain collapse** — maximal single-entry/single-exit chains merge
   into supernodes.  The chain criterion is *call-aware*: a call block
   has out-degree 2 (call edge + fallthrough), so demanding literal
   out-degree 1 finds nothing in realistic CFGs.  Instead ``u`` extends
   the chain to ``v`` when ``v`` is ``u``'s only weight-1 successor and
   ``u`` is ``v``'s only predecessor over *all* edges; members' call
   edges are kept on the supernode.  Merging never crosses a retreating
   edge, and blocks touching an irreducible edge (multi-entry loops,
   where dominance reasoning breaks) are excluded entirely.

Feature aggregation (the 12 Table I columns) is documented here and
tested in ``tests/test_reduce.py``: all count columns **sum** across
members; ``offspring`` (index 10) is **recomputed** as the supernode's
distinct-successor count in the reduced graph, so the structural
feature describes the graph the GNN actually sees.  Block tags union.

Every reduction returns a :class:`~repro.reduce.lift.LiftMap` so
importance scores project back onto original blocks — see
:mod:`repro.reduce.lift`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acfg.features import NUM_FEATURES
from repro.acfg.graph import ACFG, from_sample
from repro.disasm.cfg import CFG
from repro.malgen.corpus import LabeledSample
from repro.nn.guards import NumericalError
from repro.reduce.lift import PRUNED, LiftMap
from repro.staticcheck.dataflow import dead_stores
from repro.staticcheck.dominators import dominator_tree_from_successors

__all__ = [
    "ReduceConfig",
    "ReductionResult",
    "ReductionStats",
    "merge_stats",
    "reduce_acfg",
    "reduce_sample",
]

#: Feature column recomputed (not summed) after merging: ``offspring``.
OFFSPRING_COLUMN: int = 10

ENTRY: int = 0


@dataclass(frozen=True)
class ReduceConfig:
    """Knobs for the reduction pipeline.

    The defaults are the lossless-for-explanations setting: prune what
    the entry can never reach and collapse linear chains.  Dead-store
    bypass needs instruction-level liveness (a source CFG) and the leaf
    filter discards real exit blocks, so both are opt-in.
    """

    collapse_chains: bool = True
    prune_unreachable: bool = True
    prune_dead_stores: bool = False
    filter_leaves: bool = False
    leaf_max_in_degree: int = 1
    max_chain_length: int = 0  # 0 = unbounded
    max_rounds: int = 4

    def __post_init__(self):
        if self.leaf_max_in_degree < 0:
            raise ValueError(
                f"leaf_max_in_degree must be >= 0, got {self.leaf_max_in_degree}"
            )
        if self.max_chain_length < 0:
            raise ValueError(
                f"max_chain_length must be >= 0, got {self.max_chain_length}"
            )
        if self.max_chain_length == 1:
            raise ValueError(
                "max_chain_length=1 forbids every merge; use "
                "collapse_chains=False instead"
            )
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")

    @property
    def is_noop(self) -> bool:
        return not (
            self.collapse_chains
            or self.prune_unreachable
            or self.prune_dead_stores
            or self.filter_leaves
        )


@dataclass(frozen=True)
class ReductionStats:
    """What one reduction did, for obs counters and bench reports."""

    nodes_before: int
    nodes_after: int
    edges_before: int
    edges_after: int
    unreachable_pruned: int = 0
    dead_store_bypassed: int = 0
    leaves_pruned: int = 0
    chains_collapsed: int = 0
    blocks_merged: int = 0
    irreducible_blocks: int = 0

    @property
    def node_compression(self) -> float:
        """nodes_before / nodes_after (1.0 = no-op; higher = smaller)."""
        return self.nodes_before / self.nodes_after if self.nodes_after else 1.0

    @property
    def edge_compression(self) -> float:
        return self.edges_before / self.edges_after if self.edges_after else 1.0

    def to_dict(self) -> dict:
        return {
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "edges_before": self.edges_before,
            "edges_after": self.edges_after,
            "unreachable_pruned": self.unreachable_pruned,
            "dead_store_bypassed": self.dead_store_bypassed,
            "leaves_pruned": self.leaves_pruned,
            "chains_collapsed": self.chains_collapsed,
            "blocks_merged": self.blocks_merged,
            "irreducible_blocks": self.irreducible_blocks,
            "node_compression": self.node_compression,
            "edge_compression": self.edge_compression,
        }


@dataclass(frozen=True)
class ReductionResult:
    """A reduced graph plus the lift map back to the original."""

    graph: ACFG
    lift: LiftMap
    stats: ReductionStats


# ----------------------------------------------------------------------
# internal mutable edge structure
# ----------------------------------------------------------------------
def _weighted_successors(
    adjacency: np.ndarray, n: int
) -> dict[int, dict[int, float]]:
    """``succ[u][v] = weight`` over the real ``n x n`` submatrix."""
    succ: dict[int, dict[int, float]] = {u: {} for u in range(n)}
    rows, cols = np.nonzero(adjacency[:n, :n])
    for u, v in zip(rows.tolist(), cols.tolist()):
        succ[u][v] = float(adjacency[u, v])
    return succ


def _predecessor_map(succ: dict[int, dict[int, float]]) -> dict[int, set[int]]:
    preds: dict[int, set[int]] = {u: set() for u in succ}
    for u, targets in succ.items():
        for v in targets:
            preds[v].add(u)
    return preds


def _edge_count(succ: dict[int, dict[int, float]]) -> int:
    return sum(len(targets) for targets in succ.values())


def _reachable(succ: dict[int, dict[int, float]], entry: int) -> set[int]:
    seen = {entry}
    worklist = [entry]
    while worklist:
        node = worklist.pop()
        for target in succ[node]:
            if target not in seen:
                seen.add(target)
                worklist.append(target)
    return seen


# ----------------------------------------------------------------------
# passes
# ----------------------------------------------------------------------
def _prune_unreachable(succ: dict[int, dict[int, float]]) -> list[int]:
    reachable = _reachable(succ, ENTRY)
    doomed = sorted(set(succ) - reachable)
    # No reachable node can point at a doomed one (the edge would make
    # it reachable), so deleting the rows is enough.
    for node in doomed:
        del succ[node]
    return doomed


def _dead_store_only_blocks(cfg: CFG) -> set[int]:
    """Blocks whose every instruction is a reported dead store."""
    dead_offsets: dict[int, set[int]] = {}
    for store in dead_stores(cfg):
        dead_offsets.setdefault(store.block_index, set()).add(store.offset)
    doomed: set[int] = set()
    for block in cfg.blocks:
        count = len(block.instructions)
        if count and len(dead_offsets.get(block.index, ())) == count:
            doomed.add(block.index)
    return doomed


def _bypass_dead_store_blocks(
    succ: dict[int, dict[int, float]], cfg: CFG
) -> list[int]:
    """Rewire predecessors around dead-store-only pass-through blocks.

    Only blocks with exactly one weight-1 successor and no call edges
    are bypassed — a branching or calling block still has control-flow
    effect even if its stores are dead.  The entry is never bypassed.
    """
    bypassed: list[int] = []
    candidates = _dead_store_only_blocks(cfg)
    preds = _predecessor_map(succ)
    for node in sorted(candidates):
        if node == ENTRY or node not in succ:
            continue
        targets = succ[node]
        if len(targets) != 1:
            continue
        ((target, weight),) = targets.items()
        if weight != 1.0 or target == node:
            continue
        for source in sorted(preds[node]):
            if source not in succ or node not in succ[source]:
                continue
            source_weight = succ[source].pop(node)
            # A call edge into the block stays a call edge to where
            # the block fell through.
            succ[source][target] = max(
                succ[source].get(target, 0.0), source_weight
            )
            preds[target].add(source)
        preds[target].discard(node)
        del succ[node]
        bypassed.append(node)
    return bypassed


def _filter_leaves(
    succ: dict[int, dict[int, float]],
    max_in_degree: int,
    eligible: set[int],
) -> list[int]:
    """Drop exit nodes with few predecessors; ``eligible`` restricts the
    pass to single-block supernodes so a collapsed chain is never
    silently discarded wholesale."""
    preds = _predecessor_map(succ)
    doomed = sorted(
        node
        for node, targets in succ.items()
        if node != ENTRY
        and node in eligible
        and not targets
        and len(preds[node]) <= max_in_degree
    )
    for node in doomed:
        for source in preds[node]:
            if source in succ:
                succ[source].pop(node, None)
        del succ[node]
    return doomed


def _edge_structure(
    succ: dict[int, dict[int, float]],
) -> tuple[set[tuple[int, int]], set[int]]:
    """``(retreating_edges, protected_blocks)`` of the current graph.

    Retreating edges are those going no later in reverse post-order;
    protected blocks are the endpoints of retreating edges whose target
    does *not* dominate their source — an irreducible (multi-entry)
    loop, where dominance-based chain reasoning is unsound and merging
    is pinned entirely.
    """
    deterministic = {node: sorted(targets) for node, targets in succ.items()}
    if ENTRY not in deterministic:
        return set(), set()
    tree = dominator_tree_from_successors(deterministic, ENTRY)
    order: list[int] = []
    stack: list[tuple[int, int]] = [(ENTRY, 0)]
    seen = {ENTRY}
    while stack:
        node, child = stack[-1]
        targets = deterministic[node]
        if child < len(targets):
            stack[-1] = (node, child + 1)
            if targets[child] not in seen:
                seen.add(targets[child])
                stack.append((targets[child], 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    position = {node: i for i, node in enumerate(order)}
    retreating: set[tuple[int, int]] = set()
    protected: set[int] = set()
    for source, targets in deterministic.items():
        if source not in position:
            continue
        for target in targets:
            if target in position and position[target] <= position[source]:
                retreating.add((source, target))
                if not tree.dominates(target, source):
                    protected.add(source)
                    protected.add(target)
    return retreating, protected


def _collapse_chains(
    succ: dict[int, dict[int, float]],
    max_chain_length: int,
    retreating: set[tuple[int, int]],
    protected: set[int],
    size_of: dict[int, int],
) -> list[list[int]]:
    """Greedy maximal chain discovery; returns member lists per chain.

    ``u`` absorbs ``v`` when ``v`` is ``u``'s sole weight-1 successor,
    ``u`` is ``v``'s sole predecessor over all edges, the merge edge is
    not retreating, and neither endpoint touches an irreducible edge.
    Chains grow from heads (blocks whose own predecessor link does not
    qualify), so discovery order cannot split a chain in two.
    """
    preds = _predecessor_map(succ)

    def chain_successor(u: int) -> int | None:
        weight_one = [v for v, w in succ[u].items() if w == 1.0]
        if len(weight_one) != 1:
            return None
        (v,) = weight_one
        if v == ENTRY or v == u or v in protected or u in protected:
            return None
        if preds[v] != {u} or (u, v) in retreating:
            return None
        return v

    chains: list[list[int]] = []
    absorbed: set[int] = set()
    for head in sorted(succ):
        if head in absorbed:
            continue
        # Not a head if its own predecessor would absorb it.
        unique_pred = next(iter(preds[head])) if len(preds[head]) == 1 else None
        if (
            unique_pred is not None
            and unique_pred in succ
            and chain_successor(unique_pred) == head
        ):
            continue
        chain = [head]
        chain_size = size_of[head]
        while True:
            nxt = chain_successor(chain[-1])
            if nxt is None or nxt in absorbed or nxt in chain:
                break
            if max_chain_length and chain_size + size_of[nxt] > max_chain_length:
                break
            chain.append(nxt)
            chain_size += size_of[nxt]
            absorbed.add(nxt)
        if len(chain) > 1:
            chains.append(chain)

    # Rewrite edges: merge every chain into its head.
    for chain in chains:
        head = chain[0]
        chain_set = set(chain)
        next_in_chain = {
            member: chain[i + 1] for i, member in enumerate(chain[:-1])
        }
        merged: dict[int, float] = {}
        for member in chain:
            for target, weight in succ[member].items():
                if target in chain_set:
                    # The intra-chain weight-1 link vanishes; a call or
                    # back edge into the chain becomes a self-loop.
                    if weight == 1.0 and next_in_chain.get(member) == target:
                        continue
                    merged[head] = max(merged.get(head, 0.0), weight)
                else:
                    merged[target] = max(merged.get(target, 0.0), weight)
        for member in chain[1:]:
            del succ[member]
        succ[head] = merged
        # No incoming-edge rewrite is needed: every non-head member has
        # exactly one predecessor (inside the chain), so external edges
        # into the chain already target the surviving head.
    return chains


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def reduce_acfg(
    graph: ACFG,
    cfg: CFG | None = None,
    config: ReduceConfig | None = None,
) -> ReductionResult:
    """Run the configured passes over ``graph``'s real subgraph.

    Returns an *unpadded* reduced :class:`ACFG` (``n == n_real``) — the
    dataset layer decides the new padding budget from the whole-corpus
    maximum.  Pass ordering is fixed: unreachable prune, dead-store
    bypass, leaf filter, chain collapse; the lossy filters run before
    collapse so only original single-block leaves are discarded, never
    a large merged supernode.
    """
    if config is None:
        config = ReduceConfig()
    n = int(graph.n_real)
    succ = _weighted_successors(graph.adjacency, n)
    edges_before = _edge_count(succ)

    if n == 0 or config.is_noop:
        lift = LiftMap.identity(n)
        stats = ReductionStats(
            nodes_before=n,
            nodes_after=n,
            edges_before=edges_before,
            edges_after=edges_before,
        )
        reduced = ACFG(
            adjacency=graph.adjacency[:n, :n].copy(),
            features=graph.features[:n].copy(),
            label=graph.label,
            family=graph.family,
            name=graph.name,
            n_real=n,
            block_tags=tuple(graph.block_tags[:n]),
        )
        return ReductionResult(graph=reduced, lift=lift, stats=stats)

    unreachable: list[int] = []
    if config.prune_unreachable:
        unreachable = _prune_unreachable(succ)

    bypassed: list[int] = []
    if config.prune_dead_stores and cfg is not None:
        bypassed = _bypass_dead_store_blocks(succ, cfg)

    # ------------------------------------------------------------------
    # fixpoint: leaf pruning lowers out-degrees, which exposes new
    # chains, whose collapse exposes new leaves — iterate (bounded by
    # ``max_rounds``) until neither pass changes the graph.
    # ------------------------------------------------------------------
    members_of: dict[int, list[int]] = {node: [node] for node in succ}
    leaves: list[int] = []
    chains_collapsed = 0
    irreducible_blocks = 0
    for round_index in range(config.max_rounds):
        changed = False
        if config.filter_leaves:
            singletons = {
                node for node in succ if len(members_of[node]) == 1
            }
            doomed = _filter_leaves(
                succ, config.leaf_max_in_degree, singletons
            )
            for node in doomed:
                leaves.append(members_of.pop(node)[0])
            changed = changed or bool(doomed)
        if config.collapse_chains:
            retreating, protected = _edge_structure(succ)
            if round_index == 0:
                irreducible_blocks = len(protected)
            size_of = {node: len(members_of[node]) for node in succ}
            chains = _collapse_chains(
                succ,
                config.max_chain_length,
                retreating,
                protected,
                size_of,
            )
            for chain in chains:
                merged_members = []
                for node in chain:
                    merged_members.extend(members_of[node])
                for node in chain[1:]:
                    del members_of[node]
                members_of[chain[0]] = merged_members
            chains_collapsed += len(chains)
            changed = changed or bool(chains)
        if not changed:
            break

    # ------------------------------------------------------------------
    # materialise: survivors keep ascending original order, so the
    # entry's supernode is index 0 in the reduced graph.
    # ------------------------------------------------------------------
    survivors = sorted(succ)
    new_index = {node: i for i, node in enumerate(survivors)}

    super_of = np.full(n, PRUNED, dtype=int)
    members: list[tuple[int, ...]] = []
    for node in survivors:
        block_indices = tuple(sorted(members_of[node]))
        members.append(block_indices)
        for index in block_indices:
            super_of[index] = new_index[node]
    lift = LiftMap(original_n=n, super_of=super_of, members=tuple(members))

    reduced_n = len(survivors)
    adjacency = np.zeros((reduced_n, reduced_n), dtype=np.float64)
    for node, targets in succ.items():
        for target, weight in targets.items():
            u, v = new_index[node], new_index[target]
            adjacency[u, v] = max(adjacency[u, v], weight)

    features = np.zeros((reduced_n, NUM_FEATURES), dtype=np.float64)
    for i, block_indices in enumerate(members):
        features[i] = graph.features[list(block_indices)].sum(axis=0)
    features[:, OFFSPRING_COLUMN] = (adjacency > 0).sum(axis=1)
    if not np.isfinite(features).all():
        raise NumericalError(
            f"non-finite features after merging {graph.name!r}"
        )

    block_tags: tuple[frozenset[str], ...] = ()
    if graph.block_tags:
        block_tags = tuple(
            frozenset().union(
                *(graph.block_tags[index] for index in block_indices)
            )
            for block_indices in members
        )

    reduced = ACFG(
        adjacency=adjacency,
        features=features,
        label=graph.label,
        family=graph.family,
        name=graph.name,
        n_real=reduced_n,
        block_tags=block_tags,
    )
    stats = ReductionStats(
        nodes_before=n,
        nodes_after=reduced_n,
        edges_before=edges_before,
        edges_after=_edge_count(succ),
        unreachable_pruned=len(unreachable),
        dead_store_bypassed=len(bypassed),
        leaves_pruned=len(leaves),
        chains_collapsed=chains_collapsed,
        blocks_merged=sum(
            len(block_indices)
            for block_indices in members
            if len(block_indices) > 1
        ),
        irreducible_blocks=irreducible_blocks,
    )
    return ReductionResult(graph=reduced, lift=lift, stats=stats)


def reduce_sample(
    sample: LabeledSample, config: ReduceConfig | None = None
) -> ReductionResult:
    """Reduce one generated corpus sample (CFG available for dataflow)."""
    return reduce_acfg(
        from_sample(sample), cfg=sample.cfg, config=config
    )


def merge_stats(per_graph: list[ReductionStats]) -> ReductionStats:
    """Corpus-level totals for obs counters and the bench report."""
    if not per_graph:
        return ReductionStats(0, 0, 0, 0)
    return ReductionStats(
        nodes_before=sum(s.nodes_before for s in per_graph),
        nodes_after=sum(s.nodes_after for s in per_graph),
        edges_before=sum(s.edges_before for s in per_graph),
        edges_after=sum(s.edges_after for s in per_graph),
        unreachable_pruned=sum(s.unreachable_pruned for s in per_graph),
        dead_store_bypassed=sum(s.dead_store_bypassed for s in per_graph),
        leaves_pruned=sum(s.leaves_pruned for s in per_graph),
        chains_collapsed=sum(s.chains_collapsed for s in per_graph),
        blocks_merged=sum(s.blocks_merged for s in per_graph),
        irreducible_blocks=sum(s.irreducible_blocks for s in per_graph),
    )
