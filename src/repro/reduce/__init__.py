"""Static-analysis CFG/ACFG reduction with explanation lift-back.

The serving-scale lever the ROADMAP names: shrink graphs *before* the
GNN and the explainer ladder see them, using the dominator/dataflow
machinery from :mod:`repro.staticcheck`, and keep every downstream
metric comparable by projecting importance back onto original blocks
through a :class:`LiftMap`.

Typical use::

    from repro.reduce import ReduceConfig, reduce_sample

    result = reduce_sample(sample, ReduceConfig())
    small = result.graph            # fewer nodes, merged features
    lifted = result.lift.lift_explanation(explanation, original_graph)

Or corpus-wide, opt-in, through ``ACFGDataset.from_corpus(...,
reduce=ReduceConfig())`` / ``ExperimentConfig(reduce=...)``.
"""

from repro.reduce.lift import PRUNED, LiftMap
from repro.reduce.passes import (
    ReduceConfig,
    ReductionResult,
    ReductionStats,
    merge_stats,
    reduce_acfg,
    reduce_sample,
)

__all__ = [
    "LiftMap",
    "PRUNED",
    "ReduceConfig",
    "ReductionResult",
    "ReductionStats",
    "merge_stats",
    "reduce_acfg",
    "reduce_sample",
]
