"""Run the complete evaluation and print every paper artifact.

Usage::

    python -m repro.eval [--quick] [--samples N] [--seed S]

This is what generated the measurements recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import build_family_reports
from repro.analysis.report import format_table_v
from repro.eval.pipeline import ExperimentConfig, run_pipeline
from repro.eval.sweep import sweep_all_families
from repro.eval.tables import (
    build_table3,
    format_figure2,
    format_table3,
    format_table4,
)
from repro.eval.timing import measure_timings


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced configuration")
    parser.add_argument("--samples", type=int, default=None, help="graphs per family")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.quick:
        config = ExperimentConfig(
            samples_per_family=args.samples or 6,
            gnn_epochs=60,
            explainer_epochs=150,
            subgraphx_iterations=10,
            seed=args.seed,
        )
    else:
        config = ExperimentConfig(
            samples_per_family=args.samples or 20, seed=args.seed
        )

    start = time.time()
    print(f"# Evaluation run (config: {config})\n")
    artifacts = run_pipeline(config, verbose=False)
    print(f"Pipeline ready in {time.time() - start:.0f}s; "
          f"GNN test accuracy {artifacts.gnn_test_accuracy:.3f}\n")

    print("## Figure 2 — subgraph accuracy curves\n")
    sweeps = sweep_all_families(
        artifacts.gnn, artifacts.explainers, artifacts.test_set,
        step_size=config.step_size,
    )
    print(format_figure2(sweeps))

    print("## Table III — top-10%/20% accuracy and AUC\n")
    print(format_table3(build_table3(sweeps)))

    print("\n## Table IV — explanation time\n")
    graphs = artifacts.test_set.graphs[: min(10, len(artifacts.test_set))]
    print(format_table4(
        measure_timings(artifacts.explainers, graphs,
                        artifacts.offline_training_seconds)
    ))

    print("\n## Table V — qualitative patterns (top-20% subgraphs)\n")
    explainer = artifacts.explainers["CFGExplainer"]
    pairs = []
    for family in artifacts.test_set.families:
        for graph in artifacts.test_set.of_family(family)[:3]:
            pairs.append(
                (artifacts.sample_for(graph.name), explainer.explain(graph))
            )
    print(format_table_v(build_family_reports(pairs)))
    print(f"\nTotal wall clock: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
