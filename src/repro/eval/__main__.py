"""Run the complete evaluation and print every paper artifact.

Usage::

    python -m repro.eval [--quick] [--samples N] [--seed S]
                         [--workers W] [--run-dir DIR] [--task-timeout T]
                         [--reduce]
    python -m repro.eval verify [--samples N] [--seed S] [--mode strict|warn]
    python -m repro.eval profile [--samples N] [--seed S] [--out DIR]
                                 [--workers W]

The bare invocation regenerates the paper artifacts (Figure 2, Tables
III–V, plus the static-agreement table); it is what generated the
measurements recorded in EXPERIMENTS.md.  The ``verify`` subcommand
runs only the :mod:`repro.staticcheck` corpus gate: it regenerates the
synthetic corpus and checks every CFG/ACFG invariant, exiting non-zero
in strict mode if any is violated.  The ``profile`` subcommand runs a
small end-to-end pipeline under :mod:`repro.obs` tracing, prints the
span tree and aggregated per-span statistics, and writes
``RUN_MANIFEST.json`` / ``trace.jsonl`` to ``--out``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import build_family_reports
from repro.analysis.report import format_table_v
from repro.eval.agreement import agreement_rows, format_agreement
from repro.eval.pipeline import ExperimentConfig, run_pipeline
from repro.eval.sweep import sweep_all_families
from repro.eval.tables import (
    build_counterfactual_table,
    build_table3,
    format_counterfactual_table,
    format_figure2,
    format_table3,
    format_table4,
)
from repro.eval.timing import measure_timings
from repro.exec import run_timings


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced configuration")
    parser.add_argument("--samples", type=int, default=None, help="graphs per family")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep/timing experiments "
             "(1 = exact serial reference path)",
    )
    parser.add_argument(
        "--run-dir", default=None,
        help="checkpoint directory: completed pipeline stages and sweep "
             "shards persist here, and a rerun pointing at the same "
             "directory resumes instead of recomputing",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-shard wall-clock timeout in seconds (workers only)",
    )
    parser.add_argument(
        "--reduce", action="store_true",
        help="run the static CFG reduction passes (chain collapse, "
             "unreachable pruning) before training; explanations are "
             "lifted back to original blocks via the recorded lift maps",
    )

    subparsers = parser.add_subparsers(dest="command")
    verify = subparsers.add_parser(
        "verify",
        help="run the staticcheck invariant gate over the synthetic corpus",
        description="Regenerate the corpus and verify every CFG/ACFG invariant.",
    )
    verify.add_argument("--samples", type=int, default=20, help="graphs per family")
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--size-multiplier", type=int, default=3, help="per-program size scaling"
    )
    verify.add_argument(
        "--mode",
        choices=("strict", "warn"),
        default="strict",
        help="strict exits non-zero on invariant violations",
    )
    verify.add_argument(
        "--no-dataflow",
        action="store_true",
        help="skip the liveness/reachability signals (structure checks only)",
    )

    profile = subparsers.add_parser(
        "profile",
        help="trace a small end-to-end run and write a RunManifest",
        description=(
            "Run corpus→dataset→train→explain→eval under repro.obs "
            "tracing, print the span tree, write RUN_MANIFEST.json."
        ),
    )
    profile.add_argument("--samples", type=int, default=None, help="graphs per family")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--out", default=".", help="directory for RUN_MANIFEST.json and trace.jsonl"
    )
    profile.add_argument(
        "--explain-graphs", type=int, default=2,
        help="held-out graphs explained per explainer",
    )
    profile.add_argument(
        "--markdown", action="store_true",
        help="emit the span tree as fenced markdown (for CI summaries)",
    )
    profile.add_argument(
        "--workers", type=int, default=1,
        help="also trace a parallel sweep fan-out with this many workers",
    )

    robustness = subparsers.add_parser(
        "robustness",
        help="hostile-ingestion drill + explanation-stability benchmark",
        description=(
            "Inject hostile samples into a small corpus, run the full "
            "pipeline under the quarantine policy, measure explanation "
            "stability under perturbation, and write BENCH_stability.json "
            "and BENCH_counterfactual.json plus a RunManifest carrying "
            "the quarantine report."
        ),
    )
    robustness.add_argument(
        "--samples", type=int, default=6, help="graphs per family"
    )
    robustness.add_argument("--seed", type=int, default=0)
    robustness.add_argument(
        "--hostile-fraction", type=float, default=0.1,
        help="fraction of hostile samples spliced into the corpus",
    )
    robustness.add_argument(
        "--trials", type=int, default=2, help="perturbation trials per graph"
    )
    robustness.add_argument(
        "--out", default=None,
        help="directory for BENCH_stability.json, BENCH_counterfactual.json "
             "and RUN_MANIFEST.json (default: $REPRO_BENCH_DIR or the repo "
             "root)",
    )
    robustness.add_argument(
        "--skip-stability", action="store_true",
        help="only run the hostile-ingestion drill (fast smoke mode)",
    )
    return parser.parse_args()


def run_profile(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: traced tiny pipeline + manifest."""
    from dataclasses import replace

    from repro.eval.profile import PROFILE_CONFIG, profile_pipeline
    from repro.viz import render_span_stats, render_span_tree

    config = replace(
        PROFILE_CONFIG,
        seed=args.seed,
        num_workers=args.workers,
        **({"samples_per_family": args.samples} if args.samples else {}),
    )
    print(f"# Profiled run (config: {config})\n")
    result = profile_pipeline(
        config, out_dir=args.out, graphs_per_explainer=args.explain_graphs
    )

    print("## Span tree\n")
    print(render_span_tree(result.tracer.roots, markdown=args.markdown))
    print("\n## Aggregated spans\n")
    print(render_span_stats(result.tracer.aggregate(), markdown=args.markdown))
    manifest = result.manifest
    print(
        f"\nGNN test accuracy {result.gnn_test_accuracy:.3f}; "
        f"total wall {manifest.total_wall_seconds:.2f}s "
        f"cpu {manifest.total_cpu_seconds:.2f}s"
    )
    print(f"manifest: {result.manifest_path} (fingerprint {manifest.fingerprint()[:12]})")
    print(f"trace:    {result.trace_path}")
    return 0


def run_verify(args: argparse.Namespace) -> int:
    """The ``verify`` subcommand: corpus generation + invariant gate."""
    from repro.malgen import generate_corpus
    from repro.staticcheck import CorpusVerificationError, verify_corpus

    start = time.time()
    try:
        corpus = generate_corpus(
            args.samples, seed=args.seed, size_multiplier=args.size_multiplier
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"# Corpus verification ({len(corpus)} samples, seed {args.seed}, "
        f"mode {args.mode})\n"
    )
    try:
        report = verify_corpus(
            corpus, mode=args.mode, dataflow=not args.no_dataflow
        )
    except CorpusVerificationError as error:
        print(error.report.summary())
        print(f"\nFAILED in {time.time() - start:.1f}s")
        return 1
    print(report.summary())
    print(f"\n{'OK' if report.ok else 'VIOLATIONS FOUND'} in {time.time() - start:.1f}s")
    return 0 if report.ok else 1


def run_robustness(args: argparse.Namespace) -> int:
    """The ``robustness`` subcommand: quarantine drill + stability table."""
    from repro.eval.robustness import run_robustness_drill

    return run_robustness_drill(
        samples_per_family=args.samples,
        seed=args.seed,
        hostile_fraction=args.hostile_fraction,
        trials=args.trials,
        out_dir=args.out,
        skip_stability=args.skip_stability,
    )


def run_evaluation(args: argparse.Namespace) -> int:
    """The default command: every paper artifact plus static agreement."""
    from repro.reduce import ReduceConfig

    reduce_config = ReduceConfig() if args.reduce else None
    if args.quick:
        config = ExperimentConfig(
            samples_per_family=args.samples or 6,
            gnn_epochs=60,
            explainer_epochs=150,
            subgraphx_iterations=10,
            seed=args.seed,
            num_workers=args.workers,
            task_timeout_seconds=args.task_timeout,
            reduce=reduce_config,
        )
    else:
        config = ExperimentConfig(
            samples_per_family=args.samples or 20,
            seed=args.seed,
            num_workers=args.workers,
            task_timeout_seconds=args.task_timeout,
            reduce=reduce_config,
        )

    start = time.time()
    print(f"# Evaluation run (config: {config})\n")
    artifacts = run_pipeline(config, verbose=False, resume_from=args.run_dir)
    print(f"Pipeline ready in {time.time() - start:.0f}s; "
          f"GNN test accuracy {artifacts.gnn_test_accuracy:.3f}\n")

    failures: list = []
    print("## Figure 2 — subgraph accuracy curves\n")
    sweeps = sweep_all_families(
        artifacts.gnn, artifacts.explainers, artifacts.test_set,
        step_size=config.step_size,
        artifacts=artifacts,
        run_dir=args.run_dir,
        failures=failures,
    )
    print(format_figure2(sweeps))

    print("## Table III — top-10%/20% accuracy and AUC\n")
    print(format_table3(build_table3(sweeps)))

    print("\n## Counterfactual metrics — sufficiency/necessity/edit size "
          "(top-20% subgraphs)\n")
    print(format_counterfactual_table(
        build_counterfactual_table(artifacts.gnn, sweeps, fraction=0.2),
        fraction=0.2,
    ))

    print("\n## Table IV — explanation time\n")
    graph_count = min(10, len(artifacts.test_set))
    if config.num_workers > 1:
        timings, timing_failures = run_timings(artifacts, graph_count)
        failures.extend(timing_failures)
    else:
        graphs = artifacts.test_set.graphs[:graph_count]
        timings = measure_timings(
            artifacts.explainers, graphs, artifacts.offline_training_seconds
        )
    print(format_table4(timings))

    print("\n## Table V — qualitative patterns (top-20% subgraphs)\n")
    from repro.acfg.graph import from_sample

    engine = artifacts.engine(explainer="CFGExplainer")
    pairs = []
    for family in artifacts.test_set.families:
        for graph in artifacts.test_set.of_family(family)[:3]:
            sample = artifacts.sample_for(graph.name)
            lift = artifacts.lift_map_for(graph.name)
            explanation = engine.explain_graph(
                graph,
                original=from_sample(sample) if lift is not None else None,
                lift=lift,
                step_size=10,
            )
            pairs.append((sample, explanation))
    print(format_table_v(build_family_reports(pairs)))

    print("\n## Static agreement — top-20% blocks vs static analysis\n")
    print(format_agreement(
        agreement_rows(
            sweeps,
            artifacts.samples_by_name,
            fraction=0.2,
            lift_maps=artifacts.lift_maps,
        )
    ))

    if failures:
        print(f"\n## Degraded tasks ({len(failures)})\n")
        for failure in failures:
            print(
                f"  {failure.key}: {failure.kind} after {failure.attempts} "
                f"attempt(s) — {failure.message}"
            )
    print(f"\nTotal wall clock: {time.time() - start:.0f}s")
    return 0


def main() -> None:
    args = parse_args()
    command = getattr(args, "command", None)
    if command == "verify":
        sys.exit(run_verify(args))
    if command == "profile":
        sys.exit(run_profile(args))
    if command == "robustness":
        sys.exit(run_robustness(args))
    sys.exit(run_evaluation(args))


if __name__ == "__main__":
    main()
