"""Per-family sparsity sweeps — the data behind Figure 2."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acfg.dataset import ACFGDataset
from repro.explain import Explanation, accuracy_auc, sweep_accuracy_curve
from repro.explain.base import Explainer
from repro.gnn.model import GCNClassifier

__all__ = ["FamilySweep", "sweep_family", "sweep_all_families"]


@dataclass
class FamilySweep:
    """One (family, explainer) curve: accuracy at each kept fraction."""

    family: str
    explainer_name: str
    fractions: np.ndarray
    accuracies: np.ndarray
    explanations: list[Explanation]

    @property
    def auc(self) -> float:
        return accuracy_auc(self.fractions, self.accuracies)

    def accuracy_at(self, fraction: float) -> float:
        index = int(np.argmin(np.abs(self.fractions - fraction)))
        return float(self.accuracies[index])


def sweep_family(
    model: GCNClassifier,
    explainer: Explainer,
    graphs: list,
    family: str,
    step_size: int = 10,
) -> FamilySweep:
    """Explain every graph of one family and measure the accuracy curve."""
    if not graphs:
        raise ValueError(f"no graphs for family {family}")
    explanations = [explainer.explain(graph, step_size) for graph in graphs]
    fractions, accuracies = sweep_accuracy_curve(model, explanations)
    return FamilySweep(
        family=family,
        explainer_name=explainer.name,
        fractions=fractions,
        accuracies=accuracies,
        explanations=explanations,
    )


def sweep_all_families(
    model: GCNClassifier,
    explainers: dict[str, Explainer],
    test_set: ACFGDataset,
    step_size: int = 10,
    verbose: bool = False,
    *,
    artifacts=None,
    num_workers: int | None = None,
    run_dir=None,
    failures: list | None = None,
) -> dict[str, dict[str, FamilySweep]]:
    """Figure 2's full grid: ``results[family][explainer_name]``.

    Passing ``artifacts`` (a :class:`~repro.eval.pipeline.PipelineArtifacts`)
    routes the grid through the :mod:`repro.exec` scheduler: shards run
    across ``num_workers`` processes (default ``artifacts.config.num_workers``;
    1 is the exact serial path), persist/restore per-shard under
    ``run_dir``, and shard failures degrade to
    :class:`~repro.exec.tasks.TaskFailure` records appended to
    ``failures`` instead of raising.  Results are numerically identical
    to the serial loop below.
    """
    if artifacts is not None:
        from repro.exec.sweeps import run_sweeps

        result = run_sweeps(
            artifacts,
            step_size=step_size,
            num_workers=num_workers,
            run_dir=run_dir,
            verbose=verbose,
        )
        if failures is not None:
            failures.extend(result.failures)
        return result.sweeps

    results: dict[str, dict[str, FamilySweep]] = {}
    for family in test_set.families:
        graphs = test_set.of_family(family)
        if not graphs:
            continue
        results[family] = {}
        for name, explainer in explainers.items():
            sweep = sweep_family(model, explainer, graphs, family, step_size)
            results[family][name] = sweep
            if verbose:
                print(
                    f"{family:8s} {name:14s} auc={sweep.auc:.3f} "
                    f"acc@10%={sweep.accuracy_at(0.1):.3f} "
                    f"acc@20%={sweep.accuracy_at(0.2):.3f}"
                )
    return results
