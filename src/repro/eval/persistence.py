"""Saving and restoring trained pipeline models.

``run_pipeline`` takes a couple of minutes; analysts iterating on
explanations shouldn't retrain for every script run.  ``save_models``
writes the GNN, CFGExplainer's Θ, PGExplainer's predictor and the
feature scaler to a directory; ``load_models_into`` restores them into
a freshly built (untrained) pipeline of the same configuration.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.eval.pipeline import ExperimentConfig, PipelineArtifacts
from repro.nn.serialize import load_module_into, save_module

__all__ = ["save_models", "load_models_into"]


def save_models(artifacts: PipelineArtifacts, directory: str | Path) -> None:
    """Persist every trained component of the pipeline."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_module(artifacts.gnn, directory / "gnn.npz")
    theta = artifacts.explainers["CFGExplainer"].theta
    save_module(theta, directory / "theta.npz")
    pg = artifacts.explainers["PGExplainer"]
    save_module(pg.predictor, directory / "pg_predictor.npz")
    np.save(directory / "scaler.npy", artifacts.scaler.scale)
    (directory / "config.json").write_text(json.dumps(asdict(artifacts.config)))
    (directory / "offline_seconds.json").write_text(
        json.dumps(artifacts.offline_training_seconds)
    )


def load_models_into(
    artifacts: PipelineArtifacts, directory: str | Path
) -> PipelineArtifacts:
    """Restore saved weights into ``artifacts`` (same configuration).

    The artifacts must come from a pipeline built with the same
    ``ExperimentConfig`` (shape mismatches raise).  Returns the mutated
    artifacts for chaining.
    """
    directory = Path(directory)
    stored = ExperimentConfig(**json.loads((directory / "config.json").read_text()))
    current = artifacts.config
    if tuple(stored.gnn_hidden) != tuple(current.gnn_hidden):  # JSON lists vs tuples
        raise ValueError(
            f"checkpoint GNN shape {stored.gnn_hidden} != config {current.gnn_hidden}"
        )
    load_module_into(artifacts.gnn, directory / "gnn.npz")
    load_module_into(
        artifacts.explainers["CFGExplainer"].theta, directory / "theta.npz"
    )
    load_module_into(
        artifacts.explainers["PGExplainer"].predictor, directory / "pg_predictor.npz"
    )
    artifacts.scaler.scale = np.load(directory / "scaler.npy")
    artifacts.offline_training_seconds.update(
        json.loads((directory / "offline_seconds.json").read_text())
    )
    return artifacts
