"""Saving and restoring trained pipeline state — crash-safely.

``run_pipeline`` takes a couple of minutes; analysts iterating on
explanations shouldn't retrain for every script run.  ``save_models``
writes the GNN, CFGExplainer's Θ, PGExplainer's predictor and the
feature scaler to a directory; ``load_models_into`` restores them into
a freshly built (untrained) pipeline of the same configuration.

Every write here is *atomic*: content is staged in a temporary sibling
(file or directory) and renamed into place only once complete, with a
``MANIFEST.json`` completeness marker listing the expected files.  A
process killed mid-save can therefore never leave a checkpoint that
half-loads — ``load_models_into`` validates the manifest, the stored
config and every parameter shape *before* mutating anything.

:class:`StageStore` extends the same discipline to whole pipeline runs:
each completed stage of :func:`repro.eval.pipeline.run_pipeline`
persists under ``<run_dir>/stages/<name>/`` so an interrupted run can
resume from its last completed stage (see ``resume_from``).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import asdict, fields
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.eval.pipeline import (
    EXECUTION_ONLY_FIELDS,
    ExperimentConfig,
    PipelineArtifacts,
)
from repro.nn.serialize import checked_parameter_arrays, save_module

__all__ = [
    "CheckpointError",
    "MANIFEST_NAME",
    "StageStore",
    "atomic_replace_dir",
    "atomic_write_bytes",
    "checkpoint_complete",
    "load_models_into",
    "save_models",
    "validate_config_compatible",
    "validate_scale_vector",
]

MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_SCHEMA = 1


class CheckpointError(RuntimeError):
    """An on-disk checkpoint is missing, incomplete or inconsistent."""


# ----------------------------------------------------------------------
# atomic write primitives
# ----------------------------------------------------------------------
def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a temp file + atomic rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


@contextmanager
def atomic_replace_dir(final: str | Path) -> Iterator[Path]:
    """Stage writes in a temp sibling directory, renamed in on success.

    Yields the temporary directory; on a clean exit it replaces
    ``final`` (removing any previous version), on an exception it is
    deleted, leaving ``final`` untouched.  Abandoned temp directories
    from killed processes (``.<name>.*``) are swept on entry.
    """
    final = Path(final)
    final.parent.mkdir(parents=True, exist_ok=True)
    for stale in final.parent.glob(f".{final.name}.*"):
        if stale.is_dir():
            shutil.rmtree(stale, ignore_errors=True)
    tmp = Path(tempfile.mkdtemp(dir=final.parent, prefix=f".{final.name}."))
    try:
        yield tmp
        if final.exists():
            shutil.rmtree(final)
        os.replace(tmp, final)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def _write_manifest(directory: Path, **extra) -> None:
    files = sorted(p.name for p in directory.iterdir() if p.name != MANIFEST_NAME)
    payload = {"schema": _MANIFEST_SCHEMA, "files": files, **extra}
    (directory / MANIFEST_NAME).write_text(json.dumps(payload, indent=2))


def _read_manifest(directory: Path) -> dict:
    """Validate a checkpoint directory's completeness marker."""
    if not directory.is_dir():
        raise CheckpointError(f"checkpoint directory {directory} does not exist")
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise CheckpointError(
            f"{directory} has no {MANIFEST_NAME} — the save was interrupted "
            "or predates atomic checkpoints; refusing to load it"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"unreadable manifest in {directory}: {error}") from error
    missing = [
        name for name in manifest.get("files", ()) if not (directory / name).is_file()
    ]
    if missing:
        raise CheckpointError(f"checkpoint {directory} is missing files: {missing}")
    return manifest


def checkpoint_complete(directory: str | Path) -> bool:
    """True when ``directory`` holds a complete, manifest-valid checkpoint."""
    try:
        _read_manifest(Path(directory))
    except CheckpointError:
        return False
    return True


# ----------------------------------------------------------------------
# validation helpers
# ----------------------------------------------------------------------
def validate_config_compatible(
    stored: ExperimentConfig, current: ExperimentConfig
) -> None:
    """Raise unless ``stored`` and ``current`` describe the same run.

    Every identity-affecting field must match — seed, corpus size and
    scaling, split fraction, architecture, training schedules — so a
    checkpoint can never be silently loaded over a different corpus or
    scaler.  Execution-only fields (:data:`EXECUTION_ONLY_FIELDS`:
    worker count, timeouts, verify gating) are allowed to differ.
    """
    if tuple(stored.gnn_hidden) != tuple(current.gnn_hidden):
        raise ValueError(
            f"checkpoint GNN shape {stored.gnn_hidden} != config {current.gnn_hidden}"
        )
    mismatched = [
        f"{f.name}: stored {getattr(stored, f.name)!r} != "
        f"current {getattr(current, f.name)!r}"
        for f in fields(ExperimentConfig)
        if f.name not in EXECUTION_ONLY_FIELDS
        and getattr(stored, f.name) != getattr(current, f.name)
    ]
    if mismatched:
        raise ValueError(
            "checkpoint was produced by an incompatible config — "
            + "; ".join(mismatched)
        )


def validate_scale_vector(scale: np.ndarray, expected_shape: tuple[int, ...]) -> None:
    """Enforce :meth:`FeatureScaler.fit`'s invariants on a stored scale.

    ``fit`` maps zero column maxima to 1, so a legitimate scale vector
    is finite and strictly positive; anything else would divide by zero
    (or flip signs) on transform.
    """
    scale = np.asarray(scale)
    if scale.shape != tuple(expected_shape):
        raise CheckpointError(
            f"stored scaler shape {scale.shape} != expected {tuple(expected_shape)}"
        )
    if not np.all(np.isfinite(scale)):
        raise CheckpointError("stored scaler contains non-finite entries")
    if np.any(scale <= 0):
        raise CheckpointError(
            "stored scaler contains non-positive entries (fit() maps zero "
            "maxima to 1; this checkpoint is corrupt)"
        )


# ----------------------------------------------------------------------
# trained-model checkpoints
# ----------------------------------------------------------------------
def save_models(artifacts: PipelineArtifacts, directory: str | Path) -> None:
    """Persist every trained component of the pipeline, atomically.

    All files are staged in a temporary directory and renamed into
    ``directory`` in one step, with a ``MANIFEST.json`` completeness
    marker — a kill mid-save leaves either the previous checkpoint or
    nothing, never a partial directory.
    """
    directory = Path(directory)
    with atomic_replace_dir(directory) as tmp:
        save_module(artifacts.gnn, tmp / "gnn.npz")
        theta = artifacts.explainers["CFGExplainer"].theta
        save_module(theta, tmp / "theta.npz")
        pg = artifacts.explainers["PGExplainer"]
        save_module(pg.predictor, tmp / "pg_predictor.npz")
        np.save(tmp / "scaler.npy", artifacts.scaler.scale)
        (tmp / "config.json").write_text(json.dumps(asdict(artifacts.config)))
        (tmp / "offline_seconds.json").write_text(
            json.dumps(artifacts.offline_training_seconds)
        )
        (tmp / "metrics.json").write_text(
            json.dumps({"gnn_test_accuracy": artifacts.gnn_test_accuracy})
        )
        _write_manifest(tmp, kind="models")


def load_models_into(
    artifacts: PipelineArtifacts, directory: str | Path
) -> PipelineArtifacts:
    """Restore saved weights into ``artifacts`` (same configuration).

    Everything is validated *before* anything is mutated: the manifest
    completeness marker, the full stored-vs-current config (not just the
    GNN shape — a checkpoint from a different corpus, seed or scaler
    raises instead of loading silently), the scaler's invariants, and
    every parameter shape of all three modules.  After the weights land,
    the shared embedding cache is invalidated and repopulated so no
    consumer can read forwards of the pre-load weights.  Returns the
    mutated artifacts for chaining.
    """
    directory = Path(directory)
    _read_manifest(directory)

    stored_config = ExperimentConfig(
        **json.loads((directory / "config.json").read_text())
    )
    validate_config_compatible(stored_config, artifacts.config)

    scale = np.load(directory / "scaler.npy")
    expected = (
        artifacts.scaler.scale.shape
        if artifacts.scaler.scale is not None
        else (artifacts.train_set[0].num_features,)
    )
    validate_scale_vector(scale, tuple(expected))

    pg = artifacts.explainers["PGExplainer"]
    theta = artifacts.explainers["CFGExplainer"].theta
    staged = [
        (artifacts.gnn, checked_parameter_arrays(directory / "gnn.npz", artifacts.gnn)[0]),
        (theta, checked_parameter_arrays(directory / "theta.npz", theta)[0]),
        (
            pg.predictor,
            checked_parameter_arrays(directory / "pg_predictor.npz", pg.predictor)[0],
        ),
    ]
    offline = json.loads((directory / "offline_seconds.json").read_text())
    metrics_path = directory / "metrics.json"
    metrics = json.loads(metrics_path.read_text()) if metrics_path.is_file() else {}

    # -- everything validated; mutate ----------------------------------
    for module, arrays in staged:
        for param, array in zip(module.parameters(), arrays):
            param.data[...] = array
    artifacts.scaler.scale = scale
    artifacts.offline_training_seconds.update(offline)
    if "gnn_test_accuracy" in metrics:
        artifacts.gnn_test_accuracy = float(metrics["gnn_test_accuracy"])
    # The predictor now holds trained weights, regardless of whether
    # this artifacts object ever went through fit().
    pg._trained = True

    # Forwards cached against the pre-load weights are stale; rebuild
    # them so explainers and experiments read post-restore values.  (Â
    # depends only on graph content, but it is cheap to recompute and a
    # cleared cache can never serve a stale entry.)
    a_hat_cache = getattr(artifacts.gnn, "a_hat_cache", None)
    if a_hat_cache is not None:
        a_hat_cache.clear()
    if artifacts.embedding_cache is not None:
        artifacts.embedding_cache.clear()
        batch = artifacts.config.eval_batch_size
        artifacts.embedding_cache.populate(artifacts.train_set, batch_size=batch)
        artifacts.embedding_cache.populate(artifacts.test_set, batch_size=batch)
    return artifacts


# ----------------------------------------------------------------------
# stage-level run checkpoints
# ----------------------------------------------------------------------
class StageStore:
    """Atomic per-stage checkpoints under ``<run_dir>/stages/<name>/``.

    Each stage directory is written via :func:`atomic_replace_dir` with
    a manifest marker, so ``complete`` only reports stages whose save
    finished.  The run directory pins the experiment config
    (``config.json`` at its root); binding a different config raises.
    """

    def __init__(self, run_dir: str | Path):
        self.run_dir = Path(run_dir)
        self.stages_dir = self.run_dir / "stages"

    def path(self, stage: str) -> Path:
        return self.stages_dir / stage

    def complete(self, stage: str) -> bool:
        return checkpoint_complete(self.path(stage))

    @contextmanager
    def writing(self, stage: str) -> Iterator[Path]:
        """Stage a checkpoint; the manifest marker is written last."""
        with atomic_replace_dir(self.path(stage)) as tmp:
            yield tmp
            _write_manifest(tmp, kind="stage", stage=stage)

    def bind_config(self, config: ExperimentConfig) -> None:
        """Pin the run directory to ``config`` (or validate against it)."""
        path = self.run_dir / "config.json"
        if path.is_file():
            stored = ExperimentConfig(**json.loads(path.read_text()))
            validate_config_compatible(stored, config)
        else:
            self.run_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, json.dumps(asdict(config)).encode())
