"""Renderers for the paper's Table III, Table IV and Figure 2 (ASCII),
plus the counterfactual sufficiency/necessity/edit-size table."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.sweep import FamilySweep
from repro.eval.timing import ExplainerTiming
from repro.explain.metrics import edit_size, necessity, sufficiency
from repro.gnn.model import GCNClassifier

__all__ = [
    "Table3Row",
    "CounterfactualRow",
    "build_table3",
    "build_counterfactual_table",
    "format_table3",
    "format_table4",
    "format_figure2",
    "format_counterfactual_table",
]

#: Column order shared by Table III and the counterfactual table.
EXPLAINER_ORDER: tuple[str, ...] = (
    "CFGExplainer",
    "GNNExplainer",
    "SubgraphX",
    "PGExplainer",
    "CFExplainer",
)


@dataclass(frozen=True)
class Table3Row:
    """One family's row: accuracy@10%, accuracy@20% and AUC per explainer."""

    family: str
    cells: dict[str, tuple[float, float, float]]  # explainer -> (a10, a20, auc)


def build_table3(
    sweeps: dict[str, dict[str, FamilySweep]],
    explainer_order: tuple[str, ...] = EXPLAINER_ORDER,
) -> list[Table3Row]:
    """Summarize Figure 2 sweeps into Table III rows plus an Average row."""
    rows = []
    for family, by_explainer in sweeps.items():
        cells = {}
        for name in explainer_order:
            if name not in by_explainer:
                continue
            sweep = by_explainer[name]
            cells[name] = (
                sweep.accuracy_at(0.1),
                sweep.accuracy_at(0.2),
                sweep.auc,
            )
        rows.append(Table3Row(family, cells))

    if rows:
        averages = {}
        for name in explainer_order:
            values = [row.cells[name] for row in rows if name in row.cells]
            if values:
                stacked = np.array(values)
                averages[name] = tuple(stacked.mean(axis=0))
        rows.append(Table3Row("Average", averages))
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    """Render Table III as fixed-width text."""
    if not rows:
        return "(empty)"
    explainers = [name for name in rows[0].cells]
    header_parts = [f"{'Family':10s}"]
    for name in explainers:
        header_parts.append(f"{name + ' 10%/20%/AUC':>28s}")
    lines = [" | ".join(header_parts), "-" * (12 + 31 * len(explainers))]
    for row in rows:
        parts = [f"{row.family:10s}"]
        for name in explainers:
            if name in row.cells:
                a10, a20, auc = row.cells[name]
                parts.append(f"{a10:8.4f} {a20:8.4f} {auc:8.4f} ")
            else:
                parts.append(" " * 28)
        lines.append(" | ".join(parts))
    return "\n".join(lines)


@dataclass(frozen=True)
class CounterfactualRow:
    """One explainer's counterfactual scores at a fixed kept fraction."""

    explainer: str
    sufficiency: float
    necessity: float
    edit_size: float


def build_counterfactual_table(
    model: GCNClassifier,
    sweeps: dict[str, dict[str, FamilySweep]],
    fraction: float = 0.2,
    explainer_order: tuple[str, ...] = EXPLAINER_ORDER,
) -> list[CounterfactualRow]:
    """Sufficiency / necessity / edit-size per explainer, pooled over
    every family's explanations (the CFF-style dual of Table III)."""
    rows = []
    for name in explainer_order:
        explanations = [
            explanation
            for family in sweeps
            if name in sweeps[family]
            for explanation in sweeps[family][name].explanations
        ]
        if not explanations:
            continue
        rows.append(
            CounterfactualRow(
                explainer=name,
                sufficiency=sufficiency(model, explanations, fraction),
                necessity=necessity(model, explanations, fraction),
                edit_size=edit_size(explanations, fraction),
            )
        )
    return rows


def format_counterfactual_table(
    rows: list[CounterfactualRow], fraction: float = 0.2
) -> str:
    """Render the counterfactual table as fixed-width text."""
    if not rows:
        return "(empty)"
    pct = int(round(100 * fraction))
    lines = [
        f"{'Explainer':14s} | {f'Sufficiency@{pct}%':>16s} | "
        f"{f'Necessity@{pct}%':>14s} | {'Edit size':>10s}",
        "-" * 66,
    ]
    for row in rows:
        lines.append(
            f"{row.explainer:14s} | {row.sufficiency:16.4f} | "
            f"{row.necessity:14.4f} | {row.edit_size:10.4f}"
        )
    return "\n".join(lines)


def format_table4(timings: list[ExplainerTiming]) -> str:
    """Render Table IV: offline training time + per-explanation time."""
    lines = [
        f"{'Explainer':14s} | {'Offline training':>18s} | {'Single explanation':>24s}",
        "-" * 64,
    ]
    for timing in timings:
        offline = (
            f"{timing.offline_seconds:.1f} s" if timing.offline_seconds else "-"
        )
        single = f"{timing.mean_seconds:.3f} ± {timing.std_seconds:.3f} s"
        lines.append(f"{timing.explainer_name:14s} | {offline:>18s} | {single:>24s}")
    return "\n".join(lines)


def format_figure2(sweeps: dict[str, dict[str, FamilySweep]]) -> str:
    """Render every family's accuracy-vs-size series (Figure 2 as text)."""
    lines = []
    for family, by_explainer in sweeps.items():
        lines.append(f"--- {family} ---")
        any_sweep = next(iter(by_explainer.values()))
        header = "size%:  " + "  ".join(
            f"{int(f * 100):4d}" for f in any_sweep.fractions
        )
        lines.append(header)
        for name, sweep in by_explainer.items():
            series = "  ".join(f"{a:4.2f}" for a in sweep.accuracies)
            lines.append(f"{name:14s} {series}  (AUC {sweep.auc:.3f})")
        lines.append("")
    return "\n".join(lines)
