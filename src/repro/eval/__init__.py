"""End-to-end evaluation harness reproducing the paper's Section V."""

from repro.eval.pipeline import (
    ExperimentConfig,
    PAPER_SCALE_CONFIG,
    PipelineArtifacts,
    run_pipeline,
)
from repro.eval.sweep import FamilySweep, sweep_all_families
from repro.eval.tables import (
    build_table3,
    format_figure2,
    format_table3,
    format_table4,
)
from repro.eval.timing import ExplainerTiming, measure_timings
from repro.eval.persistence import load_models_into, save_models

__all__ = [
    "ExperimentConfig",
    "PAPER_SCALE_CONFIG",
    "PipelineArtifacts",
    "run_pipeline",
    "FamilySweep",
    "sweep_all_families",
    "build_table3",
    "format_table3",
    "format_table4",
    "format_figure2",
    "ExplainerTiming",
    "measure_timings",
    "save_models",
    "load_models_into",
]
