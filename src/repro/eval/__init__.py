"""End-to-end evaluation harness reproducing the paper's Section V."""

from repro.eval.agreement import (
    AgreementRow,
    agreement_rows,
    format_agreement,
    static_agreement,
    suspicious_blocks,
)
from repro.eval.persistence import (
    CheckpointError,
    StageStore,
    checkpoint_complete,
    load_models_into,
    save_models,
)
from repro.eval.pipeline import (
    EXECUTION_ONLY_FIELDS,
    ExperimentConfig,
    PAPER_SCALE_CONFIG,
    PIPELINE_STAGES,
    PipelineArtifacts,
    PipelineInterrupted,
    build_untrained_artifacts,
    run_pipeline,
)
from repro.eval.profile import PROFILE_CONFIG, ProfileResult, profile_pipeline
from repro.eval.sweep import FamilySweep, sweep_all_families
from repro.eval.tables import (
    build_table3,
    format_figure2,
    format_table3,
    format_table4,
)
from repro.eval.timing import ExplainerTiming, measure_timings

__all__ = [
    "EXECUTION_ONLY_FIELDS",
    "PAPER_SCALE_CONFIG",
    "PIPELINE_STAGES",
    "PROFILE_CONFIG",
    "AgreementRow",
    "CheckpointError",
    "ExperimentConfig",
    "ExplainerTiming",
    "FamilySweep",
    "PipelineArtifacts",
    "PipelineInterrupted",
    "ProfileResult",
    "StageStore",
    "agreement_rows",
    "build_table3",
    "build_untrained_artifacts",
    "checkpoint_complete",
    "format_agreement",
    "format_figure2",
    "format_table3",
    "format_table4",
    "load_models_into",
    "measure_timings",
    "profile_pipeline",
    "run_pipeline",
    "save_models",
    "static_agreement",
    "suspicious_blocks",
    "sweep_all_families",
]
