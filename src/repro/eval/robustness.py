"""The robustness drill: hostile ingestion + explanation stability.

Behind ``python -m repro.eval robustness``.  The drill answers three
questions an operator of this pipeline should be able to answer on
demand:

1. **Does ingestion survive a hostile feed?**  A fraction of
   deliberately malformed samples (:func:`repro.harden.inject_hostile`)
   is spliced into a freshly generated corpus and the *full* pipeline —
   dataset, GNN training, explainer training — runs under
   ``on_bad_input="quarantine"``.  The run must complete, every
   injected sample must be quarantined, and the quarantine report lands
   in the :class:`~repro.obs.RunManifest`.
2. **Do explanations survive benign perturbation?**  The
   :mod:`repro.eval.stability` benchmark perturbs held-out graphs and
   reports top-k overlap and rank correlation per explainer, writing
   ``BENCH_stability.json`` for the CI regression gate.
3. **Do explanations hold up counterfactually?**  Every explainer's
   sufficiency / necessity / edit-size at the top-20% keep — plus
   :class:`~repro.explain.CFExplainer`'s prediction-flip rate and mean
   deletion-set size — land in ``BENCH_counterfactual.json``, gated the
   same way.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.eval.pipeline import ExperimentConfig, run_pipeline
from repro.eval.stability import (
    StabilityConfig,
    format_stability_table,
    run_stability,
    write_stability_bench,
)
from repro.explain.metrics import edit_size, necessity, sufficiency
from repro.harden import inject_hostile
from repro.obs import RunManifest, span, tracing

__all__ = [
    "DRILL_CONFIG",
    "counterfactual_bench_payload",
    "run_robustness_drill",
    "write_counterfactual_bench",
]

#: Small-but-complete training knobs (PROFILE_CONFIG-sized) with the
#: quarantine policy on — the whole point of the drill.
DRILL_CONFIG = ExperimentConfig(
    samples_per_family=6,
    size_multiplier=1,
    gnn_epochs=30,
    explainer_epochs=60,
    gnnexplainer_epochs=10,
    pgexplainer_epochs=4,
    subgraphx_iterations=8,
    subgraphx_shapley_samples=2,
    cfexplainer_iterations=60,
    step_size=20,
    on_bad_input="quarantine",
)


def counterfactual_bench_payload(
    artifacts,
    fraction: float = 0.2,
    graphs_per_family: int = 1,
    step_size: int = 20,
) -> dict:
    """The ``BENCH_counterfactual.json`` payload.

    One cell per explainer over a deterministic per-family sample of
    the test split: sufficiency / necessity / edit-size at the
    top-``fraction`` keep, plus CFExplainer's counterfactual search
    quality (``flip_rate``, ``mean_deleted_edges``).  Leaves are gated
    by :mod:`repro.tools.bench_compare`'s absolute policies.
    """
    graphs = []
    for family in artifacts.test_set.families:
        graphs.extend(
            sorted(artifacts.test_set.of_family(family), key=lambda g: g.name)[
                :graphs_per_family
            ]
        )
    payload: dict = {}
    for name, explainer in artifacts.explainers.items():
        explanations = [
            explainer.explain(graph, step_size=step_size) for graph in graphs
        ]
        payload[name] = {
            "sufficiency": round(
                sufficiency(artifacts.gnn, explanations, fraction), 4
            ),
            "necessity": round(
                necessity(artifacts.gnn, explanations, fraction), 4
            ),
            "edit_size": round(edit_size(explanations, fraction), 4),
        }
    cf = artifacts.explainers.get("CFExplainer")
    if cf is not None:
        results = [cf.counterfactual(graph) for graph in graphs]
        flipped = [r for r in results if r.flipped]
        payload["CFExplainer"]["flip_rate"] = round(
            len(flipped) / len(results), 4
        ) if results else 0.0
        payload["CFExplainer"]["mean_deleted_edges"] = round(
            float(np.mean([r.edit_size for r in flipped])), 4
        ) if flipped else 0.0
    return payload


def write_counterfactual_bench(payload: dict, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def run_robustness_drill(
    samples_per_family: int = 6,
    seed: int = 0,
    hostile_fraction: float = 0.1,
    trials: int = 2,
    out_dir: str | Path | None = None,
    skip_stability: bool = False,
    verbose: bool = False,
) -> int:
    """Run the drill; returns a process exit code (0 = all invariants held)."""
    from dataclasses import replace

    config = replace(
        DRILL_CONFIG, samples_per_family=samples_per_family, seed=seed
    )
    if out_dir is None:
        from repro.tools.bench_compare import default_bench_dir

        out_dir = default_bench_dir()
    out_dir = Path(out_dir)

    injected: list[str] = []

    def transform(corpus):
        hostile_corpus, names = inject_hostile(
            corpus, fraction=hostile_fraction, seed=seed
        )
        injected.extend(names)
        return hostile_corpus

    manifest = RunManifest.capture(
        config=config,
        seed=seed,
        extra={"drill": "robustness", "hostile_fraction": hostile_fraction},
    )
    print(
        f"# Robustness drill ({samples_per_family} samples/family, "
        f"{hostile_fraction:.0%} hostile, seed {seed})\n"
    )
    with tracing() as tracer:
        with span("run"):
            artifacts = run_pipeline(
                config, verbose=verbose, corpus_transform=transform
            )
            rows = None
            if not skip_stability:
                rows = run_stability(
                    artifacts,
                    StabilityConfig(trials=trials, seed=seed,
                                    step_size=config.step_size),
                )

    report = artifacts.quarantine
    print("## Ingestion quarantine\n")
    print(report.summary())
    quarantined = set(report.quarantined)
    missed = [name for name in injected if name not in quarantined]
    unexpected = sorted(quarantined - set(injected))
    print(
        f"\ninjected {len(injected)} hostile sample(s); "
        f"{len(quarantined)} quarantined"
    )
    ok = not missed
    if missed:
        print(f"MISSED hostile sample(s): {missed}")
    if unexpected:
        # Legitimate samples getting dropped is worth surfacing, but a
        # stricter sanitizer config is not an invariant failure.
        print(f"note: quarantined beyond the injected set: {unexpected}")
    print(f"\nGNN test accuracy (post-quarantine): "
          f"{artifacts.gnn_test_accuracy:.3f}")

    bench_path = None
    if rows is not None:
        print("\n## Explanation stability\n")
        print(format_stability_table(rows))
        bench_path = write_stability_bench(rows, out_dir / "BENCH_stability.json")
        print(f"\nwrote {bench_path}")

        print("\n## Counterfactual quality (top-20% keep)\n")
        cf_payload = counterfactual_bench_payload(
            artifacts, step_size=config.step_size
        )
        for name, cell in cf_payload.items():
            print(f"  {name:14s} " + "  ".join(
                f"{key}={value:.4f}" for key, value in cell.items()
            ))
        cf_path = write_counterfactual_bench(
            cf_payload, out_dir / "BENCH_counterfactual.json"
        )
        print(f"\nwrote {cf_path}")

    manifest.extra["quarantine"] = report.to_dict()
    manifest.extra["hostile_injected"] = sorted(injected)
    manifest.finalize(tracer)
    manifest_path = manifest.write(out_dir / "RUN_MANIFEST.json")
    print(f"manifest: {manifest_path}")
    print(f"\n{'OK' if ok else 'FAILED'}")
    return 0 if ok else 1
