"""The full experimental pipeline: corpus → GNN → explainers.

``run_pipeline`` performs every setup step of Section V — generate the
(synthetic) dataset, train the GCN classifier, train CFGExplainer's Θ
and PGExplainer's mask predictor offline — and returns the artifacts
the individual experiments (Figure 2, Tables III–V) consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.acfg import ACFGDataset, FeatureScaler, train_test_split
from repro.baselines import (
    GNNExplainerBaseline,
    PGExplainerBaseline,
    SubgraphXBaseline,
)
from repro.core import CFGExplainer, CFGExplainerModel, train_cfgexplainer
from repro.explain.base import Explainer
from repro.gnn import (
    TRAINING_MODES,
    EmbeddingCache,
    GCNClassifier,
    evaluate_accuracy,
    train_gnn,
)
from repro.malgen import generate_corpus
from repro.malgen.corpus import LabeledSample
from repro.obs import span as obs_span

__all__ = [
    "ExperimentConfig",
    "PAPER_SCALE_CONFIG",
    "PipelineArtifacts",
    "run_pipeline",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Every knob of the evaluation, with scaled-down defaults.

    ``PAPER_SCALE_CONFIG`` records the values the paper used on its
    Tesla P100; the defaults here run the full pipeline in a couple of
    minutes on CPU while keeping every architectural ratio.
    """

    # dataset
    samples_per_family: int = 20
    corpus_seed: int = 0
    size_multiplier: int = 3
    test_fraction: float = 0.25

    # GNN classifier Φ
    gnn_hidden: tuple[int, ...] = (64, 48, 32)
    gnn_epochs: int = 150
    gnn_batch_size: int = 16
    gnn_lr: float = 0.005

    #: Execution engine: "batched" packs each mini-batch into one
    #: block-diagonal sparse pass (fast path), "per_graph" runs the
    #: reference one-graph-at-a-time loop.  Both compute the same loss.
    batch_mode: str = "batched"
    #: Graphs per batched inference pass (evaluation, embedding cache).
    eval_batch_size: int = 64

    # CFGExplainer Θ
    explainer_epochs: int = 600
    explainer_minibatch: int = 16
    explainer_lr: float = 0.003

    # baselines
    gnnexplainer_epochs: int = 60
    pgexplainer_epochs: int = 12
    subgraphx_iterations: int = 25
    subgraphx_shapley_samples: int = 4

    # evaluation
    step_size: int = 10
    seed: int = 0

    #: Corpus invariant gate (repro.staticcheck): "strict" fails the run
    #: on any CFG/ACFG invariant violation, "warn" downgrades to a
    #: warning, None skips verification.
    verify_mode: str | None = "strict"

    def __post_init__(self):
        if self.samples_per_family <= 1:
            raise ValueError("need at least 2 samples per family to split")
        if self.batch_mode not in TRAINING_MODES:
            raise ValueError(
                f"batch_mode must be one of {TRAINING_MODES}, got "
                f"{self.batch_mode!r}"
            )
        if self.eval_batch_size <= 0:
            raise ValueError("eval_batch_size must be positive")
        if self.verify_mode not in (None, "strict", "warn"):
            raise ValueError(
                f"verify_mode must be None, 'strict' or 'warn', got "
                f"{self.verify_mode!r}"
            )


#: The configuration reported in the paper (Section V-A), for reference
#: and for anyone with the hardware to run at full scale.
PAPER_SCALE_CONFIG = ExperimentConfig(
    samples_per_family=88,  # 1056 graphs / 12 families
    size_multiplier=20,  # graphs up to ~7000 blocks, like YANCFG
    gnn_hidden=(1024, 512, 128),
    gnn_epochs=500,
    explainer_epochs=2000,
)


@dataclass
class PipelineArtifacts:
    """Everything the experiments need, produced once by ``run_pipeline``."""

    config: ExperimentConfig
    corpus: list[LabeledSample]
    train_set: ACFGDataset
    test_set: ACFGDataset
    scaler: FeatureScaler
    gnn: GCNClassifier
    gnn_test_accuracy: float
    explainers: dict[str, Explainer]
    offline_training_seconds: dict[str, float] = field(default_factory=dict)
    samples_by_name: dict[str, LabeledSample] = field(default_factory=dict)
    #: Shared frozen-GNN forward cache over the train and test splits;
    #: explainer training and the experiments read Z / predictions from
    #: it instead of re-running Φ.
    embedding_cache: EmbeddingCache | None = None

    def sample_for(self, graph_name: str) -> LabeledSample:
        return self.samples_by_name[graph_name]


def run_pipeline(
    config: ExperimentConfig | None = None, verbose: bool = False
) -> PipelineArtifacts:
    """Run the whole setup stage and return the experiment artifacts.

    Stage boundaries are traced (``pipeline.corpus`` → ``.dataset`` →
    ``.train`` → ``.eval`` → ``.explain``) when a
    :func:`repro.obs.tracing` context is active; untraced runs pay
    nothing.  ``python -m repro.eval profile`` renders the resulting
    span tree and writes the :class:`~repro.obs.RunManifest`.
    """
    config = config or ExperimentConfig()
    rng_seed = config.seed

    with obs_span("pipeline.corpus"):
        corpus = generate_corpus(
            config.samples_per_family,
            seed=config.corpus_seed,
            size_multiplier=config.size_multiplier,
        )
    with obs_span("pipeline.dataset"):
        dataset = ACFGDataset.from_corpus(corpus, verify=config.verify_mode)
        train_raw, test_raw = train_test_split(
            dataset, config.test_fraction, seed=rng_seed
        )
        scaler = FeatureScaler().fit(list(train_raw))
        train_set, test_set = train_raw.scaled(scaler), test_raw.scaled(scaler)

    if verbose:
        print(
            f"corpus: {len(corpus)} graphs, padded to N={dataset.n}; "
            f"train={len(train_set)} test={len(test_set)}"
        )

    gnn = GCNClassifier(
        in_features=train_set[0].num_features,
        hidden=config.gnn_hidden,
        num_classes=dataset.num_classes,
        rng=np.random.default_rng(rng_seed),
    )
    with obs_span("pipeline.train"):
        train_gnn(
            gnn,
            train_set,
            epochs=config.gnn_epochs,
            batch_size=config.gnn_batch_size,
            lr=config.gnn_lr,
            seed=rng_seed,
            mode=config.batch_mode,
            verbose=verbose,
        )
    with obs_span("pipeline.eval"):
        gnn_accuracy = evaluate_accuracy(
            gnn, test_set, batch_size=config.eval_batch_size
        )
        if verbose:
            print(f"GNN test accuracy: {gnn_accuracy:.3f}")

        # One shared cache of frozen-GNN forwards over both splits: Z and
        # predictions computed here feed CFGExplainer training,
        # PGExplainer's offline stage and the Figure 2 / Tables III-IV
        # experiments.
        embedding_cache = EmbeddingCache(gnn)
        embedding_cache.populate(train_set, batch_size=config.eval_batch_size)
        embedding_cache.populate(test_set, batch_size=config.eval_batch_size)

    offline: dict[str, float] = {}

    with obs_span("pipeline.explain"):
        with obs_span("pipeline.explain.CFGExplainer"):
            start = time.perf_counter()
            theta = CFGExplainerModel(
                gnn.embedding_size,
                dataset.num_classes,
                rng=np.random.default_rng(rng_seed + 1),
            )
            train_cfgexplainer(
                theta,
                gnn,
                train_set,
                num_epochs=config.explainer_epochs,
                minibatch_size=config.explainer_minibatch,
                lr=config.explainer_lr,
                seed=rng_seed,
                embedding_cache=embedding_cache,
            )
            offline["CFGExplainer"] = time.perf_counter() - start

        with obs_span("pipeline.explain.PGExplainer"):
            start = time.perf_counter()
            pg = PGExplainerBaseline(
                gnn,
                epochs=config.pgexplainer_epochs,
                seed=rng_seed,
                embedding_cache=embedding_cache,
            )
            pg.fit(train_set)
            offline["PGExplainer"] = time.perf_counter() - start
        offline["GNNExplainer"] = 0.0  # local method: no offline stage
        offline["SubgraphX"] = 0.0

    explainers: dict[str, Explainer] = {
        "CFGExplainer": CFGExplainer(gnn, theta, embedding_cache=embedding_cache),
        "GNNExplainer": GNNExplainerBaseline(
            gnn, epochs=config.gnnexplainer_epochs, seed=rng_seed
        ),
        "SubgraphX": SubgraphXBaseline(
            gnn,
            mcts_iterations=config.subgraphx_iterations,
            shapley_samples=config.subgraphx_shapley_samples,
            seed=rng_seed,
        ),
        "PGExplainer": pg,
    }

    return PipelineArtifacts(
        config=config,
        corpus=corpus,
        train_set=train_set,
        test_set=test_set,
        scaler=scaler,
        gnn=gnn,
        gnn_test_accuracy=gnn_accuracy,
        explainers=explainers,
        offline_training_seconds=offline,
        samples_by_name={s.program.name: s for s in corpus},
        embedding_cache=embedding_cache,
    )
