"""The full experimental pipeline: corpus → GNN → explainers.

``run_pipeline`` performs every setup step of Section V — generate the
(synthetic) dataset, train the GCN classifier, train CFGExplainer's Θ
and PGExplainer's mask predictor offline — and returns the artifacts
the individual experiments (Figure 2, Tables III–V) consume.
"""

from __future__ import annotations

import json
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import kept lazy at runtime, like staticcheck's
    from repro.acfg.ingest import IngestPolicy
    from repro.harden.sanitize import QuarantineReport
    from repro.serve.engine import InferenceEngine

from repro.acfg import ACFGDataset, FeatureScaler, train_test_split
from repro.baselines import (
    GNNExplainerBaseline,
    PGExplainerBaseline,
    SubgraphXBaseline,
)
from repro.core import CFGExplainer, CFGExplainerModel, train_cfgexplainer
from repro.explain.base import Explainer
from repro.explain.counterfactual import CFExplainer
from repro.gnn import (
    TRAINING_MODES,
    EmbeddingCache,
    GCNClassifier,
    evaluate_accuracy,
    train_gnn,
)
from repro.malgen import generate_corpus
from repro.malgen.corpus import LabeledSample
from repro.nn.serialize import load_module_into, save_module
from repro.obs import add_counter, span as obs_span
from repro.reduce import LiftMap, ReduceConfig

__all__ = [
    "EXECUTION_ONLY_FIELDS",
    "ExperimentConfig",
    "PAPER_SCALE_CONFIG",
    "PIPELINE_STAGES",
    "PipelineArtifacts",
    "PipelineInterrupted",
    "build_untrained_artifacts",
    "run_pipeline",
]

#: Config fields that steer *how* a run executes (scheduling, gating)
#: without affecting any trained weight or measured number.  Checkpoint
#: compatibility validation ignores them: a pipeline trained serially
#: may be resumed or swept with any worker count.
EXECUTION_ONLY_FIELDS: frozenset[str] = frozenset(
    {
        "num_workers",
        "task_timeout_seconds",
        "task_retries",
        "retry_backoff_seconds",
        "verify_mode",
    }
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Every knob of the evaluation, with scaled-down defaults.

    ``PAPER_SCALE_CONFIG`` records the values the paper used on its
    Tesla P100; the defaults here run the full pipeline in a couple of
    minutes on CPU while keeping every architectural ratio.
    """

    # dataset
    samples_per_family: int = 20
    corpus_seed: int = 0
    size_multiplier: int = 3
    test_fraction: float = 0.25

    # GNN classifier Φ
    gnn_hidden: tuple[int, ...] = (64, 48, 32)
    gnn_epochs: int = 150
    gnn_batch_size: int = 16
    gnn_lr: float = 0.005

    #: Execution engine: "batched" packs each mini-batch into one
    #: block-diagonal sparse pass (fast path), "per_graph" runs the
    #: reference one-graph-at-a-time loop.  Both compute the same loss.
    batch_mode: str = "batched"
    #: Graphs per batched inference pass (evaluation, embedding cache).
    eval_batch_size: int = 64

    # CFGExplainer Θ
    explainer_epochs: int = 600
    explainer_minibatch: int = 16
    explainer_lr: float = 0.003

    # baselines
    gnnexplainer_epochs: int = 60
    pgexplainer_epochs: int = 12
    subgraphx_iterations: int = 25
    subgraphx_shapley_samples: int = 4

    # CFExplainer (counterfactual edge deletion; local, no offline stage)
    cfexplainer_iterations: int = 150
    cfexplainer_lr: float = 0.3
    cfexplainer_l1: float = 0.002

    # evaluation
    step_size: int = 10
    seed: int = 0

    #: Corpus invariant gate (repro.staticcheck): "strict" fails the run
    #: on any CFG/ACFG invariant violation, "warn" downgrades to a
    #: warning, None skips verification.
    verify_mode: str | None = "strict"

    #: Hostile-input ingestion policy (repro.harden): "quarantine" drops
    #: samples with fatal sanitizer findings and reports them on the
    #: artifacts, "raise" aborts on the first one, None (default) trusts
    #: the corpus.  Quarantine runs before the verify gate so hostile
    #: samples cannot crash the verifier.
    on_bad_input: str | None = None

    #: Static-analysis graph reduction (repro.reduce): a ReduceConfig
    #: shrinks every graph after quarantine + verification and before
    #: padding, recording per-graph lift maps on the artifacts; None
    #: (default) trains on the full graphs.  This is an identity-
    #: affecting field — checkpoints pin it.
    reduce: ReduceConfig | None = None

    # execution (repro.exec scheduler)
    #: Worker processes for the per-family sweeps and timing loops.
    #: 1 keeps the exact serial reference path (no subprocesses).
    num_workers: int = 1
    #: Per-task wall-clock timeout; a task over budget has its worker
    #: terminated and is retried/failed.  Enforced only with worker
    #: processes (``num_workers > 1``).  None disables the timeout.
    task_timeout_seconds: float | None = None
    #: Attempts beyond the first before a task becomes a TaskFailure.
    task_retries: int = 1
    #: Base delay before a retry (doubled per further attempt).
    retry_backoff_seconds: float = 0.5

    def __post_init__(self):
        # JSON/checkpoint round-trips turn tuples into lists; coerce
        # sequence fields so equality and hashing behave.
        object.__setattr__(
            self, "gnn_hidden", tuple(int(width) for width in self.gnn_hidden)
        )
        # JSON round-trips also flatten the nested ReduceConfig to a
        # plain dict; coerce it back so equality and validation hold.
        if isinstance(self.reduce, dict):
            object.__setattr__(self, "reduce", ReduceConfig(**self.reduce))
        if self.reduce is not None and not isinstance(self.reduce, ReduceConfig):
            raise ValueError(
                f"reduce must be a ReduceConfig or None, got {self.reduce!r}"
            )
        if self.samples_per_family <= 1:
            raise ValueError("need at least 2 samples per family to split")
        if self.batch_mode not in TRAINING_MODES:
            raise ValueError(
                f"batch_mode must be one of {TRAINING_MODES}, got "
                f"{self.batch_mode!r}"
            )
        if self.eval_batch_size <= 0:
            raise ValueError("eval_batch_size must be positive")
        if self.verify_mode not in (None, "strict", "warn"):
            raise ValueError(
                f"verify_mode must be None, 'strict' or 'warn', got "
                f"{self.verify_mode!r}"
            )
        if self.on_bad_input not in (None, "quarantine", "raise"):
            raise ValueError(
                f"on_bad_input must be None, 'quarantine' or 'raise', got "
                f"{self.on_bad_input!r}"
            )
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.task_timeout_seconds is not None and self.task_timeout_seconds <= 0:
            raise ValueError("task_timeout_seconds must be positive or None")
        if self.task_retries < 0:
            raise ValueError("task_retries cannot be negative")
        if self.retry_backoff_seconds < 0:
            raise ValueError("retry_backoff_seconds cannot be negative")

    def ingest_policy(self, verify: str | None = "config") -> "IngestPolicy":
        """The :class:`repro.acfg.IngestPolicy` this config implies.

        ``verify="config"`` (default) uses :attr:`verify_mode`; pass an
        explicit value (e.g. ``None`` for a corpus restored from a
        checkpoint that already passed the gate) to override it.
        """
        from repro.acfg import IngestPolicy

        return IngestPolicy(
            on_bad_input=self.on_bad_input,
            verify=self.verify_mode if verify == "config" else verify,
            reduce=self.reduce,
        )


#: The configuration reported in the paper (Section V-A), for reference
#: and for anyone with the hardware to run at full scale.
PAPER_SCALE_CONFIG = ExperimentConfig(
    samples_per_family=88,  # 1056 graphs / 12 families
    size_multiplier=20,  # graphs up to ~7000 blocks, like YANCFG
    gnn_hidden=(1024, 512, 128),
    gnn_epochs=500,
    explainer_epochs=2000,
)


@dataclass
class PipelineArtifacts:
    """Everything the experiments need, produced once by ``run_pipeline``."""

    config: ExperimentConfig
    corpus: list[LabeledSample]
    train_set: ACFGDataset
    test_set: ACFGDataset
    scaler: FeatureScaler
    gnn: GCNClassifier
    gnn_test_accuracy: float
    explainers: dict[str, Explainer]
    offline_training_seconds: dict[str, float] = field(default_factory=dict)
    samples_by_name: dict[str, LabeledSample] = field(default_factory=dict)
    #: Shared frozen-GNN forward cache over the train and test splits;
    #: explainer training and the experiments read Z / predictions from
    #: it instead of re-running Φ.
    embedding_cache: EmbeddingCache | None = None
    #: Ingestion quarantine report (repro.harden), present when the
    #: config's ``on_bad_input`` policy was active.
    quarantine: "QuarantineReport | None" = None
    #: ``graph name -> LiftMap`` when the config enabled reduction
    #: (repro.reduce); experiments use it to lift reduced explanations
    #: back onto original blocks.  None for unreduced runs.
    lift_maps: dict[str, LiftMap] | None = None

    def sample_for(self, graph_name: str) -> LabeledSample:
        return self.samples_by_name[graph_name]

    def lift_map_for(self, graph_name: str) -> LiftMap | None:
        """The lift map of one graph, or None for unreduced runs."""
        if self.lift_maps is None:
            return None
        return self.lift_maps.get(graph_name)

    def engine(self, explainer: str = "CFGExplainer") -> "InferenceEngine":
        """A serving :class:`repro.serve.InferenceEngine` over these
        frozen artifacts (lazy import: repro.serve depends on this
        module's consumers, not the other way around)."""
        from repro.serve.engine import InferenceEngine

        return InferenceEngine.from_artifacts(self, explainer=explainer)


#: Stage names persisted by a checkpointed :func:`run_pipeline`, in
#: execution order.  Sweep shards are persisted separately by
#: :func:`repro.exec.sweeps.run_sweeps`.
PIPELINE_STAGES: tuple[str, ...] = (
    "corpus",
    "dataset",
    "gnn",
    "theta",
    "pgexplainer",
)


class PipelineInterrupted(RuntimeError):
    """Raised by ``run_pipeline(..., stop_after=...)`` once the named
    stage has been computed and persisted — a controlled stand-in for a
    crash, used by the resume tests and the ``repro-check --resume``
    smoke gate."""

    def __init__(self, stage: str):
        super().__init__(f"pipeline interrupted after stage {stage!r}")
        self.stage = stage


def _build_classifier(config: ExperimentConfig, train_set, num_classes: int):
    return GCNClassifier(
        in_features=train_set[0].num_features,
        hidden=config.gnn_hidden,
        num_classes=num_classes,
        rng=np.random.default_rng(config.seed),
    )


def build_untrained_artifacts(config: ExperimentConfig) -> PipelineArtifacts:
    """Build the full pipeline skeleton without training anything.

    Corpus, dataset, split and scaler are rebuilt deterministically from
    the config (the corpus is *not* re-verified: it passed the gate on
    the original run).  The GNN, CFGExplainer's Θ and PGExplainer's
    predictor come out freshly initialized and are expected to be
    overwritten by :func:`repro.eval.persistence.load_models_into` —
    this is how :mod:`repro.exec` worker processes rebuild the frozen
    models from a serialized spec.
    """
    corpus = generate_corpus(
        config.samples_per_family,
        seed=config.corpus_seed,
        size_multiplier=config.size_multiplier,
    )
    dataset = ACFGDataset.from_corpus(corpus, policy=config.ingest_policy(verify=None))
    train_raw, test_raw = train_test_split(
        dataset, config.test_fraction, seed=config.seed
    )
    scaler = FeatureScaler().fit(list(train_raw))
    train_set, test_set = train_raw.scaled(scaler), test_raw.scaled(scaler)

    gnn = _build_classifier(config, train_set, dataset.num_classes)
    embedding_cache = EmbeddingCache(gnn)
    theta = CFGExplainerModel(
        gnn.embedding_size,
        dataset.num_classes,
        rng=np.random.default_rng(config.seed + 1),
    )
    pg = PGExplainerBaseline(
        gnn,
        epochs=config.pgexplainer_epochs,
        seed=config.seed,
        embedding_cache=embedding_cache,
    )
    explainers: dict[str, Explainer] = {
        "CFGExplainer": CFGExplainer(gnn, theta, embedding_cache=embedding_cache),
        "GNNExplainer": GNNExplainerBaseline(
            gnn, epochs=config.gnnexplainer_epochs, seed=config.seed
        ),
        "SubgraphX": SubgraphXBaseline(
            gnn,
            mcts_iterations=config.subgraphx_iterations,
            shapley_samples=config.subgraphx_shapley_samples,
            seed=config.seed,
        ),
        "PGExplainer": pg,
        "CFExplainer": CFExplainer(
            gnn,
            iterations=config.cfexplainer_iterations,
            lr=config.cfexplainer_lr,
            l1_weight=config.cfexplainer_l1,
            seed=config.seed,
        ),
    }
    return PipelineArtifacts(
        config=config,
        corpus=corpus,
        train_set=train_set,
        test_set=test_set,
        scaler=scaler,
        gnn=gnn,
        gnn_test_accuracy=float("nan"),
        explainers=explainers,
        samples_by_name={s.program.name: s for s in corpus},
        embedding_cache=embedding_cache,
        quarantine=dataset.quarantine,
        lift_maps=dataset.lift_maps,
    )


def run_pipeline(
    config: ExperimentConfig | None = None,
    verbose: bool = False,
    resume_from: str | Path | None = None,
    stop_after: str | None = None,
    corpus_transform=None,
) -> PipelineArtifacts:
    """Run the whole setup stage and return the experiment artifacts.

    Stage boundaries are traced (``pipeline.corpus`` → ``.dataset`` →
    ``.train`` → ``.eval`` → ``.explain``) when a
    :func:`repro.obs.tracing` context is active; untraced runs pay
    nothing.  ``python -m repro.eval profile`` renders the resulting
    span tree and writes the :class:`~repro.obs.RunManifest`.

    ``resume_from`` names a run directory: every completed stage
    (:data:`PIPELINE_STAGES`) is persisted there atomically, and a rerun
    pointing at the same directory restores completed stages instead of
    recomputing them — a run killed after GNN training resumes without
    retraining.  The directory pins the experiment config; resuming with
    an incompatible config raises (execution-only knobs such as
    ``num_workers`` may differ).  ``stop_after`` (requires
    ``resume_from``) raises :class:`PipelineInterrupted` right after the
    named stage persists, simulating a mid-run crash.

    ``corpus_transform`` is an optional hook applied to the freshly
    generated corpus before dataset construction — the robustness drill
    uses it to splice in hostile samples
    (:func:`repro.harden.inject_hostile`) that the config's
    ``on_bad_input`` policy must then quarantine.  It runs only on
    generation, never on a corpus restored from a checkpoint.
    """
    config = config or ExperimentConfig()
    rng_seed = config.seed

    store = None
    if resume_from is not None:
        from repro.eval.persistence import StageStore

        store = StageStore(resume_from)
        store.bind_config(config)
    if stop_after is not None:
        if store is None:
            raise ValueError("stop_after requires resume_from")
        if stop_after not in PIPELINE_STAGES:
            raise ValueError(
                f"stop_after must be one of {PIPELINE_STAGES}, got {stop_after!r}"
            )

    def restored(stage: str) -> bool:
        return store is not None and store.complete(stage)

    def note_restored(stage: str) -> None:
        add_counter("pipeline.stage.restored")
        print(f"[resume] stage {stage}: restored from {store.path(stage)}")

    def note_persisted(stage: str) -> None:
        add_counter("pipeline.stage.persisted")
        if verbose:
            print(f"[resume] stage {stage}: persisted to {store.path(stage)}")

    def maybe_stop(stage: str) -> None:
        if stop_after == stage:
            raise PipelineInterrupted(stage)

    with obs_span("pipeline.corpus"):
        if restored("corpus"):
            corpus = pickle.loads((store.path("corpus") / "corpus.pkl").read_bytes())
            note_restored("corpus")
        else:
            corpus = generate_corpus(
                config.samples_per_family,
                seed=config.corpus_seed,
                size_multiplier=config.size_multiplier,
            )
            if corpus_transform is not None:
                corpus = corpus_transform(corpus)
            if store is not None:
                with store.writing("corpus") as tmp:
                    (tmp / "corpus.pkl").write_bytes(pickle.dumps(corpus))
                note_persisted("corpus")
    maybe_stop("corpus")

    with obs_span("pipeline.dataset"):
        dataset_restored = restored("dataset")
        # A restored corpus already passed the invariant gate on the
        # original run; don't pay for re-verification.
        dataset = ACFGDataset.from_corpus(
            corpus,
            policy=config.ingest_policy(
                verify=None if dataset_restored else "config"
            ),
        )
        train_raw, test_raw = train_test_split(
            dataset, config.test_fraction, seed=rng_seed
        )
        scaler = FeatureScaler()
        if dataset_restored:
            from repro.eval.persistence import CheckpointError, validate_scale_vector

            stage_dir = store.path("dataset")
            split = json.loads((stage_dir / "split.json").read_text())
            if (
                [g.name for g in train_raw] != split["train"]
                or [g.name for g in test_raw] != split["test"]
            ):
                raise CheckpointError(
                    "stored train/test split does not match the regenerated corpus"
                )
            scale = np.load(stage_dir / "scaler.npy")
            validate_scale_vector(scale, (train_raw[0].num_features,))
            scaler.scale = scale
            note_restored("dataset")
        else:
            scaler.fit(list(train_raw))
            if store is not None:
                with store.writing("dataset") as tmp:
                    (tmp / "split.json").write_text(
                        json.dumps(
                            {
                                "train": [g.name for g in train_raw],
                                "test": [g.name for g in test_raw],
                            }
                        )
                    )
                    np.save(tmp / "scaler.npy", scaler.scale)
                note_persisted("dataset")
        train_set, test_set = train_raw.scaled(scaler), test_raw.scaled(scaler)
    maybe_stop("dataset")

    if verbose:
        print(
            f"corpus: {len(corpus)} graphs, padded to N={dataset.n}; "
            f"train={len(train_set)} test={len(test_set)}"
        )

    gnn = _build_classifier(config, train_set, dataset.num_classes)
    with obs_span("pipeline.train"):
        if restored("gnn"):
            load_module_into(gnn, store.path("gnn") / "gnn.npz")
            note_restored("gnn")
        else:
            train_gnn(
                gnn,
                train_set,
                epochs=config.gnn_epochs,
                batch_size=config.gnn_batch_size,
                lr=config.gnn_lr,
                seed=rng_seed,
                mode=config.batch_mode,
                verbose=verbose,
            )
            if store is not None:
                with store.writing("gnn") as tmp:
                    save_module(gnn, tmp / "gnn.npz")
                note_persisted("gnn")
    maybe_stop("gnn")

    with obs_span("pipeline.eval"):
        gnn_accuracy = evaluate_accuracy(
            gnn, test_set, batch_size=config.eval_batch_size
        )
        if verbose:
            print(f"GNN test accuracy: {gnn_accuracy:.3f}")

        # One shared cache of frozen-GNN forwards over both splits: Z and
        # predictions computed here feed CFGExplainer training,
        # PGExplainer's offline stage and the Figure 2 / Tables III-IV
        # experiments.
        embedding_cache = EmbeddingCache(gnn)
        embedding_cache.populate(train_set, batch_size=config.eval_batch_size)
        embedding_cache.populate(test_set, batch_size=config.eval_batch_size)

    offline: dict[str, float] = {}

    with obs_span("pipeline.explain"):
        with obs_span("pipeline.explain.CFGExplainer"):
            theta = CFGExplainerModel(
                gnn.embedding_size,
                dataset.num_classes,
                rng=np.random.default_rng(rng_seed + 1),
            )
            if restored("theta"):
                load_module_into(theta, store.path("theta") / "theta.npz")
                stored_offline = json.loads(
                    (store.path("theta") / "offline.json").read_text()
                )
                offline["CFGExplainer"] = stored_offline["seconds"]
                note_restored("theta")
            else:
                start = time.perf_counter()
                train_cfgexplainer(
                    theta,
                    gnn,
                    train_set,
                    num_epochs=config.explainer_epochs,
                    minibatch_size=config.explainer_minibatch,
                    lr=config.explainer_lr,
                    seed=rng_seed,
                    embedding_cache=embedding_cache,
                )
                offline["CFGExplainer"] = time.perf_counter() - start
                if store is not None:
                    with store.writing("theta") as tmp:
                        save_module(theta, tmp / "theta.npz")
                        (tmp / "offline.json").write_text(
                            json.dumps({"seconds": offline["CFGExplainer"]})
                        )
                    note_persisted("theta")
        maybe_stop("theta")

        with obs_span("pipeline.explain.PGExplainer"):
            pg = PGExplainerBaseline(
                gnn,
                epochs=config.pgexplainer_epochs,
                seed=rng_seed,
                embedding_cache=embedding_cache,
            )
            if restored("pgexplainer"):
                load_module_into(
                    pg.predictor, store.path("pgexplainer") / "pg_predictor.npz"
                )
                pg._trained = True
                stored_offline = json.loads(
                    (store.path("pgexplainer") / "offline.json").read_text()
                )
                offline["PGExplainer"] = stored_offline["seconds"]
                note_restored("pgexplainer")
            else:
                start = time.perf_counter()
                pg.fit(train_set)
                offline["PGExplainer"] = time.perf_counter() - start
                if store is not None:
                    with store.writing("pgexplainer") as tmp:
                        save_module(pg.predictor, tmp / "pg_predictor.npz")
                        (tmp / "offline.json").write_text(
                            json.dumps({"seconds": offline["PGExplainer"]})
                        )
                    note_persisted("pgexplainer")
        maybe_stop("pgexplainer")
        offline["GNNExplainer"] = 0.0  # local method: no offline stage
        offline["SubgraphX"] = 0.0
        offline["CFExplainer"] = 0.0

    explainers: dict[str, Explainer] = {
        "CFGExplainer": CFGExplainer(gnn, theta, embedding_cache=embedding_cache),
        "GNNExplainer": GNNExplainerBaseline(
            gnn, epochs=config.gnnexplainer_epochs, seed=rng_seed
        ),
        "SubgraphX": SubgraphXBaseline(
            gnn,
            mcts_iterations=config.subgraphx_iterations,
            shapley_samples=config.subgraphx_shapley_samples,
            seed=rng_seed,
        ),
        "PGExplainer": pg,
        "CFExplainer": CFExplainer(
            gnn,
            iterations=config.cfexplainer_iterations,
            lr=config.cfexplainer_lr,
            l1_weight=config.cfexplainer_l1,
            seed=rng_seed,
        ),
    }

    return PipelineArtifacts(
        config=config,
        corpus=corpus,
        train_set=train_set,
        test_set=test_set,
        scaler=scaler,
        gnn=gnn,
        gnn_test_accuracy=gnn_accuracy,
        explainers=explainers,
        offline_training_seconds=offline,
        samples_by_name={s.program.name: s for s in corpus},
        embedding_cache=embedding_cache,
        quarantine=dataset.quarantine,
        lift_maps=dataset.lift_maps,
    )
