"""End-to-end profiled runs: trace the pipeline, write a RunManifest.

:func:`profile_pipeline` is the machinery behind
``python -m repro.eval profile`` and the ``--profile`` smoke gate of
``repro-check``.  It captures a :class:`~repro.obs.RunManifest`,
installs a tracer, runs the full setup pipeline (instrumented stage by
stage), exercises every explainer on a few held-out graphs, re-scores
test accuracy, and finalizes the manifest with aggregated span
statistics and counter deltas.  With an output directory it also
mirrors span events to ``trace.jsonl`` and writes
``RUN_MANIFEST.json`` next to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.eval.pipeline import ExperimentConfig, PipelineArtifacts, run_pipeline
from repro.gnn import evaluate_accuracy
from repro.obs import RunManifest, Tracer, span, tracing

__all__ = ["PROFILE_CONFIG", "ProfileResult", "profile_pipeline"]

#: Small-but-complete defaults: every pipeline stage runs, in seconds.
PROFILE_CONFIG = ExperimentConfig(
    samples_per_family=4,
    size_multiplier=1,
    gnn_epochs=30,
    explainer_epochs=60,
    gnnexplainer_epochs=10,
    pgexplainer_epochs=4,
    subgraphx_iterations=8,
    subgraphx_shapley_samples=2,
    step_size=20,
)

#: Name of the root span wrapping the whole profiled run.
ROOT_SPAN = "run"


@dataclass
class ProfileResult:
    """Everything a profiled run produced."""

    manifest: RunManifest
    tracer: Tracer
    artifacts: PipelineArtifacts
    gnn_test_accuracy: float
    manifest_path: Path | None = None
    trace_path: Path | None = None


def profile_pipeline(
    config: ExperimentConfig | None = None,
    out_dir: str | Path | None = None,
    graphs_per_explainer: int = 2,
    verbose: bool = False,
) -> ProfileResult:
    """Run the pipeline under tracing and return the manifest + tracer.

    The recorded tree covers every stage —
    ``pipeline.corpus`` → ``.dataset`` → ``.train`` → ``.eval`` →
    ``.explain`` (offline explainer training), then per-explainer
    ``explain.<name>`` spans from real explanation calls — under one
    root span, so the manifest's aggregated timings sum consistently
    with the root.  When ``config.num_workers > 1`` a ``profile.sweep``
    span additionally runs the sharded Figure 2 grid through the
    :mod:`repro.exec` scheduler, so the trace shows the parallel
    fan-out (``exec.run_tasks`` with its dispatch/retry/worker
    counters).
    """
    config = config or PROFILE_CONFIG
    out_path = Path(out_dir) if out_dir is not None else None
    trace_path = out_path / "trace.jsonl" if out_path else None

    manifest = RunManifest.capture(config=config)
    with tracing(sink=trace_path) as tracer:
        with span(ROOT_SPAN):
            artifacts = run_pipeline(config, verbose=verbose)
            with span("profile.explain"):
                test_graphs = artifacts.test_set.graphs[:graphs_per_explainer]
                for name in sorted(artifacts.explainers):
                    for graph in test_graphs:
                        artifacts.explainers[name].explain(graph, config.step_size)
            if config.num_workers > 1:
                from repro.exec import run_sweeps

                with span("profile.sweep"):
                    run_sweeps(artifacts)
            with span("profile.eval"):
                accuracy = evaluate_accuracy(
                    artifacts.gnn,
                    artifacts.test_set,
                    batch_size=config.eval_batch_size,
                )
    manifest.finalize(tracer)

    manifest_path = None
    if out_path is not None:
        manifest_path = manifest.write(out_path / "RUN_MANIFEST.json")
    return ProfileResult(
        manifest=manifest,
        tracer=tracer,
        artifacts=artifacts,
        gnn_test_accuracy=accuracy,
        manifest_path=manifest_path,
        trace_path=trace_path,
    )
