"""Static-agreement metric: explainer top-k blocks vs static analysis.

Related work argues GNN explanations for malware need an *independent*
static signal to be validated against (Shokouhinejad et al., "On the
Consistency of GNN Explanations for Malware Detection").  This module
provides that signal for the evaluation: for every test graph it takes
the blocks the liveness-aware Table V detectors flag as suspicious and
measures how much of that set each explainer's top-``fraction`` blocks
recover.  Reported alongside the paper's tables without changing any
of their schemas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.micro import micro_analysis
from repro.eval.sweep import FamilySweep
from repro.explain.explanation import Explanation
from repro.malgen.corpus import LabeledSample

__all__ = [
    "AgreementRow",
    "agreement_rows",
    "format_agreement",
    "static_agreement",
    "suspicious_blocks",
]


def suspicious_blocks(sample: LabeledSample) -> frozenset[int]:
    """Blocks the liveness-aware micro detectors flag in the full CFG."""
    return frozenset(f.block_index for f in micro_analysis(sample.cfg))


@dataclass(frozen=True)
class AgreementRow:
    """Static agreement of one explainer, averaged over test graphs.

    ``coverage`` is the mean fraction of statically suspicious blocks
    that appear in the explainer's top-``fraction`` selection;
    ``random_baseline`` is the expected coverage of a uniformly random
    ranking of the same size (≈ the kept fraction), for calibration.
    """

    explainer_name: str
    fraction: float
    graphs_scored: int
    coverage: float
    random_baseline: float


def static_agreement(
    pairs: list[tuple[LabeledSample, Explanation]],
    fraction: float = 0.2,
    lift_maps: dict | None = None,
) -> tuple[int, float, float]:
    """Mean coverage over (sample, explanation) pairs with a static signal.

    Returns ``(graphs_scored, coverage, random_baseline)``; graphs whose
    CFG triggers no detector are skipped (no signal to agree with).

    The static signal indexes *original* blocks, so when the dataset
    was reduced (``lift_maps`` holds a :class:`repro.reduce.LiftMap`
    per graph name) the explainer's top supernodes are lifted back to
    original block indices before intersecting.
    """
    scored = 0
    coverage_sum = 0.0
    baseline_sum = 0.0
    for sample, explanation in pairs:
        flagged = suspicious_blocks(sample)
        if not flagged:
            continue
        lift = (lift_maps or {}).get(explanation.graph.name)
        if lift is not None:
            top = set(lift.lift_top_nodes(explanation, fraction).tolist())
            total = lift.original_n
        else:
            top = set(explanation.top_nodes(fraction).tolist())
            total = explanation.graph.n_real
        scored += 1
        coverage_sum += len(flagged & top) / len(flagged)
        baseline_sum += len(top) / total
    if scored == 0:
        return 0, 0.0, 0.0
    return scored, coverage_sum / scored, baseline_sum / scored


def agreement_rows(
    sweeps: dict[str, dict[str, FamilySweep]],
    samples_by_name: dict[str, LabeledSample],
    fraction: float = 0.2,
    lift_maps: dict | None = None,
) -> list[AgreementRow]:
    """Aggregate Figure 2 sweeps into one agreement row per explainer.

    Reuses the explanations the sweeps already computed, so the metric
    adds no explainer work to the evaluation run.
    """
    pairs_by_explainer: dict[str, list[tuple[LabeledSample, Explanation]]] = {}
    for family in sorted(sweeps):
        by_explainer = sweeps[family]
        for name, sweep in by_explainer.items():
            pairs = pairs_by_explainer.setdefault(name, [])
            for explanation in sweep.explanations:
                pairs.append(
                    (samples_by_name[explanation.graph.name], explanation)
                )
    rows = []
    for name, pairs in pairs_by_explainer.items():
        scored, coverage, baseline = static_agreement(pairs, fraction, lift_maps)
        rows.append(
            AgreementRow(
                explainer_name=name,
                fraction=fraction,
                graphs_scored=scored,
                coverage=coverage,
                random_baseline=baseline,
            )
        )
    return rows


def format_agreement(rows: list[AgreementRow]) -> str:
    """Render the agreement rows as fixed-width text."""
    if not rows:
        return "(no graphs with a static signal)"
    percent = int(round(rows[0].fraction * 100))
    lines = [
        f"{'Explainer':14s} | {'Graphs':>6s} | "
        f"{f'Coverage@{percent}%':>14s} | {'Random':>8s}",
        "-" * 52,
    ]
    for row in rows:
        lines.append(
            f"{row.explainer_name:14s} | {row.graphs_scored:6d} | "
            f"{row.coverage:14.4f} | {row.random_baseline:8.4f}"
        )
    return "\n".join(lines)
