"""Table IV — explanation-time measurement.

Built on :mod:`repro.obs`: each per-explainer sweep runs inside a
``timing.<name>`` span, so a traced evaluation shows Table IV's cost
structure in the same tree as the rest of the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.base import Explainer
from repro.obs import span as obs_span

__all__ = ["ExplainerTiming", "measure_timings"]


@dataclass(frozen=True)
class ExplainerTiming:
    """Offline cost plus per-explanation wall-clock statistics."""

    explainer_name: str
    offline_seconds: float
    mean_seconds: float
    std_seconds: float
    samples: int


def measure_timings(
    explainers: dict[str, Explainer],
    graphs: list[ACFG],
    offline_seconds: dict[str, float] | None = None,
    step_size: int = 10,
) -> list[ExplainerTiming]:
    """Time a single explanation per graph for every explainer.

    Matches Table IV's protocol: the mean ± std of per-ACFG explanation
    time, with offline training time reported separately for the
    explainers that have one.
    """
    if not graphs:
        raise ValueError("need at least one graph to time")
    offline_seconds = offline_seconds or {}
    results = []
    for name, explainer in explainers.items():
        durations = []
        with obs_span(f"timing.{name}") as timing_span:
            for graph in graphs:
                start = time.perf_counter()
                explainer.explain(graph, step_size)
                durations.append(time.perf_counter() - start)
            timing_span.add("timing.graphs", len(graphs))
        durations = np.asarray(durations)
        results.append(
            ExplainerTiming(
                explainer_name=name,
                offline_seconds=offline_seconds.get(name, 0.0),
                mean_seconds=float(durations.mean()),
                std_seconds=float(durations.std()),
                samples=len(durations),
            )
        )
    return results
