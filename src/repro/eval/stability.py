"""Explanation-stability benchmark under input perturbation.

A useful explanation must be *stable*: small, semantics-preserving
changes to a binary (an extra semantic NOP, a dropped edge in CFG
recovery, feature noise from a different disassembler) should not
reshuffle which blocks an explainer calls important — otherwise an
analyst sees a different story every time the sample is repacked.

For each explainer × family × perturbation this module explains a base
graph and its perturbed variants, then reports

* **Jaccard@k** — overlap of the top-``k`` ranked blocks (``k`` =
  ``top_fraction`` of real nodes), the set an analyst actually reads;
* **Spearman** — rank correlation of the full node-score vectors.

Three perturbations, all seeded and deterministic:

* ``edge_dropout`` — each real edge removed independently;
* ``feature_noise`` — multiplicative Gaussian noise on real features;
* ``semantic_nop`` — semantic NOPs (``nop``, ``mov eax, eax``)
  inserted mid-block into the *assembly*, then re-parsed through the
  full CFG → features path (the adversary's cheapest evasion).  Blocks
  are never split, so node indices stay comparable; a trial that would
  change the block count is skipped and counted.

``write_stability_bench`` emits ``BENCH_stability.json`` gated by
:mod:`repro.tools.bench_compare` (absolute-drop policies).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, replace as dc_replace
from pathlib import Path

import numpy as np

from repro.acfg.graph import ACFG, from_sample
from repro.disasm.instruction import Instruction
from repro.disasm.program import Program
from repro.explain.explanation import kept_count
from repro.malgen.corpus import LabeledSample, block_motif_tags
from repro.obs import span as obs_span

__all__ = [
    "PERTURBATIONS",
    "StabilityConfig",
    "StabilityRow",
    "format_stability_table",
    "perturb_edge_dropout",
    "perturb_feature_noise",
    "perturb_semantic_nop",
    "run_stability",
    "stability_bench_payload",
    "write_stability_bench",
]

PERTURBATIONS = ("edge_dropout", "feature_noise", "semantic_nop")

#: Provably effect-free instructions the semantic-NOP perturbation inserts.
_SEMANTIC_NOPS = (
    Instruction("nop"),
    Instruction("mov", ("eax", "eax")),
    Instruction("mov", ("ebx", "ebx")),
    Instruction("xchg", ("ecx", "ecx")),
)


@dataclass(frozen=True)
class StabilityConfig:
    """Benchmark knobs; everything is driven by ``seed``."""

    perturbations: tuple[str, ...] = PERTURBATIONS
    trials: int = 2
    seed: int = 0
    graphs_per_family: int = 1
    edge_dropout_rate: float = 0.1
    feature_noise_scale: float = 0.05
    nop_insertions: int = 3
    #: Fraction of real nodes in the compared top-k set.
    top_fraction: float = 0.2
    step_size: int = 50

    def __post_init__(self):
        unknown = set(self.perturbations) - set(PERTURBATIONS)
        if unknown:
            raise ValueError(f"unknown perturbations {sorted(unknown)}")
        if self.trials <= 0 or self.graphs_per_family <= 0:
            raise ValueError("trials and graphs_per_family must be positive")
        if not 0.0 < self.top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")


@dataclass
class StabilityRow:
    """Aggregated stability of one explainer × family × perturbation."""

    explainer: str
    family: str
    perturbation: str
    jaccard: float
    spearman: float
    trials: int
    skipped: int = 0


# ----------------------------------------------------------------------
# perturbations
# ----------------------------------------------------------------------
def perturb_edge_dropout(
    graph: ACFG, rng: np.random.Generator, rate: float
) -> ACFG:
    """Drop each real edge independently with probability ``rate``.

    At least one edge always survives (a fully disconnected variant
    would measure the explainers' degenerate-input path, not
    stability).  Graphs without edges come back unchanged.
    """
    adjacency = graph.adjacency.copy()
    real = adjacency[: graph.n_real, : graph.n_real]
    sources, targets = np.nonzero(real)
    if sources.size == 0:
        return graph
    drop = rng.random(sources.size) < rate
    if drop.all():
        drop[int(rng.integers(0, drop.size))] = False
    real[sources[drop], targets[drop]] = 0.0
    adjacency[: graph.n_real, : graph.n_real] = real
    return dc_replace(graph, adjacency=adjacency, features=graph.features.copy())


def perturb_feature_noise(
    graph: ACFG, rng: np.random.Generator, scale: float
) -> ACFG:
    """Multiplicative Gaussian noise on real-node features.

    Features stay non-negative (they are scaled counts), so the
    perturbed graph still passes the ingestion sanitizer.
    """
    features = graph.features.copy()
    noise = 1.0 + scale * rng.standard_normal(features[: graph.n_real].shape)
    features[: graph.n_real] = np.clip(features[: graph.n_real] * noise, 0.0, None)
    return dc_replace(graph, adjacency=graph.adjacency.copy(), features=features)


def _insertion_points(sample: LabeledSample) -> list[int]:
    """Instruction indices where an inserted non-jump cannot split a block.

    Strictly-interior positions of multi-instruction blocks: no label
    points there (labels are always block starts) and the preceding
    instruction cannot be a block terminator.
    """
    points: list[int] = []
    for block in sample.cfg.blocks:
        points.extend(range(block.start + 1, block.start + len(block.instructions)))
    return points


def perturb_semantic_nop(
    sample: LabeledSample, rng: np.random.Generator, insertions: int
) -> LabeledSample | None:
    """Insert semantic NOPs mid-block and re-derive the CFG.

    Returns ``None`` when the program has no safe insertion point or
    the rebuilt CFG changed its block count (node rankings would not be
    comparable) — callers count that as a skipped trial.
    """
    from repro.disasm.cfg import build_cfg

    points = _insertion_points(sample)
    if not points:
        return None
    instructions = list(sample.program.instructions)
    labels = dict(sample.program.labels)
    for _ in range(insertions):
        position = points[int(rng.integers(0, len(points)))]
        nop = _SEMANTIC_NOPS[int(rng.integers(0, len(_SEMANTIC_NOPS)))]
        instructions.insert(position, nop)
        labels = {
            name: index + 1 if index >= position else index
            for name, index in labels.items()
        }
        points = [p + 1 if p >= position else p for p in points]
    program = Program(instructions, labels, sample.program.name + "+nops")
    cfg = build_cfg(program)
    if cfg.node_count != sample.cfg.node_count:
        return None
    return LabeledSample(
        program=program,
        cfg=cfg,
        family=sample.family,
        label=sample.label,
        motif_spans=list(sample.motif_spans),
        block_tags=block_motif_tags(cfg, list(sample.motif_spans)),
    )


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def _average_ranks(values: np.ndarray) -> np.ndarray:
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(values.size, dtype=float)
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation with tie-averaged ranks.

    Degenerate (constant) score vectors correlate 1.0 with each other
    and 0.0 with anything informative.
    """
    if a.size != b.size or a.size == 0:
        raise ValueError("score vectors must be equal-length and non-empty")
    ra, rb = _average_ranks(a), _average_ranks(b)
    sa, sb = ra.std(), rb.std()
    if sa == 0.0 or sb == 0.0:
        return 1.0 if sa == sb == 0.0 else 0.0
    return float(((ra - ra.mean()) * (rb - rb.mean())).mean() / (sa * sb))


def _stable(text: str) -> int:
    """Deterministic 32-bit hash of a string (independent of hash seed)."""
    return zlib.crc32(text.encode())


def _jaccard_top_k(
    order_a: np.ndarray, order_b: np.ndarray, k: int
) -> float:
    top_a, top_b = set(order_a[:k].tolist()), set(order_b[:k].tolist())
    union = top_a | top_b
    return len(top_a & top_b) / len(union) if union else 1.0


# ----------------------------------------------------------------------
# the benchmark
# ----------------------------------------------------------------------
def run_stability(artifacts, config: StabilityConfig | None = None) -> list[StabilityRow]:
    """Measure explanation stability on the test split.

    ``artifacts`` is a :class:`~repro.eval.pipeline.PipelineArtifacts`
    (trained models, scaler, original samples); returns one row per
    explainer × family × perturbation, aggregated over
    ``graphs_per_family`` graphs × ``trials`` seeded trials.
    """
    config = config or StabilityConfig()
    rows: list[StabilityRow] = []
    with obs_span("eval.stability"):
        for family in artifacts.test_set.families:
            members = sorted(
                artifacts.test_set.of_family(family), key=lambda g: g.name
            )[: config.graphs_per_family]
            if not members:
                continue
            for name, explainer in artifacts.explainers.items():
                base = {
                    g.name: explainer.explain(g, step_size=config.step_size)
                    for g in members
                }
                for perturbation in config.perturbations:
                    rows.append(
                        _stability_row(
                            artifacts, config, family, name, explainer,
                            members, base, perturbation,
                        )
                    )
    return rows


def _perturbed_variant(
    artifacts, config: StabilityConfig, graph: ACFG, perturbation: str,
    rng: np.random.Generator,
) -> ACFG | None:
    if perturbation == "edge_dropout":
        return perturb_edge_dropout(graph, rng, config.edge_dropout_rate)
    if perturbation == "feature_noise":
        return perturb_feature_noise(graph, rng, config.feature_noise_scale)
    sample = artifacts.sample_for(graph.name)
    perturbed = perturb_semantic_nop(sample, rng, config.nop_insertions)
    if perturbed is None:
        return None
    rebuilt = from_sample(perturbed, pad_to=graph.n)
    return artifacts.scaler.transform(rebuilt)


def _stability_row(
    artifacts, config: StabilityConfig, family: str, name: str, explainer,
    members: list[ACFG], base: dict, perturbation: str,
) -> StabilityRow:
    jaccards: list[float] = []
    spearmans: list[float] = []
    skipped = 0
    for graph in members:
        reference = base[graph.name]
        k = kept_count(config.top_fraction, graph.n_real)
        for trial in range(config.trials):
            # One private, reproducible stream per measurement cell
            # (crc32, not hash(): PYTHONHASHSEED must not leak in).
            rng = np.random.default_rng(
                (config.seed, _stable(family), _stable(name),
                 _stable(perturbation), _stable(graph.name), trial)
            )
            variant = _perturbed_variant(
                artifacts, config, graph, perturbation, rng
            )
            if variant is None:
                skipped += 1
                continue
            explanation = explainer.explain(variant, step_size=config.step_size)
            jaccards.append(
                _jaccard_top_k(reference.node_order, explanation.node_order, k)
            )
            spearmans.append(
                _spearman(
                    np.asarray(reference.node_scores, dtype=float),
                    np.asarray(explanation.node_scores, dtype=float),
                )
            )
    return StabilityRow(
        explainer=name,
        family=family,
        perturbation=perturbation,
        jaccard=float(np.mean(jaccards)) if jaccards else float("nan"),
        spearman=float(np.mean(spearmans)) if spearmans else float("nan"),
        trials=len(jaccards),
        skipped=skipped,
    )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def format_stability_table(rows: list[StabilityRow]) -> str:
    """Per-explainer × perturbation table, families aggregated."""
    header = (
        f"{'explainer':<14} {'perturbation':<14} {'Jaccard@k':>10} "
        f"{'Spearman':>10} {'trials':>7} {'skipped':>8}"
    )
    lines = [header, "-" * len(header)]
    for (explainer, perturbation), group in _grouped(rows).items():
        jaccard = _nanmean([r.jaccard for r in group])
        spearman = _nanmean([r.spearman for r in group])
        trials = sum(r.trials for r in group)
        skipped = sum(r.skipped for r in group)
        lines.append(
            f"{explainer:<14} {perturbation:<14} {jaccard:>10.3f} "
            f"{spearman:>10.3f} {trials:>7d} {skipped:>8d}"
        )
    return "\n".join(lines)


def _grouped(rows: list[StabilityRow]) -> dict:
    grouped: dict[tuple[str, str], list[StabilityRow]] = {}
    for row in rows:
        grouped.setdefault((row.explainer, row.perturbation), []).append(row)
    return grouped


def _nanmean(values: list[float]) -> float:
    finite = [v for v in values if np.isfinite(v)]
    return float(np.mean(finite)) if finite else float("nan")


def stability_bench_payload(rows: list[StabilityRow]) -> dict:
    """The ``BENCH_stability.json`` payload (families aggregated).

    Leaves named ``jaccard`` / ``spearman`` are gated by
    :mod:`repro.tools.bench_compare`'s absolute-drop policies; trial
    counts ride along informationally.
    """
    payload: dict = {}
    for (explainer, perturbation), group in _grouped(rows).items():
        cell = payload.setdefault(explainer, {}).setdefault(perturbation, {})
        cell["jaccard"] = round(_nanmean([r.jaccard for r in group]), 4)
        cell["spearman"] = round(_nanmean([r.spearman for r in group]), 4)
        cell["trials"] = sum(r.trials for r in group)
    return payload


def write_stability_bench(rows: list[StabilityRow], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(stability_bench_payload(rows), indent=2) + "\n")
    return path
