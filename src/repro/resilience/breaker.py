"""Per-stage circuit breakers for the serving path.

A poisoned stage (kernel regression, corrupted model file, dependency
outage) makes *every* request fail; bounded retries then multiply the
damage — each doomed request burns ``1 + max_retries`` attempts before
degrading.  A :class:`CircuitBreaker` watches consecutive failures per
stage and, once ``failure_threshold`` is reached, **opens**: requests
short-circuit straight to the next degradation rung without touching
the stage.  After ``cooldown_ms`` the breaker goes **half-open** and
admits exactly one probe; a successful probe closes the breaker, a
failed one re-opens it for another cooldown.

State transitions emit ``resilience.breaker.<stage>.*`` counters so a
chaos run can assert breakers actually tripped and recovered.
"""

from __future__ import annotations

import threading
import time

from repro.obs import add_counter

__all__ = ["BREAKER_STATES", "CircuitBreaker"]

BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe. Thread-safe."""

    def __init__(
        self,
        stage: str,
        failure_threshold: int = 5,
        cooldown_ms: float = 250.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be positive")
        self.stage = stage
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a request enter the stage right now?

        In ``half_open`` exactly one caller gets ``True`` (the probe);
        everyone else keeps short-circuiting until the probe resolves.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                elapsed_ms = (self._clock() - self._opened_at) * 1000.0
                if elapsed_ms < self.cooldown_ms:
                    add_counter(f"resilience.breaker.{self.stage}.short_circuit")
                    return False
                self._state = "half_open"
                self._probe_in_flight = False
                add_counter(f"resilience.breaker.{self.stage}.half_open")
            # half_open: admit one probe
            if self._probe_in_flight:
                add_counter(f"resilience.breaker.{self.stage}.short_circuit")
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != "closed":
                self._state = "closed"
                add_counter(f"resilience.breaker.{self.stage}.recover")

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == "half_open":
                # Failed probe: back to a full cooldown.
                self._state = "open"
                self._opened_at = self._clock()
                add_counter(f"resilience.breaker.{self.stage}.reopen")
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                add_counter(f"resilience.breaker.{self.stage}.trip")
