"""Serving resilience: deadlines, fault injection, breakers, degradation.

The package is deliberately engine-agnostic — nothing here imports
:mod:`repro.serve`.  The serve layer consumes these primitives; chaos
benchmarks and `repro-check --chaos` drive them through a committed
:class:`FaultPlan` so "the daemon survives faults" is a regression-gated
metric rather than an assumption.
"""

from repro.resilience.breaker import BREAKER_STATES, CircuitBreaker
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.faults import (
    FAULT_KINDS,
    SERVING_STAGES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_array,
)
from repro.resilience.runner import (
    DEGRADATION_REASONS,
    ResilienceConfig,
    failure_kind,
)

__all__ = [
    "BREAKER_STATES",
    "DEGRADATION_REASONS",
    "FAULT_KINDS",
    "SERVING_STAGES",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceConfig",
    "corrupt_array",
    "failure_kind",
]
