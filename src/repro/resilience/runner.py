"""Shared resilience configuration and failure typing for serving.

:class:`ResilienceConfig` bundles the knobs the daemon threads through
the request path: the per-request deadline budget, the bounded retry
policy for transient stage faults (reusing :class:`repro.exec.tasks
.RetryPolicy`, now with deterministic jitter), circuit-breaker
parameters, and the explainer degradation ladder.

:func:`failure_kind` maps an exception onto the typed-degradation
vocabulary :data:`repro.exec.tasks.FAILURE_KINDS` already established
for the batch scheduler, so a `DegradedResponse` from serving and a
`TaskFailure` from sweeps speak the same language.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec.tasks import FAILURE_KINDS, RetryPolicy
from repro.resilience.deadline import DeadlineExceeded

__all__ = ["DEGRADATION_REASONS", "ResilienceConfig", "failure_kind"]

#: The typed reasons a :class:`~repro.serve.engine.DegradedResponse`
#: can carry.  ``explainer_fallback`` — the requested explainer failed
#: but a ladder rung below it succeeded (response still has an
#: explanation); ``classification_only`` — every rung failed, only the
#: class probabilities are real; ``deadline`` — the request budget
#: expired before completion; ``breaker_open`` — a tripped circuit
#: breaker shed the request without running the stage; ``unavailable``
#: — an admission or classify stage failed persistently, nothing in
#: the response beyond the typed error is meaningful.
DEGRADATION_REASONS = (
    "explainer_fallback",
    "classification_only",
    "deadline",
    "breaker_open",
    "unavailable",
)


def failure_kind(error: BaseException) -> str:
    """Map an exception to one of :data:`FAILURE_KINDS`.

    Deadline expiry is a ``timeout``; everything else a request thread
    can observe is an ``exception`` (``crash`` is reserved for process
    death, which the in-process serving path cannot survive to report).
    """
    if isinstance(error, DeadlineExceeded):
        return "timeout"
    return "exception"


def _default_retry() -> RetryPolicy:
    # Serving-scale backoff: milliseconds, not the scheduler's seconds.
    return RetryPolicy(
        max_retries=2, backoff_seconds=0.005, backoff_factor=2.0, jitter=0.5
    )


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the daemon needs to degrade instead of fail."""

    #: Per-request wall budget; ``None`` disables deadline enforcement.
    deadline_ms: float | None = None
    #: Bounded retry for transient stage faults.
    retry: RetryPolicy = field(default_factory=_default_retry)
    #: Consecutive failures before a stage's breaker opens.
    breaker_threshold: int = 5
    #: How long an open breaker sheds load before its half-open probe.
    breaker_cooldown_ms: float = 250.0
    #: Explainer ladder below the requested explainer; names not
    #: present on the engine are skipped.  The final rung —
    #: classification-only — is implicit and always available.
    fallback_explainers: tuple[str, ...] = ("Gradient",)

    def __post_init__(self):
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown_ms <= 0:
            raise ValueError("breaker_cooldown_ms must be positive")
        object.__setattr__(
            self, "fallback_explainers", tuple(self.fallback_explainers)
        )


# Re-exported so resilience users need not import repro.exec directly.
_ = FAILURE_KINDS
