"""Deterministic fault injection for the serving stage boundaries.

A :class:`FaultPlan` assigns each :class:`InferenceEngine
<repro.serve.engine.InferenceEngine>` stage — sanitize, verify, reduce,
classify, explain — a :class:`FaultSpec`: independent probabilities of
an injected exception, a latency spike, or a non-finite output.  The
:class:`FaultInjector` turns the plan into *reproducible* decisions: a
fault fires iff a hash of ``(seed, stage, request key, attempt)`` lands
under the configured probability, so two chaos runs over the same
request multiset inject exactly the same faults regardless of thread
interleaving, and a retried attempt re-rolls deterministically (the
attempt index is part of the key — injected faults are transient by
construction, like the real failures they model).

Plans are plain JSON (``FaultPlan.load``/``save``) so a chaos lane can
commit its plan next to the benchmark baselines, and
:meth:`FaultPlan.fingerprint` names the exact plan a ``BENCH_chaos``
artifact was produced under.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.obs import add_counter

__all__ = [
    "FAULT_KINDS",
    "SERVING_STAGES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]

#: What an injected fault can do at a stage boundary: raise a typed
#: exception, stall the stage (latency spike), or corrupt the stage's
#: output with non-finite values (which the serving finiteness guards
#: must convert into a typed :class:`~repro.nn.NumericalError`).
FAULT_KINDS = ("error", "latency", "nonfinite")

#: The engine's stage boundaries, in request order.
SERVING_STAGES = ("sanitize", "verify", "reduce", "classify", "explain")


class InjectedFault(RuntimeError):
    """The exception an ``error``-kind injected fault raises.

    Deliberately *not* one of the domain's typed errors: the resilience
    layer must degrade gracefully on exception types it has never seen,
    exactly like a real bug would produce.
    """

    def __init__(self, stage: str, key: str, attempt: int):
        super().__init__(
            f"injected fault at stage {stage!r} (key={key!r}, attempt={attempt})"
        )
        self.stage = stage
        self.key = key
        self.attempt = attempt


@dataclass(frozen=True)
class FaultSpec:
    """Per-stage fault probabilities (independent draws, one per kind)."""

    error: float = 0.0
    latency: float = 0.0
    nonfinite: float = 0.0
    #: Duration of an injected latency spike.
    latency_ms: float = 25.0

    def __post_init__(self):
        for name in ("error", "latency", "nonfinite"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} probability must be in [0, 1]")
        if self.latency_ms < 0:
            raise ValueError("latency_ms cannot be negative")
        if self.error + self.latency + self.nonfinite > 1.0:
            raise ValueError("stage fault probabilities sum past 1.0")

    def to_dict(self) -> dict:
        return {
            "error": self.error,
            "latency": self.latency,
            "nonfinite": self.nonfinite,
            "latency_ms": self.latency_ms,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable assignment of fault specs to stages."""

    seed: int = 0
    stages: Mapping[str, FaultSpec] = field(default_factory=dict)

    def __post_init__(self):
        for stage in self.stages:
            if stage not in SERVING_STAGES:
                raise ValueError(
                    f"unknown stage {stage!r}; expected one of {SERVING_STAGES}"
                )
        object.__setattr__(self, "stages", dict(self.stages))

    @property
    def empty(self) -> bool:
        """True when no stage can ever fault under this plan."""
        return all(
            spec.error == spec.latency == spec.nonfinite == 0.0
            for spec in self.stages.values()
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "stages": {
                stage: self.stages[stage].to_dict()
                for stage in sorted(self.stages)
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        stages = {
            stage: FaultSpec(**spec)
            for stage, spec in dict(payload.get("stages", {})).items()
        }
        return cls(seed=int(payload.get("seed", 0)), stages=stages)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def fingerprint(self) -> str:
        """Stable content hash naming this exact plan in artifacts."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _draw(seed: int, stage: str, key: str, attempt: int) -> float:
    """A uniform [0, 1) value fully determined by the decision identity."""
    digest = hashlib.sha256(
        f"{seed}:{stage}:{key}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultInjector:
    """Applies a :class:`FaultPlan` at stage boundaries, deterministically.

    :meth:`fire` is the single entry point: it raises
    :class:`InjectedFault` for ``error`` faults, sleeps for ``latency``
    faults, and returns ``"nonfinite"`` when the caller must corrupt the
    stage's output (admission stages, which have no array output, get a
    raised :class:`~repro.nn.NumericalError` instead via
    ``has_output=False``).  Thread-safe by virtue of being stateless —
    every decision is a pure function of the plan and the call identity.
    """

    def __init__(self, plan: FaultPlan, sleep=time.sleep):
        self.plan = plan
        self._sleep = sleep

    def decide(self, stage: str, key: str, attempt: int = 0) -> str | None:
        """Which fault (if any) fires for this exact stage visit."""
        spec = self.plan.stages.get(stage)
        if spec is None:
            return None
        u = _draw(self.plan.seed, stage, key, attempt)
        if u < spec.error:
            return "error"
        if u < spec.error + spec.latency:
            return "latency"
        if u < spec.error + spec.latency + spec.nonfinite:
            return "nonfinite"
        return None

    def fire(
        self, stage: str, key: str, attempt: int = 0, has_output: bool = True
    ) -> str | None:
        """Apply the decided fault; returns ``"nonfinite"`` or ``None``.

        A returned ``"nonfinite"`` asks the caller to corrupt the
        stage's output (see :func:`corrupt_array`); ``error`` raises
        here, ``latency`` sleeps here.
        """
        kind = self.decide(stage, key, attempt)
        if kind is None:
            return None
        add_counter(f"resilience.fault.{stage}.{kind}")
        if kind == "error":
            raise InjectedFault(stage, key, attempt)
        if kind == "latency":
            spec = self.plan.stages[stage]
            self._sleep(spec.latency_ms / 1000.0)
            return None
        if not has_output:
            from repro.nn import NumericalError

            raise NumericalError(
                f"{stage} output", f"injected non-finite (key={key!r})"
            )
        return "nonfinite"


def corrupt_array(array):
    """A NaN-poisoned copy of ``array`` (the ``nonfinite`` fault payload)."""
    import numpy as np

    poisoned = np.array(array, dtype=float, copy=True)
    flat = poisoned.reshape(-1)
    if flat.size:
        flat[0] = np.nan
    return poisoned
