"""Per-request deadlines for the serving path.

A :class:`Deadline` is an absolute ``time.monotonic()`` expiry carried
on a request from admission to explanation.  Every stage boundary calls
:meth:`Deadline.check` so a request that has already blown its budget
stops consuming compute at the *next* boundary instead of running the
remaining stages to completion, and the daemon drops expired tickets
from the batch queue instead of executing them.

The deadline is a wall-budget, not a preemption mechanism: a stage that
is already running is never interrupted (the model stages share caches
on one thread and cannot be safely killed), it simply becomes the last
stage that runs for that request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(TimeoutError):
    """A request's deadline expired at a stage boundary.

    ``stage`` names the boundary that refused to start; ``budget_ms``
    is the original request budget.
    """

    def __init__(self, stage: str, budget_ms: float):
        super().__init__(
            f"deadline ({budget_ms:.0f} ms budget) expired before stage "
            f"{stage!r}"
        )
        self.stage = stage
        self.budget_ms = budget_ms


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock, with its budget."""

    expires_at: float
    budget_ms: float

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        if budget_ms <= 0:
            raise ValueError("deadline budget must be positive")
        return cls(expires_at=time.monotonic() + budget_ms / 1000.0,
                   budget_ms=float(budget_ms))

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def remaining_ms(self) -> float:
        """Milliseconds left; never negative."""
        return max(0.0, (self.expires_at - time.monotonic()) * 1000.0)

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(stage, self.budget_ms)
