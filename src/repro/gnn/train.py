"""Training loop for the GCN classifier."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acfg.dataset import ACFGDataset
from repro.gnn.model import GCNClassifier
from repro.nn import Adam, cross_entropy

__all__ = ["TrainingHistory", "train_gnn", "evaluate_accuracy"]


@dataclass
class TrainingHistory:
    """Per-epoch loss and (optional) held-out accuracy."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_gnn(
    model: GCNClassifier,
    train_set: ACFGDataset,
    epochs: int = 30,
    batch_size: int = 16,
    lr: float = 0.005,
    seed: int = 0,
    eval_set: ACFGDataset | None = None,
    verbose: bool = False,
) -> TrainingHistory:
    """Mini-batch Adam training with cross-entropy on true labels."""
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainingHistory()

    for epoch in range(epochs):
        order = rng.permutation(len(train_set))
        epoch_loss = 0.0
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            batch_loss = None
            for index in batch:
                graph = train_set[int(index)]
                z, _ = model.forward_acfg(graph)
                loss = cross_entropy(model.logits(z), graph.label)
                batch_loss = loss if batch_loss is None else batch_loss + loss
            batch_loss = batch_loss * (1.0 / len(batch))
            batch_loss.backward()
            optimizer.step()
            epoch_loss += batch_loss.item() * len(batch)
        history.losses.append(epoch_loss / len(order))
        if eval_set is not None:
            history.accuracies.append(evaluate_accuracy(model, eval_set))
        if verbose:
            acc = f" acc={history.accuracies[-1]:.3f}" if eval_set else ""
            print(f"epoch {epoch + 1:3d}  loss={history.losses[-1]:.4f}{acc}")
    return history


def evaluate_accuracy(model: GCNClassifier, dataset: ACFGDataset) -> float:
    """Fraction of graphs whose argmax prediction matches the label."""
    correct = sum(1 for g in dataset if model.predict(g) == g.label)
    return correct / len(dataset)
