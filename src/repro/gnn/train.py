"""Training loop for the GCN classifier.

Two execution modes share one optimization schedule (same shuffling,
same per-batch mean loss, same Adam updates):

* ``mode="batched"`` (default) packs every mini-batch into a
  block-diagonal :class:`~repro.gnn.batch.GraphBatch` and runs **one**
  forward/backward per batch — the throughput path.
* ``mode="per_graph"`` is the seed's loop: one dense forward/backward
  per graph, summed into the batch loss.  Kept as the reference
  implementation and for the batching benchmark.

The two modes compute the same loss (a block-diagonal Â applied to
stacked features is per-graph GCN propagation, and the batched
cross-entropy is the mean of the per-graph terms), so switching modes
changes wall-clock, not math.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acfg.dataset import ACFGDataset
from repro.gnn.batch import BatchPacker, GraphBatch
from repro.gnn.model import GCNClassifier
from repro.nn import Adam, cross_entropy, cross_entropy_batch
from repro.obs import span as obs_span

__all__ = ["TrainingHistory", "train_gnn", "evaluate_accuracy"]

#: Recognized values of ``train_gnn``'s ``mode`` / the pipeline's
#: ``batch_mode`` knob.
TRAINING_MODES = ("batched", "per_graph")


@dataclass
class TrainingHistory:
    """Per-epoch loss and (optional) held-out accuracy."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_gnn(
    model: GCNClassifier,
    train_set: ACFGDataset,
    epochs: int = 30,
    batch_size: int = 16,
    lr: float = 0.005,
    seed: int = 0,
    eval_set: ACFGDataset | None = None,
    mode: str = "batched",
    verbose: bool = False,
) -> TrainingHistory:
    """Mini-batch Adam training with cross-entropy on true labels."""
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    if mode not in TRAINING_MODES:
        raise ValueError(f"mode must be one of {TRAINING_MODES}, got {mode!r}")
    if not hasattr(model, "forward_batch"):
        # Alternative Φ implementations (e.g. DGCNN) that predate the
        # batched engine fall back to the reference loop.
        mode = "per_graph"
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainingHistory()
    packer = (
        BatchPacker(train_set, a_hat_cache=model.a_hat_cache)
        if mode == "batched"
        else None
    )

    with obs_span(f"train.gnn.{mode}") as train_span:
        for epoch in range(epochs):
            order = rng.permutation(len(train_set))
            epoch_loss = 0.0
            with obs_span("train.epoch") as epoch_span:
                if packer is not None:
                    for batch in packer.batches(batch_size, order=order):
                        epoch_loss += _batched_step(model, optimizer, batch)
                else:
                    for start in range(0, len(order), batch_size):
                        indices = order[start : start + batch_size]
                        epoch_loss += _per_graph_step(
                            model, optimizer, train_set, indices
                        )
                epoch_span.add("train.graphs", len(order))
            history.losses.append(epoch_loss / len(order))
            if eval_set is not None:
                history.accuracies.append(evaluate_accuracy(model, eval_set))
            if verbose:
                acc = f" acc={history.accuracies[-1]:.3f}" if eval_set else ""
                print(f"epoch {epoch + 1:3d}  loss={history.losses[-1]:.4f}{acc}")
        train_span.add("train.epochs", epochs)
    return history


def _batched_step(
    model: GCNClassifier, optimizer: Adam, batch: GraphBatch
) -> float:
    """One forward/backward over a packed batch; returns summed loss."""
    optimizer.zero_grad()
    _, logits = model.forward_batch(batch)
    loss = cross_entropy_batch(logits, batch.labels)
    loss.backward()
    optimizer.step()
    return loss.item() * batch.num_graphs


def _per_graph_step(
    model: GCNClassifier,
    optimizer: Adam,
    train_set: ACFGDataset,
    indices: np.ndarray,
) -> float:
    """The seed's reference loop: one dense pass per graph."""
    optimizer.zero_grad()
    batch_loss = None
    for index in indices:
        graph = train_set[int(index)]
        z, _ = model.forward_acfg(graph)
        loss = cross_entropy(model.logits(z), graph.label)
        batch_loss = loss if batch_loss is None else batch_loss + loss
    batch_loss = batch_loss * (1.0 / len(indices))
    batch_loss.backward()
    optimizer.step()
    return batch_loss.item() * len(indices)


def evaluate_accuracy(
    model: GCNClassifier, dataset: ACFGDataset, batch_size: int = 64
) -> float:
    """Fraction of graphs whose argmax prediction matches the label.

    Evaluates the whole split in a handful of batched passes instead of
    one dense forward per graph (models without the batched engine fall
    back to per-graph prediction).
    """
    with obs_span("eval.accuracy") as eval_span:
        if hasattr(model, "predict_batch"):
            predictions = model.predict_batch(list(dataset), batch_size=batch_size)
        else:
            predictions = np.array([model.predict(g) for g in dataset], dtype=int)
        labels = np.array([g.label for g in dataset], dtype=int)
        eval_span.add("eval.graphs", len(labels))
        return float((predictions == labels).mean())
