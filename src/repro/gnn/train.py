"""Training loop for the GCN classifier.

Two execution modes share one optimization schedule (same shuffling,
same per-batch mean loss, same Adam updates):

* ``mode="batched"`` (default) packs every mini-batch into a
  block-diagonal :class:`~repro.gnn.batch.GraphBatch` and runs **one**
  forward/backward per batch — the throughput path.
* ``mode="per_graph"`` is the seed's loop: one dense forward/backward
  per graph, summed into the batch loss.  Kept as the reference
  implementation and for the batching benchmark.

The two modes compute the same loss (a block-diagonal Â applied to
stacked features is per-graph GCN propagation, and the batched
cross-entropy is the mean of the per-graph terms), so switching modes
changes wall-clock, not math.

Numerical guards (``repro.nn.guards``) watch every step: a NaN/Inf
loss or gradient raises a typed :class:`~repro.nn.NumericalError` at
the step that produced it instead of silently poisoning the weights;
``max_grad_norm`` adds global-norm gradient clipping; and loss-spike
recovery (``loss_spike_factor`` / non-finite losses) rolls the model
and optimizer back to the last good epoch snapshot and backs off the
learning rate rather than killing the run — the input domain is
hostile, and one degenerate batch should degrade a run, not end it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acfg.dataset import ACFGDataset
from repro.gnn.batch import BatchPacker, GraphBatch
from repro.gnn.model import GCNClassifier
from repro.nn import (
    Adam,
    NumericalError,
    clip_grad_norm,
    compute_dtype,
    cross_entropy,
    cross_entropy_batch,
    grad_norm,
)
from repro.obs import add_counter, span as obs_span

__all__ = ["TrainingHistory", "train_gnn", "evaluate_accuracy"]

#: Recognized values of ``train_gnn``'s ``mode`` / the pipeline's
#: ``batch_mode`` knob.
TRAINING_MODES = ("batched", "per_graph")


@dataclass
class TrainingHistory:
    """Per-epoch loss and (optional) held-out accuracy.

    ``recovered_epochs`` lists the (0-based) epoch indices abandoned by
    loss-spike recovery: their loss is not appended, the model was
    rolled back to the previous good snapshot, and the learning rate
    was backed off before the next epoch.
    """

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    recovered_epochs: list[int] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def train_gnn(
    model: GCNClassifier,
    train_set: ACFGDataset,
    epochs: int = 30,
    batch_size: int = 16,
    lr: float = 0.005,
    seed: int = 0,
    eval_set: ACFGDataset | None = None,
    mode: str = "batched",
    verbose: bool = False,
    guard: bool = True,
    max_grad_norm: float | None = None,
    loss_spike_factor: float | None = None,
    max_recoveries: int = 3,
    lr_backoff: float = 0.5,
    dtype=None,
) -> TrainingHistory:
    """Mini-batch Adam training with cross-entropy on true labels.

    ``dtype`` (``None``, ``np.float64`` or ``np.float32``) selects the
    compute dtype for the whole run via
    :func:`repro.nn.compute_dtype`: batch packing, forward/backward
    kernels and fresh optimizer state all follow it.  ``None`` keeps
    the process default (float64 unless overridden).  float32 runs
    track the float64 reference within the tolerance documented in
    :mod:`repro.nn.dtype`, not bit-exactly; note the model's parameters
    keep the dtype they were *constructed* with — create the model
    under the same ``compute_dtype`` for an end-to-end float32 run.

    Guard semantics:

    * ``guard`` (default on) checks every step's loss and gradient norm
      for NaN/Inf.  The checks never change a finite run's numbers.
    * ``max_grad_norm`` clips gradients to that global L2 norm.
    * A non-finite step — or, with ``loss_spike_factor`` set, an epoch
      whose mean loss exceeds ``loss_spike_factor`` times the last good
      epoch's — triggers recovery: restore the last good epoch's model
      and optimizer state, multiply the learning rate by ``lr_backoff``,
      and move on.  After ``max_recoveries`` recoveries the next trigger
      re-raises :class:`~repro.nn.NumericalError`.
    """
    if epochs <= 0 or batch_size <= 0:
        raise ValueError("epochs and batch_size must be positive")
    if mode not in TRAINING_MODES:
        raise ValueError(f"mode must be one of {TRAINING_MODES}, got {mode!r}")
    if loss_spike_factor is not None and loss_spike_factor <= 1.0:
        raise ValueError("loss_spike_factor must be > 1 (relative spike)")
    if lr_backoff <= 0 or lr_backoff >= 1:
        raise ValueError("lr_backoff must be in (0, 1)")
    if not hasattr(model, "forward_batch"):
        # Alternative Φ implementations (e.g. DGCNN) that predate the
        # batched engine fall back to the reference loop.
        mode = "per_graph"
    if dtype is not None:
        with compute_dtype(dtype):
            return train_gnn(
                model, train_set, epochs=epochs, batch_size=batch_size,
                lr=lr, seed=seed, eval_set=eval_set, mode=mode,
                verbose=verbose, guard=guard, max_grad_norm=max_grad_norm,
                loss_spike_factor=loss_spike_factor,
                max_recoveries=max_recoveries, lr_backoff=lr_backoff,
            )
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainingHistory()
    packer = (
        BatchPacker(train_set, a_hat_cache=model.a_hat_cache)
        if mode == "batched"
        else None
    )

    # Last epoch snapshot known to be numerically healthy; epoch -1 is
    # the freshly initialized model, so recovery is possible even when
    # the very first epoch diverges.
    good_state = optimizer.state_dict() if guard else None
    good_loss: float | None = None
    recoveries = 0

    def recover(epoch: int, error: NumericalError | None) -> None:
        nonlocal recoveries
        if good_state is None:  # guards disabled: nothing to roll back to
            raise error or NumericalError("loss", f"epoch {epoch}: loss spike")
        recoveries += 1
        if recoveries > max_recoveries:
            raise error or NumericalError(
                "loss", f"epoch {epoch}: recovery budget exhausted"
            )
        optimizer.load_state_dict(good_state)
        optimizer.lr *= lr_backoff
        history.recovered_epochs.append(epoch)
        add_counter("train.recoveries")
        if verbose:
            reason = error.where if error is not None else "loss spike"
            print(
                f"epoch {epoch + 1:3d}  RECOVERED ({reason}); "
                f"lr backed off to {optimizer.lr:.2e}"
            )

    with obs_span(f"train.gnn.{mode}") as train_span:
        for epoch in range(epochs):
            order = rng.permutation(len(train_set))
            epoch_loss = 0.0
            try:
                with obs_span("train.epoch") as epoch_span:
                    if packer is not None:
                        for batch in packer.batches(batch_size, order=order):
                            epoch_loss += _batched_step(
                                model, optimizer, batch, guard, max_grad_norm
                            )
                    else:
                        for start in range(0, len(order), batch_size):
                            indices = order[start : start + batch_size]
                            epoch_loss += _per_graph_step(
                                model, optimizer, train_set, indices,
                                guard, max_grad_norm,
                            )
                    epoch_span.add("train.graphs", len(order))
            except NumericalError as error:
                recover(epoch, error)
                continue
            mean_loss = epoch_loss / len(order)
            if (
                guard
                and loss_spike_factor is not None
                and good_loss is not None
                and mean_loss > loss_spike_factor * good_loss
            ):
                recover(epoch, None)
                continue
            if guard:
                good_state = optimizer.state_dict()
                good_loss = mean_loss
            history.losses.append(mean_loss)
            if eval_set is not None:
                history.accuracies.append(evaluate_accuracy(model, eval_set))
            if verbose:
                acc = f" acc={history.accuracies[-1]:.3f}" if eval_set else ""
                print(f"epoch {epoch + 1:3d}  loss={history.losses[-1]:.4f}{acc}")
        train_span.add("train.epochs", epochs)
    return history


def _guarded_update(
    optimizer: Adam, guard: bool, max_grad_norm: float | None
) -> None:
    """Clip / validate gradients, then apply the optimizer step."""
    if max_grad_norm is not None:
        clip_grad_norm(optimizer.parameters, max_grad_norm)
    elif guard:
        norm = grad_norm(optimizer.parameters)
        if not np.isfinite(norm):
            raise NumericalError("gradient", f"gradient norm is {norm!r}")
    optimizer.step()


def _batched_step(
    model: GCNClassifier,
    optimizer: Adam,
    batch: GraphBatch,
    guard: bool = True,
    max_grad_norm: float | None = None,
) -> float:
    """One forward/backward over a packed batch; returns summed loss."""
    optimizer.zero_grad()
    _, logits = model.forward_batch(batch)
    loss = cross_entropy_batch(logits, batch.labels)
    value = loss.item()
    if guard and not np.isfinite(value):
        raise NumericalError("loss", f"batched step produced {value!r}")
    loss.backward()
    _guarded_update(optimizer, guard, max_grad_norm)
    return value * batch.num_graphs


def _per_graph_step(
    model: GCNClassifier,
    optimizer: Adam,
    train_set: ACFGDataset,
    indices: np.ndarray,
    guard: bool = True,
    max_grad_norm: float | None = None,
) -> float:
    """The seed's reference loop: one dense pass per graph."""
    optimizer.zero_grad()
    batch_loss = None
    for index in indices:
        graph = train_set[int(index)]
        z, _ = model.forward_acfg(graph)
        loss = cross_entropy(model.logits(z), graph.label)
        batch_loss = loss if batch_loss is None else batch_loss + loss
    batch_loss = batch_loss * (1.0 / len(indices))
    value = batch_loss.item()
    if guard and not np.isfinite(value):
        raise NumericalError("loss", f"per-graph step produced {value!r}")
    batch_loss.backward()
    _guarded_update(optimizer, guard, max_grad_norm)
    return value * len(indices)


def evaluate_accuracy(
    model: GCNClassifier, dataset: ACFGDataset, batch_size: int = 64
) -> float:
    """Fraction of graphs whose argmax prediction matches the label.

    Evaluates the whole split in a handful of batched passes instead of
    one dense forward per graph (models without the batched engine fall
    back to per-graph prediction).
    """
    with obs_span("eval.accuracy") as eval_span:
        if hasattr(model, "predict_batch"):
            predictions = model.predict_batch(list(dataset), batch_size=batch_size)
        else:
            predictions = np.array([model.predict(g) for g in dataset], dtype=int)
        labels = np.array([g.label for g in dataset], dtype=int)
        eval_span.add("eval.graphs", len(labels))
        return float((predictions == labels).mean())
