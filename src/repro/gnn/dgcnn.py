"""A DGCNN-style classifier (MAGIC's architecture family).

The GNN the paper actually explains is MAGIC [11], which is built on
DGCNN (Zhang et al., 2018): stacked graph convolutions with *tanh*
activations whose channel outputs are concatenated, followed by
*SortPooling* — nodes sorted by their last convolution channel, the
top-k kept as a fixed-size representation — and a dense head.

CFGExplainer claims to be model-agnostic: it only consumes node
embeddings.  This class provides a second Φ implementation with the
same interface as :class:`GCNClassifier`, so the claim is testable (see
``benchmarks/test_bench_model_agnostic.py``).

Simplifications vs the original DGCNN (documented):
* the 1-D convolutions over the sorted node sequence are replaced by a
  dense head on the flattened top-k rows — same information path,
  fewer moving parts;
* embeddings are shifted to be non-negative (``tanh + 1``) so the
  paper's ``Z ∈ R_{>=0}^{N×f}`` convention and the padding-stays-zero
  invariant both hold.
"""

from __future__ import annotations

import numpy as np

from repro.acfg.graph import ACFG
from repro.gnn.normalize import normalized_adjacency
from repro.nn import Dense, GCNConv, Module, Tensor, no_grad

__all__ = ["DGCNNClassifier"]


class DGCNNClassifier(Module):
    """DGCNN-style Φ: tanh conv stack + SortPooling + dense head."""

    def __init__(
        self,
        in_features: int = 12,
        conv_channels: tuple[int, ...] = (32, 32, 16),
        sort_k: int = 24,
        num_classes: int = 12,
        rng: np.random.Generator | None = None,
    ):
        if not conv_channels:
            raise ValueError("need at least one convolution layer")
        if sort_k <= 0:
            raise ValueError("sort_k must be positive")
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        widths = (in_features, *conv_channels)
        self.convs = [
            GCNConv(w_in, w_out, activation="tanh", rng=rng)
            for w_in, w_out in zip(widths[:-1], widths[1:])
        ]
        self.embedding_size = sum(conv_channels)
        self.sort_k = sort_k
        self.head = Dense(
            sort_k * self.embedding_size, num_classes, activation="linear", rng=rng
        )
        self.in_features = in_features
        self.num_classes = num_classes

    # ------------------------------------------------------------------
    # Φ_e — same signature as GCNClassifier
    # ------------------------------------------------------------------
    def embed(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        active_mask: np.ndarray | None = None,
    ) -> Tensor:
        n = adjacency.shape[0]
        if active_mask is None:
            active_mask = np.ones(n, dtype=bool)
        a_hat = Tensor(normalized_adjacency(adjacency, active_mask))
        return self.embed_normalized(a_hat, features, active_mask)

    def embed_normalized(
        self,
        a_hat: Tensor,
        features: np.ndarray | Tensor,
        active_mask: np.ndarray,
    ) -> Tensor:
        """Concatenated per-layer channels, shifted non-negative."""
        n = int(a_hat.shape[0])
        mask = Tensor(np.asarray(active_mask, dtype=np.float64).reshape(n, 1))
        h = Tensor.ensure(features)
        outputs = []
        for conv in self.convs:
            h = conv(a_hat, h)
            # tanh ∈ [-1, 1]; shift into [0, 2] and re-zero inactive rows.
            outputs.append((h + 1.0) * mask)
            h = h * mask
        return Tensor.concatenate(outputs, axis=1)

    # ------------------------------------------------------------------
    # Φ_c — SortPooling + dense head
    # ------------------------------------------------------------------
    def classify(self, z: Tensor) -> Tensor:
        return self.logits(z).softmax(axis=-1)

    def logits(self, z: Tensor) -> Tensor:
        """SortPool: rank nodes by their last channel, keep top-k rows.

        The sort permutation is computed from values (constant w.r.t.
        the graph) and applied with differentiable indexing; graphs
        with fewer active rows than k are effectively zero-padded, as
        in the original.
        """
        n = int(z.shape[0])
        order = np.argsort(-z.numpy()[:, -1], kind="stable")
        k = min(self.sort_k, n)
        top = z[order[:k]]
        flat = top.reshape(1, -1)
        if k < self.sort_k:
            padding = Tensor(np.zeros((1, (self.sort_k - k) * self.embedding_size)))
            flat = Tensor.concatenate([flat, padding], axis=1)
        return self.head(flat).reshape(-1)

    # ------------------------------------------------------------------
    # shared conveniences (mirrors GCNClassifier's interface)
    # ------------------------------------------------------------------
    def forward_acfg(self, graph: ACFG) -> tuple[Tensor, Tensor]:
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        z = self.embed(graph.adjacency, graph.features, mask)
        return z, self.classify(z)

    def predict(self, graph: ACFG) -> int:
        with no_grad():
            _, probs = self.forward_acfg(graph)
        return int(np.argmax(probs.numpy()))

    def predict_proba(self, graph: ACFG) -> np.ndarray:
        with no_grad():
            _, probs = self.forward_acfg(graph)
        return probs.numpy().copy()

    def predict_subgraph(self, graph: ACFG, kept_nodes: np.ndarray) -> int:
        with no_grad():
            probs = self.subgraph_proba(graph, kept_nodes)
        return int(np.argmax(probs))

    def subgraph_proba(self, graph: ACFG, kept_nodes: np.ndarray) -> np.ndarray:
        kept_nodes = np.asarray(kept_nodes, dtype=int)
        adjacency = graph.subgraph_adjacency(kept_nodes)
        features = graph.masked_features(kept_nodes)
        mask = np.zeros(graph.n, dtype=bool)
        mask[kept_nodes] = True
        mask[graph.n_real :] = False
        with no_grad():
            z = self.embed(adjacency, features, mask)
            probs = self.classify(z)
        return probs.numpy().copy()
