"""Adjacency normalization for graph convolution.

Kipf & Welling propagation: ``A_hat = D^{-1/2} (A + I) D^{-1/2}``.
Self-loops are added only to *active* nodes so that padded (or pruned)
nodes — zero features, zero edges — stay exactly inert through Φ_e.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

__all__ = ["normalized_adjacency", "normalized_adjacency_csr"]


def normalized_adjacency(
    adjacency: np.ndarray, active_mask: np.ndarray | None = None
) -> np.ndarray:
    """Symmetrically normalized adjacency with masked self-loops.

    Parameters
    ----------
    adjacency:
        Weighted adjacency ``A ∈ {0,1,2}^{N×N}`` (call edges weigh 2).
    active_mask:
        Boolean vector of length N; ``False`` rows get no self-loop.
        Defaults to all-active.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if active_mask is None:
        active = np.ones(n, dtype=bool)
    else:
        active = np.asarray(active_mask, dtype=bool)
        if active.shape != (n,):
            raise ValueError(f"mask shape {active.shape} != ({n},)")

    # Symmetrize: GCN message passing treats control-flow edges as
    # bidirectional information channels, as PyG's GCNConv does for
    # directed inputs.  Weights (1 jump / 2 call) are preserved.
    symmetric = np.maximum(adjacency, adjacency.T)
    with_loops = symmetric + np.diag(active.astype(np.float64))

    degree = with_loops.sum(axis=1)
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degree[nonzero])
    return with_loops * inv_sqrt[:, None] * inv_sqrt[None, :]


def normalized_adjacency_csr(
    adjacency: np.ndarray, active_mask: np.ndarray | None = None
) -> "_sp.csr_matrix":
    """:func:`normalized_adjacency` computed directly in CSR form.

    The dense reference materializes three O(N²) intermediates
    (symmetrized matrix, self-loop sum, scaled product); this path
    scans the dense input once for its nonzeros and does everything
    else on the O(nnz) sparse structure — the form the batched engine
    packs into block-diagonal matrices, so Â is never round-tripped
    through a second dense materialization.  Equivalent to the dense
    reference to within last-ulp summation-order effects in the degree
    (≪ 1e-8; ``tests/test_kernel_backend.py`` pins it down).
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ValueError(f"adjacency must be square, got {adjacency.shape}")
    if active_mask is None:
        active = np.ones(n, dtype=bool)
    else:
        active = np.asarray(active_mask, dtype=bool)
        if active.shape != (n,):
            raise ValueError(f"mask shape {active.shape} != ({n},)")

    rows, cols = np.nonzero(adjacency)
    sparse = _sp.csr_matrix(
        (adjacency[rows, cols], (rows, cols)), shape=(n, n), dtype=np.float64
    )
    symmetric = sparse.maximum(sparse.T.tocsr()).tocsr()
    with_loops = (
        symmetric + _sp.diags(active.astype(np.float64), format="csr")
    ).tocsr()

    degree = np.asarray(with_loops.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degree[nonzero])
    # Row scaling via the CSR structure, column scaling via the column
    # indices — same (w * r) * c operation order as the dense form.
    with_loops.data *= np.repeat(inv_sqrt, np.diff(with_loops.indptr))
    with_loops.data *= inv_sqrt[with_loops.indices]
    return with_loops
