"""The GNN malware classifier Φ = {Φ_e, Φ_c} from Section V-A.

Φ_e stacks ReLU-activated graph-convolution layers (the paper uses
sizes 1024/512/128 on a P100; defaults here are scaled down but
configurable) and Φ_c is a dense softmax classifier that consumes all
node embeddings via sum pooling.
"""

from repro.gnn.batch import BatchPacker, GraphBatch, iter_batches
from repro.gnn.cache import AHatCache, CachedForward, EmbeddingCache
from repro.gnn.dgcnn import DGCNNClassifier
from repro.gnn.model import GCNClassifier
from repro.gnn.normalize import normalized_adjacency
from repro.gnn.train import (
    TRAINING_MODES,
    TrainingHistory,
    evaluate_accuracy,
    train_gnn,
)

__all__ = [
    "normalized_adjacency",
    "AHatCache",
    "CachedForward",
    "EmbeddingCache",
    "BatchPacker",
    "GraphBatch",
    "iter_batches",
    "GCNClassifier",
    "DGCNNClassifier",
    "train_gnn",
    "evaluate_accuracy",
    "TrainingHistory",
    "TRAINING_MODES",
]
