"""Content-keyed caches for per-graph artifacts of the frozen GNN.

Two cost centers dominated the seed pipeline's redundant work:

* ``normalized_adjacency`` was rebuilt on *every* ``predict`` /
  ``embed`` call — O(N²) symmetrize/degree/scale passes per forward —
  even though the evaluation calls the classifier on the same graphs
  over and over.  :class:`AHatCache` memoizes Â (and its CSR form for
  the batched engine) behind a content key.
* Every explainer independently re-ran the frozen Φ over the training
  and test graphs to get embeddings Z and the predicted class.
  :class:`EmbeddingCache` computes them once — in batched passes — and
  hands them to CFGExplainer training, PGExplainer's offline stage and
  the Figure 2 / Tables III–IV experiments.

Keys are content hashes (array bytes), not object identities:
Algorithm 2 mutates adjacency buffers in place between forward passes,
so identity-keyed caching would silently serve stale matrices.  Hashing
is O(N²) but a small constant compared to normalization or a forward
pass, and it makes the caches safe for arbitrary callers.  Callers
that hold an :class:`~repro.acfg.graph.ACFG` skip even that constant:
the graph memoizes its own digests (``ACFG.content_key`` /
``ACFG.embed_key``) and passes them in, so repeated passes over the
same graphs hash each one exactly once process-wide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.acfg.graph import content_digest as _digest
from repro.gnn.normalize import normalized_adjacency_csr
from repro.nn.sparse import CSRMatrix
from repro.obs import add_counter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.acfg.dataset import ACFGDataset
    from repro.acfg.graph import ACFG
    from repro.gnn.model import GCNClassifier

__all__ = ["AHatCache", "CacheInfo", "CachedForward", "EmbeddingCache"]


@dataclass(frozen=True)
class CacheInfo:
    """Hit/miss counters, mirroring ``functools.lru_cache.cache_info``."""

    hits: int
    misses: int
    size: int
    maxsize: int


_F64 = np.dtype(np.float64).str


class _AHatEntry:
    """One cached Â: CSR canonical, dense and casts derived lazily.

    Â is *computed* in CSR form (:func:`normalized_adjacency_csr`) —
    the form the batched engine consumes — and the dense matrix the
    per-graph/explainer path wants is a cheap ``toarray`` fill from
    it, so neither representation is ever built twice.
    """

    __slots__ = ("_dense", "csr")

    def __init__(self, csr: CSRMatrix):
        #: CSR forms keyed by dtype string — the float64 canonical plus
        #: any compute-dtype casts the batched engine requested.
        self.csr: dict[str, CSRMatrix] = {_F64: csr}
        self._dense: np.ndarray | None = None

    @property
    def dense(self) -> np.ndarray:
        if self._dense is None:
            self._dense = self.csr[_F64].toarray()
        return self._dense


class AHatCache:
    """LRU cache of normalized adjacencies keyed by graph content.

    ``get`` returns the dense Â consumed by the per-graph path;
    ``get_csr`` additionally memoizes the CSR form the batched engine
    packs into block-diagonal matrices.  Returned arrays are shared —
    treat them as read-only.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[bytes, _AHatEntry] = OrderedDict()

    def _entry(
        self,
        adjacency: np.ndarray,
        active_mask: np.ndarray | None,
        key: bytes | None = None,
    ) -> _AHatEntry:
        if key is None:
            adjacency = np.asarray(adjacency, dtype=np.float64)
            mask = (
                np.ones(adjacency.shape[0], dtype=bool)
                if active_mask is None
                else np.asarray(active_mask, dtype=bool)
            )
            key = _digest(adjacency, mask)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            add_counter("cache.a_hat.hits")
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        add_counter("cache.a_hat.misses")
        adjacency = np.asarray(adjacency, dtype=np.float64)
        mask = (
            np.ones(adjacency.shape[0], dtype=bool)
            if active_mask is None
            else np.asarray(active_mask, dtype=bool)
        )
        entry = _AHatEntry(CSRMatrix(normalized_adjacency_csr(adjacency, mask)))
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry

    def get(
        self,
        adjacency: np.ndarray,
        active_mask: np.ndarray | None = None,
        key: bytes | None = None,
    ) -> np.ndarray:
        """The dense normalized adjacency Â, computed at most once.

        ``key`` short-circuits the content hash when the caller already
        holds the digest (``ACFG.content_key()``); it must equal what
        :func:`repro.acfg.graph.content_digest` yields for
        ``(adjacency, mask)`` — graph-keyed and array-keyed callers
        then share cache entries.
        """
        return self._entry(adjacency, active_mask, key).dense

    def get_csr(
        self,
        adjacency: np.ndarray,
        active_mask: np.ndarray | None = None,
        dtype=None,
        key: bytes | None = None,
    ) -> CSRMatrix:
        """Â in CSR form (per requested dtype), for batch packing."""
        entry = self._entry(adjacency, active_mask, key)
        dtype_str = np.dtype(np.float64 if dtype is None else dtype).str
        csr = entry.csr.get(dtype_str)
        if csr is None:
            csr = CSRMatrix(entry.csr[_F64].astype(dtype_str), dtype=dtype_str)
            entry.csr[dtype_str] = csr
        return csr

    def cache_info(self) -> CacheInfo:
        return CacheInfo(self.hits, self.misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class CachedForward:
    """Frozen-GNN outputs for one graph: embeddings and classification."""

    z: np.ndarray  # [N, f] node embeddings (padded rows zero)
    probs: np.ndarray  # [C] class probabilities
    predicted_class: int


class EmbeddingCache:
    """Shared store of frozen-GNN forward results, filled in batches.

    The pipeline populates it right after classifier training; explainer
    training (:func:`repro.core.training.precompute_embeddings`),
    PGExplainer's offline stage and Algorithm 2's first rung then reuse
    Z / the predicted class instead of re-running Φ per consumer.
    """

    def __init__(self, model: "GCNClassifier"):
        self.model = model
        self.hits = 0
        self.misses = 0
        self._entries: dict[bytes, CachedForward] = {}

    @staticmethod
    def _key(graph: "ACFG") -> bytes:
        if hasattr(graph, "embed_key"):
            return graph.embed_key()
        return _digest(
            graph.adjacency, graph.features, np.asarray([graph.n_real])
        )

    def __len__(self) -> int:
        return len(self._entries)

    def populate(self, dataset: "ACFGDataset | list[ACFG]", batch_size: int = 32) -> None:
        """Run batched forward passes over every graph not yet cached."""
        from repro.gnn.batch import iter_batches
        from repro.nn import no_grad

        pending = [g for g in dataset if self._key(g) not in self._entries]
        if not pending:
            return
        if not hasattr(self.model, "embed_batch"):
            # Alternative Φ implementations without the batched engine
            # (e.g. DGCNN): one dense forward per graph.
            for graph in pending:
                mask = np.zeros(graph.n, dtype=bool)
                mask[: graph.n_real] = True
                with no_grad():
                    z = self.model.embed(graph.adjacency, graph.features, mask)
                    probs = self.model.classify(z)
                probs_data = probs.numpy().reshape(-1).copy()
                self._entries[self._key(graph)] = CachedForward(
                    z=z.numpy().copy(),
                    probs=probs_data,
                    predicted_class=int(np.argmax(probs_data)),
                )
            return
        for batch in iter_batches(
            pending, batch_size, a_hat_cache=getattr(self.model, "a_hat_cache", None)
        ):
            with no_grad():
                z = self.model.embed_batch(batch)
                probs = self.model.logits_batch(z, batch).softmax(axis=-1)
            z_data, probs_data = z.numpy(), probs.numpy()
            for i, graph in enumerate(batch.graphs):
                rows = slice(batch.offsets[i], batch.offsets[i + 1])
                entry = CachedForward(
                    z=z_data[rows].copy(),
                    probs=probs_data[i].copy(),
                    predicted_class=int(np.argmax(probs_data[i])),
                )
                self._entries[self._key(graph)] = entry

    def lookup(self, graph: "ACFG") -> CachedForward | None:
        entry = self._entries.get(self._key(graph))
        if entry is not None:
            self.hits += 1
            add_counter("cache.embedding.hits")
        return entry

    def forward(self, graph: "ACFG") -> CachedForward:
        """Cached forward results, computing (and storing) on a miss."""
        key = self._key(graph)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            add_counter("cache.embedding.hits")
            return entry
        self.misses += 1
        add_counter("cache.embedding.misses")
        self.populate([graph], batch_size=1)
        return self._entries[key]

    def cache_info(self) -> CacheInfo:
        return CacheInfo(self.hits, self.misses, len(self._entries), -1)

    def clear(self) -> None:
        """Drop every cached forward (e.g. after the GNN's weights change)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
