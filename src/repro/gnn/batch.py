"""Block-diagonal mini-batch packing for ACFGs.

``GraphBatch`` packs many graphs into one disconnected super-graph:

* ``a_hat`` — the per-graph normalized adjacencies Â stacked into one
  block-diagonal CSR matrix.  Messages cannot cross blocks, so one
  sparse matmul over the batch equals per-graph dense matmuls exactly.
* ``features`` — node features stacked row-wise, ``[total_nodes, d]``,
  in the process compute dtype (:mod:`repro.nn.dtype`).
* ``segment_ids`` — the graph index of every stacked row, which turns
  per-graph pooling into segment reductions (:func:`repro.nn.segment_sum`
  / :func:`repro.nn.segment_max`).
* ``workspace`` — an optional :class:`~repro.nn.backend.KernelWorkspace`
  the batched forward/backward kernels write their large intermediates
  into, so repeated steps reuse buffers instead of reallocating.

Padded rows are packed along with real ones (zero features, no edges,
``active_mask`` False) so the batched path reproduces the per-graph
mask and pooling semantics bit-for-bit — including mean pooling's
divide-by-padded-size convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.acfg.graph import ACFG
from repro.gnn.cache import AHatCache
from repro.nn.backend import KernelWorkspace
from repro.nn.dtype import get_compute_dtype
from repro.nn.sparse import CSRMatrix

__all__ = ["BatchPacker", "GraphBatch", "iter_batches"]


def _graph_block(
    graph: ACFG, a_hat_cache: AHatCache | None, dtype=None
) -> tuple[CSRMatrix, np.ndarray]:
    """One graph's CSR Â block and active-node mask."""
    if graph.n == 0:
        raise ValueError(f"graph {graph.name!r} has no nodes")
    dtype = get_compute_dtype() if dtype is None else dtype
    mask = np.zeros(graph.n, dtype=bool)
    mask[: graph.n_real] = True
    if a_hat_cache is not None:
        key = graph.content_key() if isinstance(graph, ACFG) else None
        return a_hat_cache.get_csr(graph.adjacency, mask, dtype=dtype, key=key), mask
    from repro.gnn.normalize import normalized_adjacency_csr

    return (
        CSRMatrix(normalized_adjacency_csr(graph.adjacency, mask), dtype=dtype),
        mask,
    )


@dataclass(frozen=True)
class GraphBatch:
    """Many ACFGs packed for one forward/backward pass."""

    a_hat: CSRMatrix  # [total, total] block-diagonal normalized adjacency
    features: np.ndarray  # [total, d] stacked node features
    segment_ids: np.ndarray  # [total] graph index per stacked row
    active_mask: np.ndarray  # [total] bool, False on padding rows
    labels: np.ndarray  # [B] ground-truth class per graph
    sizes: np.ndarray  # [B] padded node count per graph
    offsets: np.ndarray  # [B + 1] row ranges: graph i owns offsets[i]:offsets[i+1]
    graphs: tuple[ACFG, ...]  # the packed graphs, in batch order
    workspace: KernelWorkspace | None = field(default=None, compare=False)

    @property
    def num_graphs(self) -> int:
        return len(self.sizes)

    @property
    def total_nodes(self) -> int:
        return int(self.offsets[-1])

    @property
    def mask_column(self) -> np.ndarray:
        """``active_mask`` as a ``[total, 1]`` 0/1 column in the feature
        dtype — the constant the fused GCN layers multiply by."""
        return self.active_mask.astype(self.features.dtype).reshape(-1, 1)

    def rows_of(self, index: int) -> slice:
        """Row range of graph ``index`` inside the stacked arrays."""
        return slice(int(self.offsets[index]), int(self.offsets[index + 1]))

    @classmethod
    def from_graphs(
        cls,
        graphs: Sequence[ACFG],
        a_hat_cache: AHatCache | None = None,
        workspace: KernelWorkspace | None = None,
    ) -> "GraphBatch":
        """Pack ``graphs`` (any mix of sizes) into one batch.

        ``a_hat_cache`` memoizes each graph's Â (and its CSR block), so
        re-packing the same graphs across epochs only pays for the
        block-diagonal assembly.
        """
        if not graphs:
            raise ValueError("cannot batch zero graphs")
        dtype = get_compute_dtype()
        pairs = [_graph_block(graph, a_hat_cache, dtype) for graph in graphs]
        features = [np.asarray(g.features, dtype=dtype) for g in graphs]
        return cls._assemble(
            tuple(graphs),
            [b for b, _ in pairs],
            [m for _, m in pairs],
            features,
            workspace,
        )

    @classmethod
    def _assemble(
        cls,
        graphs: tuple[ACFG, ...],
        blocks: list[CSRMatrix],
        masks: list[np.ndarray],
        features: list[np.ndarray],
        workspace: KernelWorkspace | None = None,
    ) -> "GraphBatch":
        sizes = np.array([g.n for g in graphs], dtype=np.intp)
        offsets = np.zeros(len(graphs) + 1, dtype=np.intp)
        np.cumsum(sizes, out=offsets[1:])
        return cls(
            a_hat=CSRMatrix.block_diagonal(blocks),
            features=np.vstack(features),
            segment_ids=np.repeat(np.arange(len(graphs), dtype=np.intp), sizes),
            active_mask=np.concatenate(masks),
            labels=np.array([g.label for g in graphs], dtype=np.intp),
            sizes=sizes,
            offsets=offsets,
            graphs=tuple(graphs),
            workspace=workspace,
        )


class BatchPacker:
    """Precomputed per-graph blocks for repeated epoch iteration.

    ``GraphBatch.from_graphs`` pays a content-hash lookup (or a fresh
    normalization) per graph per batch, which a multi-epoch training
    loop repeats every epoch.  The packer resolves each graph's CSR Â,
    mask and float features exactly once at construction; per-epoch
    batch assembly is then only block-diagonal stacking.  It also owns
    the :class:`~repro.nn.backend.KernelWorkspace` every batch it
    yields shares, so all epochs reuse one set of kernel buffers.  Use
    it when the same graph list is batched many times (training);
    one-shot passes (evaluation, cache population) can keep
    :func:`iter_batches`.
    """

    def __init__(
        self, graphs: "Iterable[ACFG]", a_hat_cache: AHatCache | None = None
    ):
        self.graphs = list(graphs)
        dtype = get_compute_dtype()
        pairs = [_graph_block(graph, a_hat_cache, dtype) for graph in self.graphs]
        self._blocks = [block for block, _ in pairs]
        self._masks = [mask for _, mask in pairs]
        self._features = [
            np.asarray(g.features, dtype=dtype) for g in self.graphs
        ]
        self.workspace = KernelWorkspace()

    def __len__(self) -> int:
        return len(self.graphs)

    def batches(
        self, batch_size: int, order: np.ndarray | None = None
    ) -> Iterator[GraphBatch]:
        """Yield batches of ``batch_size`` graphs in ``order``."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        indices = (
            np.arange(len(self.graphs)) if order is None else np.asarray(order)
        )
        for start in range(0, len(indices), batch_size):
            chunk = [int(i) for i in indices[start : start + batch_size]]
            yield GraphBatch._assemble(
                tuple(self.graphs[i] for i in chunk),
                [self._blocks[i] for i in chunk],
                [self._masks[i] for i in chunk],
                [self._features[i] for i in chunk],
                self.workspace,
            )


def iter_batches(
    graphs: "Iterable[ACFG]",
    batch_size: int,
    order: np.ndarray | None = None,
    a_hat_cache: AHatCache | None = None,
) -> Iterator[GraphBatch]:
    """Yield :class:`GraphBatch` chunks of ``batch_size`` graphs.

    ``order`` (a permutation of indices) controls the traversal, so a
    training loop can shuffle per epoch while evaluation keeps the
    natural order.  All yielded batches share one
    :class:`~repro.nn.backend.KernelWorkspace` for the duration of the
    pass.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    graphs = list(graphs)
    workspace = KernelWorkspace()
    indices = np.arange(len(graphs)) if order is None else np.asarray(order)
    for start in range(0, len(indices), batch_size):
        chunk = indices[start : start + batch_size]
        yield GraphBatch.from_graphs(
            [graphs[int(i)] for i in chunk],
            a_hat_cache=a_hat_cache,
            workspace=workspace,
        )
