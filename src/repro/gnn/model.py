"""The GCN classifier Φ = {Φ_e, Φ_c}.

Architecture from Section V-A: Φ_e is three inter-connected GCN layers
with ReLU activations (node embeddings are therefore non-negative, as
the paper's ``Z ∈ R_{>=0}^{N×f}`` notation requires); Φ_c is a densely
connected linear layer producing probabilities over the 12 families,
consuming *all* node embeddings (sum pooling keeps that property while
staying size-independent).

The classifier has two execution engines:

* the per-graph dense path (``embed`` / ``forward_acfg`` / ``predict``)
  — kept as the differentiable-adjacency entry point the mask-based
  explainers backpropagate through;
* the batched block-diagonal path (``embed_batch`` / ``logits_batch``
  / ``predict_batch``) over :class:`repro.gnn.batch.GraphBatch`, which
  runs a whole mini-batch in one sparse forward pass.  Both paths are
  numerically identical (tests/test_graph_batch.py).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.acfg.graph import ACFG
from repro.gnn.cache import AHatCache
from repro.nn import Dense, GCNConv, Module, Tensor, no_grad, segment_max, segment_sum

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle guard)
    from repro.gnn.batch import GraphBatch

__all__ = ["GCNClassifier"]


class GCNClassifier(Module):
    """Φ = {Φ_e, Φ_c}: GCN embedder + dense softmax classifier.

    Parameters
    ----------
    in_features:
        Node feature dimension d (12 for Table I features).
    hidden:
        GCN layer widths; the last entry is the embedding size f.
        The paper uses (1024, 512, 128); scaled-down defaults train in
        seconds on CPU while keeping the three-layer shape.
    num_classes:
        Number of ACFG families (12 in the paper).
    """

    def __init__(
        self,
        in_features: int = 12,
        hidden: tuple[int, ...] = (64, 48, 32),
        num_classes: int = 12,
        pooling: str = "max",
        rng: np.random.Generator | None = None,
    ):
        if not hidden:
            raise ValueError("need at least one GCN layer")
        if pooling not in {"max", "sum", "mean"}:
            raise ValueError(f"unknown pooling {pooling!r}")
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        widths = (in_features, *hidden)
        self.convs = [
            GCNConv(w_in, w_out, activation="relu", rng=rng)
            for w_in, w_out in zip(widths[:-1], widths[1:])
        ]
        self.classifier = Dense(hidden[-1], num_classes, activation="linear", rng=rng)
        if pooling == "sum":
            # Sum pooling feeds the classifier activations ~n_real times
            # larger than a single node's; shrink the initial weights so
            # the first epochs don't saturate the softmax.
            self.classifier.weight.data *= 0.1
        self.pooling = pooling
        self.in_features = in_features
        self.embedding_size = hidden[-1]
        self.num_classes = num_classes
        #: Content-keyed memo of normalized adjacencies: repeated
        #: ``predict``/``embed`` calls on the same graph, and batch
        #: packing across epochs, reuse Â instead of rebuilding it.
        self.a_hat_cache = AHatCache()

    # ------------------------------------------------------------------
    # Φ_e : node embeddings
    # ------------------------------------------------------------------
    def embed(
        self,
        adjacency: np.ndarray,
        features: np.ndarray,
        active_mask: np.ndarray | None = None,
        key: bytes | None = None,
    ) -> Tensor:
        """Node embeddings Z = Φ_e(A, X), shape ``[N, f]``.

        ``active_mask`` marks real (non-padding, non-pruned) nodes;
        inactive rows are forced to zero after every layer so padding
        cannot leak bias terms into the pooled representation.
        ``key`` optionally short-circuits the Â cache's content hash
        (see :meth:`repro.gnn.cache.AHatCache.get`).
        """
        n = adjacency.shape[0]
        if active_mask is None:
            active_mask = np.ones(n, dtype=bool)
        a_hat = Tensor(self.a_hat_cache.get(adjacency, active_mask, key=key))
        return self.embed_normalized(a_hat, features, active_mask)

    def embed_normalized(
        self,
        a_hat: Tensor,
        features: np.ndarray | Tensor,
        active_mask: np.ndarray,
    ) -> Tensor:
        """Φ_e given an already-normalized propagation matrix.

        ``a_hat`` may be a differentiable :class:`Tensor` — the mask-based
        baseline explainers (GNNExplainer, PGExplainer) optimize soft edge
        masks by backpropagating through this path into the mask while the
        GCN weights stay frozen.
        """
        n = int(a_hat.shape[0])
        mask = Tensor(np.asarray(active_mask, dtype=np.float64).reshape(n, 1))
        z = Tensor.ensure(features)
        for conv in self.convs:
            z = conv(a_hat, z) * mask
        return z

    # ------------------------------------------------------------------
    # Φ_c : classification from embeddings
    # ------------------------------------------------------------------
    def classify(self, z: Tensor) -> Tensor:
        """Class probabilities from node embeddings (all nodes pooled).

        Default pooling is per-dimension max: the graph is classified by
        its strongest activations, i.e. by the *evidence-carrying*
        blocks rather than by graph size.  That is what makes small
        well-chosen subgraphs retain the original prediction (the
        property the paper's Figure 2 rests on) while random subgraphs
        lose it.  ReLU embeddings are non-negative, so padded/pruned
        all-zero rows never win a maximum.
        """
        return self.logits(z).softmax(axis=-1)

    def logits(self, z: Tensor) -> Tensor:
        if self.pooling == "max":
            pooled = z.max(axis=0, keepdims=True)
        elif self.pooling == "sum":
            pooled = z.sum(axis=0, keepdims=True)
        else:  # mean over the padded size (constant divisor)
            pooled = z.sum(axis=0, keepdims=True) * (1.0 / z.shape[0])
        return self.classifier(pooled).reshape(-1)

    # ------------------------------------------------------------------
    # batched block-diagonal engine
    # ------------------------------------------------------------------
    def embed_batch(self, batch: "GraphBatch") -> Tensor:
        """Stacked node embeddings for a whole batch, ``[total_nodes, f]``.

        One sparse forward pass over the block-diagonal Â; row
        ``batch.rows_of(i)`` holds graph *i*'s embeddings, identical to
        what :meth:`embed` produces for that graph alone.  Each layer
        runs as a fused spmm+bias+ReLU+mask kernel
        (:func:`repro.nn.sparse.gcn_layer`), with intermediates in the
        batch's :class:`~repro.nn.backend.KernelWorkspace` when one is
        attached.
        """
        mask = batch.mask_column
        z = Tensor.ensure(batch.features)
        for index, conv in enumerate(self.convs):
            z = conv.sparse(
                batch.a_hat, z, mask=mask,
                workspace=batch.workspace, slot=f"conv{index}",
            )
        return z

    def logits_batch(self, z: Tensor, batch: "GraphBatch") -> Tensor:
        """Per-graph logits ``[B, C]`` from stacked embeddings.

        Pooling becomes a segment reduction over ``batch.segment_ids``;
        mean pooling keeps the per-graph path's divide-by-padded-size
        convention via ``batch.sizes``.
        """
        starts = batch.offsets[:-1]
        if self.pooling == "max":
            pooled = segment_max(
                z, batch.segment_ids, batch.num_graphs, starts=starts
            )
        elif self.pooling == "sum":
            pooled = segment_sum(
                z, batch.segment_ids, batch.num_graphs, starts=starts
            )
        else:  # mean over the padded size (constant per-graph divisor)
            pooled = segment_sum(
                z, batch.segment_ids, batch.num_graphs, starts=starts
            ) * (1.0 / batch.sizes.astype(np.float64).reshape(-1, 1))
        return self.classifier(pooled)

    def forward_batch(self, batch: "GraphBatch") -> tuple[Tensor, Tensor]:
        """(stacked Z, logits ``[B, C]``) for one packed batch."""
        z = self.embed_batch(batch)
        return z, self.logits_batch(z, batch)

    def predict_proba_batch(
        self, graphs: Sequence[ACFG], batch_size: int = 64
    ) -> np.ndarray:
        """Class probabilities ``[len(graphs), C]`` in a few batched passes."""
        from repro.gnn.batch import iter_batches

        rows = []
        with no_grad():
            for batch in iter_batches(
                graphs, batch_size, a_hat_cache=self.a_hat_cache
            ):
                _, logits = self.forward_batch(batch)
                rows.append(logits.softmax(axis=-1).numpy())
        return np.vstack(rows)

    def predict_batch(
        self, graphs: Sequence[ACFG], batch_size: int = 64
    ) -> np.ndarray:
        """Argmax predictions for many graphs via the batched engine."""
        return np.argmax(self.predict_proba_batch(graphs, batch_size), axis=1)

    # ------------------------------------------------------------------
    # conveniences over ACFG samples
    # ------------------------------------------------------------------
    def forward_acfg(self, graph: ACFG) -> tuple[Tensor, Tensor]:
        """(Z, probabilities) for one ACFG, masking padded nodes."""
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        key = graph.content_key() if hasattr(graph, "content_key") else None
        z = self.embed(graph.adjacency, graph.features, mask, key=key)
        return z, self.classify(z)

    def predict(self, graph: ACFG) -> int:
        with no_grad():
            _, probs = self.forward_acfg(graph)
        return int(np.argmax(probs.numpy()))

    def predict_proba(self, graph: ACFG) -> np.ndarray:
        with no_grad():
            _, probs = self.forward_acfg(graph)
        return probs.numpy().copy()

    def predict_subgraph(self, graph: ACFG, kept_nodes: np.ndarray) -> int:
        """Prediction when only ``kept_nodes`` survive.

        The subgraph keeps the [N, N] shape: removed nodes lose all
        edges (Algorithm 2's masking) and their features, i.e. they
        become indistinguishable from padding.
        """
        with no_grad():
            probs = self.subgraph_proba(graph, kept_nodes)
        return int(np.argmax(probs))

    def subgraph_proba(self, graph: ACFG, kept_nodes: np.ndarray) -> np.ndarray:
        kept_nodes = np.asarray(kept_nodes, dtype=int)
        adjacency = graph.subgraph_adjacency(kept_nodes)
        features = graph.masked_features(kept_nodes)
        mask = np.zeros(graph.n, dtype=bool)
        mask[kept_nodes] = True
        mask[graph.n_real :] = False
        with no_grad():
            z = self.embed(adjacency, features, mask)
            probs = self.classify(z)
        return probs.numpy().copy()
