"""Dominator trees and natural-loop detection over recovered CFGs.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm
("A Simple, Fast Dominance Algorithm"), which runs in near-linear time
on the reducible graphs the corpus generators emit and degrades
gracefully on irreducible ones.  Natural loops are derived from back
edges ``u -> h`` where ``h`` dominates ``u``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disasm.cfg import CFG

__all__ = ["DominatorTree", "NaturalLoop", "dominator_tree", "natural_loops"]


@dataclass(frozen=True)
class DominatorTree:
    """Immediate dominators for every block reachable from ``entry``.

    ``idom[entry] == entry``; unreachable blocks are absent from
    ``idom`` entirely.
    """

    entry: int
    idom: dict[int, int]

    @property
    def reachable(self) -> frozenset[int]:
        return frozenset(self.idom)

    def dominators(self, node: int) -> list[int]:
        """All dominators of ``node``, from the node itself up to entry."""
        if node not in self.idom:
            raise KeyError(f"block {node} is unreachable from entry {self.entry}")
        chain = [node]
        while chain[-1] != self.entry:
            chain.append(self.idom[chain[-1]])
        return chain

    def dominates(self, a: int, b: int) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexively)."""
        if b not in self.idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            if node == self.entry:
                return False
            node = self.idom[node]


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop: its header and every block in its body."""

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]

    def __contains__(self, block_index: int) -> bool:
        return block_index in self.body


def _successor_map(cfg: CFG) -> dict[int, list[int]]:
    """Deduplicated successors per block (parallel edges collapse)."""
    successors: dict[int, set[int]] = {b.index: set() for b in cfg.blocks}
    for source, target, _ in cfg.edges:
        successors[source].add(target)
    return {node: sorted(targets) for node, targets in successors.items()}


def _reverse_postorder(successors: dict[int, list[int]], entry: int) -> list[int]:
    """Iterative DFS post-order, reversed; only nodes reachable from entry."""
    seen: set[int] = set()
    order: list[int] = []
    stack: list[tuple[int, int]] = [(entry, 0)]
    seen.add(entry)
    while stack:
        node, child = stack[-1]
        targets = successors.get(node, [])
        if child < len(targets):
            stack[-1] = (node, child + 1)
            successor = targets[child]
            if successor not in seen:
                seen.add(successor)
                stack.append((successor, 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def dominator_tree(cfg: CFG, entry: int = 0) -> DominatorTree:
    """Compute immediate dominators for every block reachable from ``entry``."""
    if not cfg.blocks:
        return DominatorTree(entry=entry, idom={})
    if not any(block.index == entry for block in cfg.blocks):
        raise ValueError(f"entry block {entry} not in CFG")

    successors = _successor_map(cfg)
    order = _reverse_postorder(successors, entry)
    position = {node: i for i, node in enumerate(order)}
    predecessors: dict[int, list[int]] = {node: [] for node in order}
    for source, targets in successors.items():
        if source not in position:
            continue
        for target in targets:
            if target in position:
                predecessors[target].append(source)

    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            processed = [p for p in predecessors[node] if p in idom]
            new_idom = processed[0]
            for predecessor in processed[1:]:
                new_idom = intersect(predecessor, new_idom)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return DominatorTree(entry=entry, idom=idom)


def natural_loops(cfg: CFG, tree: DominatorTree | None = None) -> list[NaturalLoop]:
    """Natural loops, one per header, bodies merged across shared headers."""
    if not cfg.blocks:
        return []
    if tree is None:
        tree = dominator_tree(cfg)

    predecessors: dict[int, set[int]] = {b.index: set() for b in cfg.blocks}
    for source, target, _ in cfg.edges:
        predecessors[target].add(source)

    by_header: dict[int, tuple[set[int], list[tuple[int, int]]]] = {}
    for source, target, _ in cfg.edges:
        if source in tree.idom and tree.dominates(target, source):
            body, back_edges = by_header.setdefault(target, (set(), []))
            if (source, target) not in back_edges:
                back_edges.append((source, target))
            # Body = header + everything that reaches the latch without
            # passing through the header (classic reverse flood fill).
            body.add(target)
            worklist = [source]
            while worklist:
                node = worklist.pop()
                if node in body:
                    continue
                body.add(node)
                worklist.extend(predecessors[node])

    return [
        NaturalLoop(header, frozenset(body), tuple(sorted(back_edges)))
        for header, (body, back_edges) in sorted(by_header.items())
    ]
