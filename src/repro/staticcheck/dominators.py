"""Dominator trees, postdominators and loop structure over recovered CFGs.

Implements the Cooper–Harvey–Kennedy iterative dominator algorithm
("A Simple, Fast Dominance Algorithm"), which runs in near-linear time
on the reducible graphs the corpus generators emit and degrades
gracefully on irreducible ones.  Natural loops are derived from back
edges ``u -> h`` where ``h`` dominates ``u``.

Beyond the forward tree this module provides the pieces graph
*transformation* (``repro.reduce``) needs and graph *verification* only
tolerated:

* :func:`dominator_tree_from_successors` — the same algorithm over a
  plain successor map, so callers holding an adjacency structure (a
  reduced ACFG, a fuzzer-mutated graph) don't have to fabricate a
  :class:`~repro.disasm.cfg.CFG`.
* :func:`postdominator_tree` — postdominators computed against a
  *virtual exit* wired to every exit block.  Real malware CFGs are
  multi-exit (several ``ret`` blocks, ``hlt`` paths); assuming a unique
  exit silently misanalyses them, so multi-exit graphs are handled
  structurally and a graph with *no* exit at all raises the typed
  :class:`ExitlessGraphError` instead of returning garbage.
* :func:`retreating_edges` / :func:`irreducible_edges` — DFS-order edge
  classification.  A retreating edge whose target does not dominate its
  source makes the loop *irreducible*: natural-loop analysis cannot see
  it and chain collapse must not merge across it.

All entry-point validation raises typed :class:`AnalysisError`
subclasses (still ``ValueError`` for backward compatibility).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disasm.cfg import CFG

__all__ = [
    "AnalysisError",
    "DominatorTree",
    "EntryNotFoundError",
    "ExitlessGraphError",
    "NaturalLoop",
    "VIRTUAL_EXIT",
    "dominator_tree",
    "dominator_tree_from_successors",
    "irreducible_edges",
    "natural_loops",
    "postdominator_tree",
    "retreating_edges",
]

#: Synthetic node index used as the entry of the reversed graph when
#: computing postdominators over a multi-exit CFG.
VIRTUAL_EXIT: int = -1


class AnalysisError(ValueError):
    """A static analysis cannot run on this graph (typed, never silent)."""


class EntryNotFoundError(AnalysisError):
    """The requested entry block does not exist in the graph."""

    def __init__(self, entry: int, node_count: int):
        super().__init__(
            f"entry block {entry} not in the {node_count}-node graph"
        )
        self.entry = entry
        self.node_count = node_count


class ExitlessGraphError(AnalysisError):
    """The graph has no exit block (every block has successors).

    Postdominator analysis is undefined without an exit; returning a
    partial tree would silently misanalyse e.g. an infinite dispatch
    loop, so this is a typed error the caller must handle.
    """

    def __init__(self, name: str = "graph"):
        super().__init__(
            f"{name} has no exit block (every block has a successor); "
            "postdominators are undefined"
        )


@dataclass(frozen=True)
class DominatorTree:
    """Immediate dominators for every block reachable from ``entry``.

    ``idom[entry] == entry``; unreachable blocks are absent from
    ``idom`` entirely.  The same structure describes a *post*dominator
    tree, where ``entry`` is :data:`VIRTUAL_EXIT` and edges are
    reversed.
    """

    entry: int
    idom: dict[int, int]

    @property
    def reachable(self) -> frozenset[int]:
        return frozenset(self.idom)

    def dominators(self, node: int) -> list[int]:
        """All dominators of ``node``, from the node itself up to entry."""
        if node not in self.idom:
            raise KeyError(f"block {node} is unreachable from entry {self.entry}")
        chain = [node]
        while chain[-1] != self.entry:
            chain.append(self.idom[chain[-1]])
        return chain

    def dominates(self, a: int, b: int) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexively)."""
        if b not in self.idom:
            return False
        node = b
        while True:
            if node == a:
                return True
            if node == self.entry:
                return False
            node = self.idom[node]


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop: its header and every block in its body."""

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]

    def __contains__(self, block_index: int) -> bool:
        return block_index in self.body


def _successor_map(cfg: CFG) -> dict[int, list[int]]:
    """Deduplicated successors per block (parallel edges collapse)."""
    successors: dict[int, set[int]] = {b.index: set() for b in cfg.blocks}
    for source, target, _ in cfg.edges:
        successors[source].add(target)
    return {node: sorted(targets) for node, targets in successors.items()}


def _reverse_postorder(successors: dict[int, list[int]], entry: int) -> list[int]:
    """Iterative DFS post-order, reversed; only nodes reachable from entry."""
    seen: set[int] = set()
    order: list[int] = []
    stack: list[tuple[int, int]] = [(entry, 0)]
    seen.add(entry)
    while stack:
        node, child = stack[-1]
        targets = successors.get(node, [])
        if child < len(targets):
            stack[-1] = (node, child + 1)
            successor = targets[child]
            if successor not in seen:
                seen.add(successor)
                stack.append((successor, 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def dominator_tree_from_successors(
    successors: dict[int, list[int]], entry: int
) -> DominatorTree:
    """Cooper–Harvey–Kennedy dominators over a plain successor map.

    ``successors`` maps every node to its (deduplicated, deterministic)
    successor list; nodes without out-edges must still be present as
    keys.  Used directly by :mod:`repro.reduce`, which analyses reduced
    adjacency structures that have no :class:`~repro.disasm.cfg.CFG`.
    """
    if entry not in successors:
        raise EntryNotFoundError(entry, len(successors))
    order = _reverse_postorder(successors, entry)
    position = {node: i for i, node in enumerate(order)}
    predecessors: dict[int, list[int]] = {node: [] for node in order}
    for source, targets in successors.items():
        if source not in position:
            continue
        for target in targets:
            if target in position:
                predecessors[target].append(source)

    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            processed = [p for p in predecessors[node] if p in idom]
            new_idom = processed[0]
            for predecessor in processed[1:]:
                new_idom = intersect(predecessor, new_idom)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return DominatorTree(entry=entry, idom=idom)


def dominator_tree(cfg: CFG, entry: int = 0) -> DominatorTree:
    """Compute immediate dominators for every block reachable from ``entry``."""
    if not cfg.blocks:
        return DominatorTree(entry=entry, idom={})
    if not any(block.index == entry for block in cfg.blocks):
        raise EntryNotFoundError(entry, len(cfg.blocks))
    return dominator_tree_from_successors(_successor_map(cfg), entry)


def postdominator_tree(cfg: CFG) -> DominatorTree:
    """Postdominators of a (possibly multi-exit) CFG.

    Every block without successors is an exit.  A virtual exit node
    (:data:`VIRTUAL_EXIT`) is wired after all of them and the dominator
    algorithm runs on the reversed graph from there — the standard
    multi-exit construction, so a function with three ``ret`` blocks is
    analysed correctly rather than pretending one of them is "the"
    exit.  ``idom`` maps real blocks only; blocks whose immediate
    postdominator is the virtual exit map to :data:`VIRTUAL_EXIT`.

    Raises :class:`ExitlessGraphError` when no block is an exit (the
    reversed graph would be rootless and any result a silent lie).
    """
    if not cfg.blocks:
        return DominatorTree(entry=VIRTUAL_EXIT, idom={})
    successors = _successor_map(cfg)
    exits = sorted(node for node, targets in successors.items() if not targets)
    if not exits:
        raise ExitlessGraphError(cfg.name)
    reversed_successors: dict[int, list[int]] = {
        b.index: [] for b in cfg.blocks
    }
    reversed_successors[VIRTUAL_EXIT] = exits
    for source, targets in successors.items():
        for target in targets:
            reversed_successors[target].append(source)
    for node in reversed_successors:
        reversed_successors[node] = sorted(set(reversed_successors[node]))
    tree = dominator_tree_from_successors(reversed_successors, VIRTUAL_EXIT)
    idom = {node: parent for node, parent in tree.idom.items() if node != VIRTUAL_EXIT}
    return DominatorTree(entry=VIRTUAL_EXIT, idom=idom)


def retreating_edges(
    cfg: CFG, entry: int = 0
) -> list[tuple[int, int]]:
    """Edges ``u -> v`` where ``v`` appears no later than ``u`` in RPO.

    In a reducible graph these are exactly the back edges; an
    irreducible graph has retreating edges that are *not* back edges.
    Only edges between entry-reachable blocks are classified.
    """
    if not cfg.blocks:
        return []
    successors = _successor_map(cfg)
    if entry not in successors:
        raise EntryNotFoundError(entry, len(cfg.blocks))
    order = _reverse_postorder(successors, entry)
    position = {node: i for i, node in enumerate(order)}
    found: set[tuple[int, int]] = set()
    for source, targets in successors.items():
        if source not in position:
            continue
        for target in targets:
            if target in position and position[target] <= position[source]:
                found.add((source, target))
    return sorted(found)


def irreducible_edges(
    cfg: CFG, tree: DominatorTree | None = None, entry: int = 0
) -> list[tuple[int, int]]:
    """Retreating edges whose target does not dominate their source.

    Each one closes a loop with multiple entry points — a structure
    :func:`natural_loops` cannot represent and chain collapse must not
    merge across.  Empty for every reducible CFG.
    """
    if not cfg.blocks:
        return []
    if tree is None:
        tree = dominator_tree(cfg, entry)
    return [
        (source, target)
        for source, target in retreating_edges(cfg, entry)
        if not tree.dominates(target, source)
    ]


def natural_loops(cfg: CFG, tree: DominatorTree | None = None) -> list[NaturalLoop]:
    """Natural loops, one per header, bodies merged across shared headers."""
    if not cfg.blocks:
        return []
    if tree is None:
        tree = dominator_tree(cfg)

    predecessors: dict[int, set[int]] = {b.index: set() for b in cfg.blocks}
    for source, target, _ in cfg.edges:
        predecessors[target].add(source)

    by_header: dict[int, tuple[set[int], list[tuple[int, int]]]] = {}
    for source, target, _ in cfg.edges:
        if source in tree.idom and tree.dominates(target, source):
            body, back_edges = by_header.setdefault(target, (set(), []))
            if (source, target) not in back_edges:
                back_edges.append((source, target))
            # Body = header + everything that reaches the latch without
            # passing through the header (classic reverse flood fill).
            body.add(target)
            worklist = [source]
            while worklist:
                node = worklist.pop()
                if node in body:
                    continue
                body.add(node)
                worklist.extend(predecessors[node])

    return [
        NaturalLoop(header, frozenset(body), tuple(sorted(back_edges)))
        for header, (body, back_edges) in sorted(by_header.items())
    ]
