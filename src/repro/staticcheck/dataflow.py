"""Register-level dataflow analyses over recovered CFGs.

Provides the classic bit-vector analyses — reaching definitions
(forward) and liveness (backward) — over the synthetic ISA's
general-purpose registers, plus the two derived detectors the verifier
and the Table V detectors consume: unreachable blocks and dead stores.

Modeling choices (documented because they bound what "dead" means):

* Sub-registers alias their parent: ``al``/``ah``/``ax`` and ``eax``
  are one dataflow location (canonical name ``eax``).  A write to any
  alias is treated as defining the whole family, which over-approximates
  liveness slightly but never invents a dead store.
* ``xor r, r`` / ``sub r, r`` are the self-zeroing idioms: they define
  ``r`` without reading its previous value.
* ``call`` reads only ``esp`` (the corpus passes arguments on the
  stack) and defines nothing — register reads *inside* a local callee
  flow back to the call site through the CFG's call edges, so a value a
  helper consumes stays live at the caller.
* ``ret`` reads the return value (``eax``) and the callee-saved set
  (``ebx``/``esi``/``edi``/``ebp``/``esp``), so stores establishing a
  function's result or restoring saved registers are never "dead".
* Flags are not modeled; ``cmp``/``test`` read their operands only.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import NamedTuple

from repro.disasm.cfg import CFG
from repro.disasm.instruction import Instruction
from repro.disasm.isa import (
    CONDITIONAL_JUMPS,
    UNCONDITIONAL_JUMPS,
    is_register,
)

__all__ = [
    "DeadStore",
    "DefUse",
    "Definition",
    "Liveness",
    "ReachingDefinitions",
    "canonical_register",
    "dead_stores",
    "def_use",
    "liveness",
    "reaching_definitions",
    "unreachable_blocks",
]

#: Sub-register → canonical 32-bit family name.
_REGISTER_FAMILY: dict[str, str] = {}
for _family, _aliases in {
    "eax": ("eax", "ax", "al", "ah"),
    "ebx": ("ebx", "bx", "bl", "bh"),
    "ecx": ("ecx", "cx", "cl", "ch"),
    "edx": ("edx", "dx", "dl", "dh"),
    "esi": ("esi", "si"),
    "edi": ("edi", "di"),
    "ebp": ("ebp", "bp"),
    "esp": ("esp", "sp"),
}.items():
    for _alias in _aliases:
        _REGISTER_FAMILY[_alias] = _family

_CALLEE_SAVED: frozenset[str] = frozenset({"ebx", "esi", "edi", "ebp", "esp"})
_RETURN_USES: frozenset[str] = _CALLEE_SAVED | {"eax"}

_TWO_OP_ARITHMETIC: frozenset[str] = frozenset(
    {"add", "sub", "xor", "or", "and", "adc", "sbb",
     "shl", "shr", "sar", "sal", "rol", "ror"}
)
_ONE_OP_READ_WRITE: frozenset[str] = frozenset({"inc", "dec", "not", "neg"})
_MOV_LIKE: frozenset[str] = frozenset({"mov", "movzx", "movsx", "lea"})
_SELF_ZEROING: frozenset[str] = frozenset({"xor", "sub"})

_OPERAND_SPLIT_RE = re.compile(r"[\[\]+\-*,:\s]+")


def canonical_register(name: str) -> str | None:
    """Canonical family name for a register operand, else ``None``."""
    return _REGISTER_FAMILY.get(name.lower())


def _operand_registers(operand: str) -> frozenset[str]:
    """Canonical registers appearing anywhere in one operand string."""
    found: set[str] = set()
    for token in _OPERAND_SPLIT_RE.split(operand):
        family = _REGISTER_FAMILY.get(token.lower())
        if family:
            found.add(family)
    return frozenset(found)


class DefUse(NamedTuple):
    """Registers an instruction reads (``uses``) and writes (``defs``)."""

    uses: frozenset[str]
    defs: frozenset[str]


_EMPTY: frozenset[str] = frozenset()


def def_use(instruction: Instruction) -> DefUse:
    """The register-level def/use sets of one instruction."""
    mnemonic = instruction.mnemonic
    operands = instruction.operands

    if mnemonic in _MOV_LIKE:
        uses: set[str] = set()
        defs: set[str] = set()
        if operands:
            destination = operands[0]
            if is_register(destination):
                defs.update(_operand_registers(destination))
            else:
                uses.update(_operand_registers(destination))
            for source in operands[1:]:
                uses.update(_operand_registers(source))
        return DefUse(frozenset(uses), frozenset(defs))

    if mnemonic == "xchg":
        touched: set[str] = set()
        for operand in operands:
            touched.update(_operand_registers(operand))
        registers = frozenset(
            r for op in operands if is_register(op) for r in _operand_registers(op)
        )
        return DefUse(frozenset(touched), registers)

    if mnemonic == "push":
        uses = {"esp"}
        for operand in operands:
            uses.update(_operand_registers(operand))
        return DefUse(frozenset(uses), frozenset({"esp"}))

    if mnemonic == "pop":
        defs = {"esp"}
        if operands and is_register(operands[0]):
            defs.update(_operand_registers(operands[0]))
        return DefUse(frozenset({"esp"}), frozenset(defs))

    if mnemonic in _TWO_OP_ARITHMETIC and len(operands) == 2:
        destination, source = operands
        source_registers = _operand_registers(source)
        if is_register(destination):
            defs = _operand_registers(destination)
            self_zeroing = (
                mnemonic in _SELF_ZEROING
                and destination.lower() == source.lower()
            )
            if self_zeroing:
                return DefUse(_EMPTY, defs)
            return DefUse(defs | source_registers, defs)
        # Memory destination: the address registers and source are read.
        return DefUse(_operand_registers(destination) | source_registers, _EMPTY)

    if mnemonic in _ONE_OP_READ_WRITE and operands:
        operand = operands[0]
        if is_register(operand):
            registers = _operand_registers(operand)
            return DefUse(registers, registers)
        return DefUse(_operand_registers(operand), _EMPTY)

    if mnemonic in {"mul", "imul", "div", "idiv"}:
        if mnemonic == "imul" and len(operands) >= 2:
            defs = _operand_registers(operands[0]) if is_register(operands[0]) else _EMPTY
            uses = set(defs)
            for operand in operands[1:]:
                uses.update(_operand_registers(operand))
            return DefUse(frozenset(uses), frozenset(defs))
        uses = {"eax"}
        if mnemonic in {"div", "idiv"}:
            uses.add("edx")
        for operand in operands:
            uses.update(_operand_registers(operand))
        return DefUse(frozenset(uses), frozenset({"eax", "edx"}))

    if mnemonic in {"cmp", "test"}:
        uses = set()
        for operand in operands:
            uses.update(_operand_registers(operand))
        return DefUse(frozenset(uses), _EMPTY)

    if mnemonic in {"call", "int"}:
        return DefUse(frozenset({"esp"}), _EMPTY)

    if mnemonic in {"ret", "retn", "iret", "hlt"}:
        return DefUse(_RETURN_USES, _EMPTY)

    if mnemonic in {"loop", "loopne"}:
        return DefUse(frozenset({"ecx"}), frozenset({"ecx"}))

    if mnemonic in CONDITIONAL_JUMPS or mnemonic in UNCONDITIONAL_JUMPS:
        if instruction.target is not None:  # direct jump to a label
            return DefUse(_EMPTY, _EMPTY)
        uses = set()
        for operand in operands:  # register-indirect target
            uses.update(_operand_registers(operand))
        return DefUse(frozenset(uses), _EMPTY)

    if mnemonic == "cdq":
        return DefUse(frozenset({"eax"}), frozenset({"edx"}))

    if mnemonic == "leave":
        return DefUse(frozenset({"ebp"}), frozenset({"esp", "ebp"}))

    # nop, data declarations, flag twiddles (std/cld/sti/cli), ...
    return DefUse(_EMPTY, _EMPTY)


# ----------------------------------------------------------------------
# CFG-level helpers
# ----------------------------------------------------------------------
def _edge_maps(cfg: CFG) -> tuple[dict[int, set[int]], dict[int, set[int]]]:
    successors: dict[int, set[int]] = {b.index: set() for b in cfg.blocks}
    predecessors: dict[int, set[int]] = {b.index: set() for b in cfg.blocks}
    for source, target, _ in cfg.edges:
        successors[source].add(target)
        predecessors[target].add(source)
    return successors, predecessors


def unreachable_blocks(cfg: CFG, entry: int = 0) -> frozenset[int]:
    """Blocks with no path from ``entry`` along any edge kind."""
    if not cfg.blocks:
        return frozenset()
    successors, _ = _edge_maps(cfg)
    seen = {entry}
    worklist = [entry]
    while worklist:
        node = worklist.pop()
        for successor in successors.get(node, ()):
            if successor not in seen:
                seen.add(successor)
                worklist.append(successor)
    return frozenset(b.index for b in cfg.blocks) - seen


# ----------------------------------------------------------------------
# liveness (backward may-analysis)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Liveness:
    """Per-block live-in/live-out register sets."""

    live_in: tuple[frozenset[str], ...]
    live_out: tuple[frozenset[str], ...]


def _block_use_def(block_instructions: tuple[Instruction, ...]) -> DefUse:
    """Upward-exposed uses and defs of one straight-line block."""
    uses: set[str] = set()
    defs: set[str] = set()
    for instruction in block_instructions:
        instruction_uses, instruction_defs = def_use(instruction)
        uses.update(instruction_uses - defs)
        defs.update(instruction_defs)
    return DefUse(frozenset(uses), frozenset(defs))


def liveness(cfg: CFG) -> Liveness:
    """Backward worklist liveness over all CFG edges.

    Call edges participate, so a register a local callee reads is live
    at every call site — the conservative direction for dead-store use.
    """
    n = len(cfg.blocks)
    successors, predecessors = _edge_maps(cfg)
    use_def = [_block_use_def(block.instructions) for block in cfg.blocks]
    live_in: list[frozenset[str]] = [frozenset()] * n
    live_out: list[frozenset[str]] = [frozenset()] * n

    worklist = list(range(n))
    while worklist:
        node = worklist.pop()
        out: set[str] = set()
        for successor in successors[node]:
            out.update(live_in[successor])
        new_out = frozenset(out)
        new_in = use_def[node].uses | (new_out - use_def[node].defs)
        if new_out != live_out[node] or new_in != live_in[node]:
            live_out[node] = new_out
            live_in[node] = new_in
            worklist.extend(predecessors[node])
    return Liveness(tuple(live_in), tuple(live_out))


# ----------------------------------------------------------------------
# reaching definitions (forward may-analysis)
# ----------------------------------------------------------------------
class Definition(NamedTuple):
    """One register definition site: ``(block, offset, register)``."""

    block: int
    offset: int
    register: str


@dataclass(frozen=True)
class ReachingDefinitions:
    """Per-block reaching-definition sets (may-reach, over all edges)."""

    reach_in: tuple[frozenset[Definition], ...]
    reach_out: tuple[frozenset[Definition], ...]

    def definitions_of(self, block_index: int, register: str) -> frozenset[Definition]:
        """Definitions of ``register`` that may reach the top of a block."""
        return frozenset(
            d for d in self.reach_in[block_index] if d.register == register
        )


def reaching_definitions(cfg: CFG) -> ReachingDefinitions:
    """Forward worklist reaching-definitions over all CFG edges."""
    n = len(cfg.blocks)
    successors, predecessors = _edge_maps(cfg)

    gen: list[dict[str, Definition]] = []
    for block in cfg.blocks:
        last_def: dict[str, Definition] = {}
        for offset, instruction in enumerate(block.instructions):
            for register in def_use(instruction).defs:
                last_def[register] = Definition(block.index, offset, register)
        gen.append(last_def)

    reach_in: list[frozenset[Definition]] = [frozenset()] * n
    reach_out: list[frozenset[Definition]] = [frozenset()] * n
    worklist = list(range(n))
    while worklist:
        node = worklist.pop(0)
        incoming: set[Definition] = set()
        for predecessor in predecessors[node]:
            incoming.update(reach_out[predecessor])
        new_in = frozenset(incoming)
        killed_registers = set(gen[node])
        surviving = {d for d in new_in if d.register not in killed_registers}
        new_out = frozenset(surviving | set(gen[node].values()))
        if new_in != reach_in[node] or new_out != reach_out[node]:
            reach_in[node] = new_in
            reach_out[node] = new_out
            worklist.extend(successors[node])
    return ReachingDefinitions(tuple(reach_in), tuple(reach_out))


# ----------------------------------------------------------------------
# dead stores
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeadStore:
    """A register write whose value is never read on any path."""

    block_index: int
    offset: int
    register: str
    instruction: Instruction

    def __str__(self) -> str:
        return (
            f"block {self.block_index}[{self.offset}]: "
            f"{self.instruction} (dead write to {self.register})"
        )


#: Mnemonics whose only effect is their single register destination —
#: the ones a dead destination makes a true no-op.  Stack/implicit-pair
#: writers (push/pop/xchg/mul/...) always have another effect.
_PURE_STORES: frozenset[str] = (
    _MOV_LIKE | _TWO_OP_ARITHMETIC | _ONE_OP_READ_WRITE
)


def dead_stores(cfg: CFG, live: Liveness | None = None) -> list[DeadStore]:
    """Pure register stores whose destination is dead afterwards.

    Walks each block backward from its live-out set, so intra-block
    redefinitions (``xor eax, ecx`` followed by ``mov eax, ebx``) are
    caught as well as cross-block ones.  ``esp`` writes are never
    reported (stack adjustment is an effect in itself).
    """
    if live is None:
        live = liveness(cfg)
    findings: list[DeadStore] = []
    for block in cfg.blocks:
        current: set[str] = set(live.live_out[block.index])
        for offset in range(len(block.instructions) - 1, -1, -1):
            instruction = block.instructions[offset]
            uses, defs = def_use(instruction)
            if (
                instruction.mnemonic in _PURE_STORES
                and len(defs) == 1
                and instruction.writes_first_operand_register
            ):
                (register,) = defs
                if register not in current and register != "esp":
                    findings.append(
                        DeadStore(block.index, offset, register, instruction)
                    )
            current -= defs
            current |= uses
    findings.sort(key=lambda d: (d.block_index, d.offset))
    return findings
