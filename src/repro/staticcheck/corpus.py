"""Corpus-wide verification: the strict/warn gate the pipeline calls."""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import dataclass, field

from repro.malgen.corpus import LabeledSample
from repro.staticcheck.verifier import Finding, FindingKind, Severity, verify_sample

__all__ = [
    "CorpusVerification",
    "CorpusVerificationError",
    "SampleVerification",
    "verify_corpus",
]


@dataclass(frozen=True)
class SampleVerification:
    """Findings for one corpus sample."""

    name: str
    family: str
    findings: tuple[Finding, ...]

    @property
    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity >= Severity.ERROR)


@dataclass
class CorpusVerification:
    """Aggregated verification report over a whole corpus."""

    samples: list[SampleVerification] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        return [f for sample in self.samples for f in sample.findings]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity >= Severity.ERROR]

    @property
    def ok(self) -> bool:
        """Whether the corpus is free of ERROR-severity findings."""
        return not self.errors

    def counts_by_kind(self) -> dict[FindingKind, int]:
        return dict(Counter(f.kind for f in self.findings))

    def summary(self) -> str:
        """A short human-readable report."""
        lines = [
            f"verified {len(self.samples)} samples: "
            f"{len(self.errors)} errors, "
            f"{sum(1 for f in self.findings if f.severity == Severity.WARNING)} "
            f"warnings, "
            f"{sum(1 for f in self.findings if f.severity == Severity.INFO)} infos"
        ]
        for kind, count in sorted(
            self.counts_by_kind().items(), key=lambda item: item[0].value
        ):
            lines.append(f"  {kind.value:24s} {count}")
        for sample in self.samples:
            for finding in sample.errors:
                lines.append(f"  {sample.name} ({sample.family}): {finding}")
        return "\n".join(lines)


class CorpusVerificationError(RuntimeError):
    """Raised by strict-mode verification when any invariant fails."""

    def __init__(self, report: CorpusVerification):
        super().__init__(
            f"corpus verification failed with {len(report.errors)} error(s):\n"
            + report.summary()
        )
        self.report = report


def verify_corpus(
    corpus: list[LabeledSample],
    mode: str = "strict",
    *,
    dataflow: bool = True,
) -> CorpusVerification:
    """Verify every sample of a corpus against the CFG/ACFG invariants.

    ``mode="strict"`` raises :class:`CorpusVerificationError` on any
    ERROR-severity finding; ``mode="warn"`` emits a ``UserWarning``
    instead.  Both return the full report (warnings/infos included).
    """
    if mode not in {"strict", "warn"}:
        raise ValueError(f"mode must be 'strict' or 'warn', got {mode!r}")
    report = CorpusVerification()
    for sample in corpus:
        report.samples.append(
            SampleVerification(
                name=sample.program.name,
                family=sample.family,
                findings=tuple(verify_sample(sample, dataflow=dataflow)),
            )
        )
    if not report.ok:
        if mode == "strict":
            raise CorpusVerificationError(report)
        warnings.warn(
            f"corpus verification found {len(report.errors)} invariant "
            "violation(s); see report.summary()",
            stacklevel=2,
        )
    return report
