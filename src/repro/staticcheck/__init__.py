"""Static-analysis layer: dataflow analyses + CFG/ACFG invariant verifier.

Three capabilities on top of the ``repro.disasm`` CFG model:

* **Control structure** — dominator trees and natural-loop detection
  (:mod:`repro.staticcheck.dominators`).
* **Register dataflow** — reaching definitions and liveness, with
  unreachable-block and dead-store detection
  (:mod:`repro.staticcheck.dataflow`).
* **Invariant verification** — a lint pass with typed findings and
  severities over CFGs and derived ACFGs, plus a corpus-wide
  strict/warn gate (:mod:`repro.staticcheck.verifier`,
  :mod:`repro.staticcheck.corpus`).

The analyses also feed the evaluation: ``repro.analysis.micro`` uses
liveness to suppress dead-store XOR false positives, and
``repro.eval.agreement`` measures explainer/static-analysis agreement.
"""

from repro.staticcheck.corpus import (
    CorpusVerification,
    CorpusVerificationError,
    SampleVerification,
    verify_corpus,
)
from repro.staticcheck.dataflow import (
    DeadStore,
    DefUse,
    Definition,
    Liveness,
    ReachingDefinitions,
    canonical_register,
    dead_stores,
    def_use,
    liveness,
    reaching_definitions,
    unreachable_blocks,
)
from repro.staticcheck.dominators import (
    VIRTUAL_EXIT,
    AnalysisError,
    DominatorTree,
    EntryNotFoundError,
    ExitlessGraphError,
    NaturalLoop,
    dominator_tree,
    dominator_tree_from_successors,
    irreducible_edges,
    natural_loops,
    postdominator_tree,
    retreating_edges,
)
from repro.staticcheck.verifier import (
    Finding,
    FindingKind,
    Severity,
    verify_acfg,
    verify_cfg,
    verify_sample,
)

__all__ = [
    "AnalysisError",
    "CorpusVerification",
    "CorpusVerificationError",
    "DeadStore",
    "DefUse",
    "Definition",
    "DominatorTree",
    "EntryNotFoundError",
    "ExitlessGraphError",
    "Finding",
    "FindingKind",
    "Liveness",
    "NaturalLoop",
    "ReachingDefinitions",
    "SampleVerification",
    "Severity",
    "VIRTUAL_EXIT",
    "canonical_register",
    "dead_stores",
    "def_use",
    "dominator_tree",
    "dominator_tree_from_successors",
    "irreducible_edges",
    "liveness",
    "natural_loops",
    "postdominator_tree",
    "reaching_definitions",
    "retreating_edges",
    "unreachable_blocks",
    "verify_acfg",
    "verify_cfg",
    "verify_corpus",
    "verify_sample",
]
