"""CFG/ACFG invariant verifier: a lint pass with typed findings.

Every number downstream of CFG recovery — Figure 2, Tables III–V —
silently trusts a handful of structural invariants: blocks partition
the instruction list, leaders are exactly where the algorithm says,
edges carry the paper's 0/1/2 weights, terminators match their
out-edge kinds, and each block's 12-dim Table I feature vector agrees
with its instructions.  This module checks all of them and reports
violations as :class:`Finding` objects with severities, so a corpus
gate (:func:`repro.staticcheck.verify_corpus`) can fail fast in strict
mode while analysis-grade signals (unreachable blocks, dead stores)
ride along as warnings/infos.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.acfg.features import FEATURE_NAMES, cfg_feature_matrix
from repro.acfg.graph import ACFG, from_sample
from repro.disasm.cfg import CFG, EdgeKind, find_leaders
from repro.disasm.program import Program
from repro.malgen.corpus import LabeledSample
from repro.staticcheck.dataflow import dead_stores, unreachable_blocks
from repro.staticcheck.dominators import irreducible_edges

__all__ = [
    "Finding",
    "FindingKind",
    "Severity",
    "verify_acfg",
    "verify_cfg",
    "verify_sample",
]


class Severity(enum.IntEnum):
    """How bad a finding is; strict gates fail on ``ERROR`` only."""

    INFO = 10
    WARNING = 20
    ERROR = 30


class FindingKind(enum.Enum):
    """Typed finding categories, one per verified invariant."""

    EMPTY_BLOCK = "empty_block"
    BLOCK_INDEX_MISMATCH = "block_index_mismatch"
    BLOCK_PARTITION = "block_partition"
    LEADER_MISMATCH = "leader_mismatch"
    EDGE_ENDPOINT = "edge_endpoint"
    TERMINATOR_EDGE = "terminator_edge"
    FALLTHROUGH_TARGET = "fallthrough_target"
    EDGE_WEIGHT = "edge_weight"
    ADJACENCY_MISMATCH = "adjacency_mismatch"
    NODE_COUNT_MISMATCH = "node_count_mismatch"
    FEATURE_MISMATCH = "feature_mismatch"
    PADDING_NONZERO = "padding_nonzero"
    UNREACHABLE_BLOCK = "unreachable_block"
    DEAD_STORE = "dead_store"
    IRREDUCIBLE_LOOP = "irreducible_loop"


#: Default severity per kind: structural invariants are errors; the
#: dataflow-derived signals are analysis results, not defects (dead
#: code is *expected* in malware), so they never fail a strict gate.
_SEVERITIES: dict[FindingKind, Severity] = {
    FindingKind.UNREACHABLE_BLOCK: Severity.WARNING,
    FindingKind.DEAD_STORE: Severity.INFO,
    FindingKind.IRREDUCIBLE_LOOP: Severity.WARNING,
}


@dataclass(frozen=True)
class Finding:
    """One verifier result: what invariant, where, and why."""

    kind: FindingKind
    severity: Severity
    message: str
    block_index: int | None = None

    def __str__(self) -> str:
        where = f" block {self.block_index}" if self.block_index is not None else ""
        return f"[{self.severity.name}] {self.kind.value}{where}: {self.message}"


def _finding(
    kind: FindingKind, message: str, block_index: int | None = None
) -> Finding:
    return Finding(
        kind=kind,
        severity=_SEVERITIES.get(kind, Severity.ERROR),
        message=message,
        block_index=block_index,
    )


# ----------------------------------------------------------------------
# CFG structure
# ----------------------------------------------------------------------
def _check_partition(cfg: CFG, program: Program | None) -> list[Finding]:
    findings: list[Finding] = []
    for position, block in enumerate(cfg.blocks):
        if block.index != position:
            findings.append(
                _finding(
                    FindingKind.BLOCK_INDEX_MISMATCH,
                    f"block at position {position} carries index {block.index}",
                    block.index,
                )
            )
        if not block.instructions:
            findings.append(
                _finding(FindingKind.EMPTY_BLOCK, "block has no instructions", block.index)
            )

    expected_start = 0
    for block in cfg.blocks:
        if block.start != expected_start:
            findings.append(
                _finding(
                    FindingKind.BLOCK_PARTITION,
                    f"block starts at instruction {block.start}, expected "
                    f"{expected_start} (blocks must tile the program)",
                    block.index,
                )
            )
        expected_start = block.start + len(block.instructions)

    if program is not None:
        if expected_start != len(program):
            findings.append(
                _finding(
                    FindingKind.BLOCK_PARTITION,
                    f"blocks cover {expected_start} instructions, program has "
                    f"{len(program)}",
                )
            )
        for block in cfg.blocks:
            stop = block.start + len(block.instructions)
            if stop > len(program):
                continue  # already reported as a partition error
            if tuple(program.instructions[block.start : stop]) != block.instructions:
                findings.append(
                    _finding(
                        FindingKind.BLOCK_PARTITION,
                        "block instructions differ from the program slice "
                        f"[{block.start}:{stop}]",
                        block.index,
                    )
                )
    return findings


def _check_leaders(cfg: CFG, program: Program) -> list[Finding]:
    expected = set(find_leaders(program)) if program.instructions else set()
    actual = {block.start for block in cfg.blocks}
    findings: list[Finding] = []
    for start in sorted(expected - actual):
        findings.append(
            _finding(
                FindingKind.LEADER_MISMATCH,
                f"instruction {start} is a leader but starts no block",
            )
        )
    for start in sorted(actual - expected):
        findings.append(
            _finding(
                FindingKind.LEADER_MISMATCH,
                f"block starts at instruction {start}, which is not a leader",
            )
        )
    return findings


def _check_edges(cfg: CFG) -> list[Finding]:
    findings: list[Finding] = []
    n = len(cfg.blocks)
    start_of = {block.start: block.index for block in cfg.blocks}

    for source, target, kind in cfg.edges:
        if not (0 <= source < n and 0 <= target < n):
            findings.append(
                _finding(
                    FindingKind.EDGE_ENDPOINT,
                    f"edge ({source} -> {target}, {kind.value}) leaves the "
                    f"{n}-block graph",
                )
            )
            continue
        if kind is EdgeKind.FALLTHROUGH:
            source_block = cfg.blocks[source]
            next_start = source_block.start + len(source_block.instructions)
            if start_of.get(next_start) != target:
                findings.append(
                    _finding(
                        FindingKind.FALLTHROUGH_TARGET,
                        f"fallthrough from block {source} reaches block {target}, "
                        "not the next block in layout",
                        source,
                    )
                )

    out_kinds: dict[int, list[EdgeKind]] = {b.index: [] for b in cfg.blocks}
    for source, target, kind in cfg.edges:
        if 0 <= source < n:
            out_kinds[source].append(kind)

    for block in cfg.blocks:
        if not block.instructions:
            continue
        terminator = block.terminator
        kinds = out_kinds[block.index]
        counts = {k: kinds.count(k) for k in EdgeKind}

        def complain(expected: str) -> None:
            actual = ", ".join(k.value for k in kinds) or "none"
            findings.append(
                _finding(
                    FindingKind.TERMINATOR_EDGE,
                    f"terminator '{terminator}' expects {expected}; "
                    f"out-edges are [{actual}]",
                    block.index,
                )
            )

        if terminator.is_return:
            if kinds:
                complain("no out-edges")
        elif terminator.is_unconditional_jump:
            if counts[EdgeKind.JUMP] != 1 or len(kinds) != 1:
                complain("exactly one jump edge")
        elif terminator.is_conditional_jump:
            if counts[EdgeKind.JUMP] != 1 or counts[EdgeKind.CALL] != 0:
                complain("one jump edge plus an optional fallthrough")
            elif counts[EdgeKind.FALLTHROUGH] > 1:
                complain("at most one fallthrough edge")
        elif terminator.is_call and terminator.target is not None:
            if counts[EdgeKind.CALL] != 1 or counts[EdgeKind.JUMP] != 0:
                complain("one call edge plus an optional fallthrough")
            elif counts[EdgeKind.FALLTHROUGH] > 1:
                complain("at most one fallthrough edge")
        else:
            if counts[EdgeKind.JUMP] or counts[EdgeKind.CALL]:
                complain("at most one fallthrough edge")
            elif counts[EdgeKind.FALLTHROUGH] > 1:
                complain("at most one fallthrough edge")
    return findings


def _check_dataflow(cfg: CFG) -> list[Finding]:
    findings: list[Finding] = []
    for index in sorted(unreachable_blocks(cfg)):
        findings.append(
            _finding(
                FindingKind.UNREACHABLE_BLOCK,
                "no path from the entry block reaches this block",
                index,
            )
        )
    for store in dead_stores(cfg):
        findings.append(
            _finding(FindingKind.DEAD_STORE, str(store), store.block_index)
        )
    if any(block.index == 0 for block in cfg.blocks):
        for source, target in irreducible_edges(cfg):
            findings.append(
                _finding(
                    FindingKind.IRREDUCIBLE_LOOP,
                    f"retreating edge {source} -> {target} closes a "
                    "multiple-entry loop (target does not dominate source); "
                    "natural-loop analysis cannot see this loop and chain "
                    "collapse must not merge across it",
                    source,
                )
            )
    return findings


def verify_cfg(
    cfg: CFG, program: Program | None = None, *, dataflow: bool = True
) -> list[Finding]:
    """Check every structural CFG invariant; optionally add dataflow signals.

    With ``program`` the partition and leader checks compare against the
    source instruction list; without it only intra-CFG consistency runs.
    """
    findings = _check_partition(cfg, program)
    if program is not None and cfg.blocks:
        findings.extend(_check_leaders(cfg, program))
    findings.extend(_check_edges(cfg))
    if dataflow and cfg.blocks:
        findings.extend(_check_dataflow(cfg))
    return findings


# ----------------------------------------------------------------------
# ACFG consistency
# ----------------------------------------------------------------------
def verify_acfg(
    acfg: ACFG,
    cfg: CFG,
    program: Program | None = None,
    *,
    dataflow: bool = True,
) -> list[Finding]:
    """Verify an ACFG against the CFG it claims to represent.

    Expects *raw* (unscaled) features — run this before
    :class:`repro.acfg.FeatureScaler`, as the corpus gate does.
    """
    findings = verify_cfg(cfg, program, dataflow=dataflow)

    n_real = acfg.n_real
    if n_real != cfg.node_count:
        findings.append(
            _finding(
                FindingKind.NODE_COUNT_MISMATCH,
                f"ACFG says {n_real} real nodes, CFG has {cfg.node_count}",
            )
        )
        return findings  # block-aligned checks below would misreport

    allowed = np.isin(acfg.adjacency, (0.0, 1.0, 2.0))
    if not allowed.all():
        bad = np.argwhere(~allowed)[:3]
        findings.append(
            _finding(
                FindingKind.EDGE_WEIGHT,
                "adjacency contains values outside {0, 1, 2} at "
                + ", ".join(f"({i}, {j})" for i, j in bad),
            )
        )

    expected_adjacency = cfg.adjacency_matrix().astype(np.float64)
    actual = acfg.adjacency[:n_real, :n_real]
    if not np.array_equal(actual, expected_adjacency):
        for i, j in np.argwhere(actual != expected_adjacency):
            expected_weight = expected_adjacency[i, j]
            got = actual[i, j]
            kind = (
                FindingKind.EDGE_WEIGHT
                if expected_weight > 0 and got > 0
                else FindingKind.ADJACENCY_MISMATCH
            )
            findings.append(
                _finding(
                    kind,
                    f"A[{i}, {j}] = {got:g}, CFG edges say {expected_weight:g}",
                    int(i),
                )
            )

    if acfg.n > n_real:
        pad_adjacency = (
            acfg.adjacency[n_real:, :].any() or acfg.adjacency[:, n_real:].any()
        )
        if pad_adjacency:
            findings.append(
                _finding(
                    FindingKind.PADDING_NONZERO,
                    "padding rows/columns of the adjacency are not all zero",
                )
            )
        if acfg.features[n_real:].any():
            findings.append(
                _finding(
                    FindingKind.PADDING_NONZERO,
                    "padding rows of the feature matrix are not all zero",
                )
            )

    expected_features = cfg_feature_matrix(cfg)
    actual_features = acfg.features[:n_real]
    if actual_features.shape != expected_features.shape:
        findings.append(
            _finding(
                FindingKind.FEATURE_MISMATCH,
                f"feature matrix is {actual_features.shape}, expected "
                f"{expected_features.shape}",
            )
        )
    elif n_real and not np.allclose(actual_features, expected_features):
        rows = np.where(~np.all(np.isclose(actual_features, expected_features), axis=1))[0]
        for row in rows:
            columns = np.where(
                ~np.isclose(actual_features[row], expected_features[row])
            )[0]
            names = ", ".join(
                f"{FEATURE_NAMES[c]}={actual_features[row, c]:g} "
                f"(expected {expected_features[row, c]:g})"
                for c in columns[:3]
            )
            findings.append(
                _finding(
                    FindingKind.FEATURE_MISMATCH,
                    f"stale feature vector: {names}",
                    int(row),
                )
            )
    return findings


def verify_sample(sample: LabeledSample, *, dataflow: bool = True) -> list[Finding]:
    """Verify one corpus sample: program ↔ CFG ↔ freshly derived ACFG."""
    return verify_acfg(
        from_sample(sample), sample.cfg, sample.program, dataflow=dataflow
    )
