"""One-shot repository health check: lint, tests, corpus invariants.

Run from the repository root::

    PYTHONPATH=src python -m repro.tools.check

or, after an editable install, simply ``repro-check``.  Three gates run
in order and the exit code is non-zero if any of them fails:

1. ``ruff check src tests`` — style and import-order lint (skipped
   with a notice when ruff is not installed; it is an optional dev
   dependency and the other gates do not need it).
2. The tier-1 pytest suite.
3. ``repro.staticcheck.verify_corpus`` in strict mode over a freshly
   generated corpus — the same CFG/ACFG invariant gate the evaluation
   pipeline runs.
4. A batching smoke test: the block-diagonal batched engine must match
   the per-graph dense path to 1e-8 (logits and embeddings) on a tiny
   corpus — the core equivalence the batched pipeline rests on.
5. With ``--profile``, an observability smoke test: a tiny traced
   pipeline run must emit a well-formed ``RUN_MANIFEST.json`` whose
   span tree covers every stage with nonzero timings.
6. With ``--resume``, a crash-resume smoke test: a tiny pipeline is
   interrupted right after GNN training, then resumed against the same
   run directory — the resumed run must restore (not retrain) every
   completed stage, leaving the persisted GNN checkpoint bytes
   untouched.
7. With ``--lint``, the AST determinism lint (:mod:`repro.tools.lint`)
   over ``src/`` — unsorted set/dict-values iteration in
   ordering-sensitive contexts, unseeded randomness, and wall-clock
   seeds all fail the gate.
8. With ``--reduce``, a static-reduction smoke test: a tiny corpus is
   reduced with every pass enabled and the core invariants are checked
   directly — nodes never increase, merged features stay finite,
   importance mass is conserved through the lift map, and the default
   config is idempotent.
9. With ``--serve``, a serving smoke test: a tiny trained pipeline is
   wrapped in the :mod:`repro.serve` daemon (in process), one cold
   request and one repeat are served, and the repeat must be a cache
   hit bit-identical to the cold response.
10. With ``--chaos``, a resilience smoke test: the daemon is driven
    under a fault plan with nonzero probability at every stage — every
    submission must come back typed (full or degraded, never a raw
    exception), the circuit breaker must trip and recover, and with no
    fault plan the daemon must be bit-identical to a direct
    ``InferenceEngine.submit``.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

__all__ = ["main"]

_SKIPPED = "skipped"


def _repo_root() -> Path:
    """The directory holding pyproject.toml, found from this file."""
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


def _run_ruff(root: Path) -> bool | str:
    if importlib.util.find_spec("ruff") is None:
        print("[check] ruff: not installed, skipping lint gate")
        return _SKIPPED
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests"],
        cwd=root,
    )
    return result.returncode == 0


def _run_pytest(root: Path) -> bool:
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=root,
        env={**os.environ, "PYTHONPATH": str(root / "src")},
    )
    return result.returncode == 0


def _run_corpus_verification(samples: int, seed: int) -> bool:
    from repro.malgen import generate_corpus
    from repro.staticcheck import CorpusVerificationError, verify_corpus

    corpus = generate_corpus(samples, seed=seed)
    try:
        report = verify_corpus(corpus, mode="strict")
    except CorpusVerificationError as error:
        print(error.report.summary())
        return False
    print(report.summary())
    return True


def _run_batching_smoke(samples: int, seed: int, tolerance: float = 1e-8) -> bool:
    import numpy as np

    from repro.acfg import ACFGDataset
    from repro.gnn import GCNClassifier, GraphBatch
    from repro.malgen import generate_corpus
    from repro.nn import no_grad

    dataset = ACFGDataset.from_corpus(generate_corpus(samples, seed=seed))
    model = GCNClassifier(hidden=(16, 8), rng=np.random.default_rng(seed))
    batch = GraphBatch.from_graphs(list(dataset))
    with no_grad():
        z_batch, logits_batch = model.forward_batch(batch)
    worst = 0.0
    for i, graph in enumerate(dataset):
        with no_grad():
            z, _ = model.forward_acfg(graph)
            logits = model.logits(z)
        worst = max(
            worst,
            float(np.max(np.abs(z_batch.numpy()[batch.rows_of(i)] - z.numpy()))),
            float(np.max(np.abs(logits_batch.numpy()[i] - logits.numpy()))),
        )
    ok = worst <= tolerance
    status = "ok" if ok else "FAILED"
    print(
        f"[check] batching smoke: {len(dataset)} graphs, "
        f"max |batched - per-graph| = {worst:.3e} ({status})"
    )
    return ok


def _run_profile_smoke() -> bool:
    """A tiny traced run must produce a coherent manifest and spans."""
    import tempfile
    from dataclasses import replace

    from repro.eval.profile import PROFILE_CONFIG, profile_pipeline

    config = replace(
        PROFILE_CONFIG,
        samples_per_family=2,
        gnn_epochs=8,
        explainer_epochs=10,
        gnnexplainer_epochs=3,
        pgexplainer_epochs=2,
        subgraphx_iterations=4,
        subgraphx_shapley_samples=1,
    )
    required_stages = (
        "pipeline.corpus",
        "pipeline.dataset",
        "pipeline.train",
        "pipeline.eval",
        "pipeline.explain",
    )
    with tempfile.TemporaryDirectory() as tmp:
        result = profile_pipeline(config, out_dir=tmp, graphs_per_explainer=1)
        data = json.loads(result.manifest_path.read_text())
    stats = data["span_stats"]
    missing = [s for s in required_stages if s not in stats]
    zero = [s for s in required_stages if s in stats and stats[s]["wall_seconds"] <= 0]
    roots = data["span_tree"]
    consistent = (
        len(roots) == 1
        and roots[0]["wall_seconds"] > 0
        and sum(c["wall_seconds"] for c in roots[0].get("children", []))
        <= roots[0]["wall_seconds"]
    )
    ok = not missing and not zero and consistent and data.get("fingerprint")
    status = "ok" if ok else "FAILED"
    detail = ""
    if missing:
        detail = f" missing stages: {missing}"
    if zero:
        detail += f" zero-time stages: {zero}"
    if not consistent:
        detail += " inconsistent root span"
    print(
        f"[check] profile smoke: {len(stats)} span names, "
        f"root wall {roots[0]['wall_seconds']:.2f}s ({status}){detail}"
    )
    return bool(ok)


def _run_resume_smoke() -> bool:
    """Interrupt a tiny pipeline after training, resume, assert skips."""
    import tempfile
    from dataclasses import replace

    from repro.eval.pipeline import PipelineInterrupted, run_pipeline
    from repro.eval.profile import PROFILE_CONFIG
    from repro.obs import metrics_registry

    config = replace(
        PROFILE_CONFIG,
        samples_per_family=2,
        gnn_epochs=8,
        explainer_epochs=10,
        gnnexplainer_epochs=3,
        pgexplainer_epochs=2,
        subgraphx_iterations=4,
        subgraphx_shapley_samples=1,
    )
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        try:
            run_pipeline(config, resume_from=run_dir, stop_after="gnn")
        except PipelineInterrupted:
            pass
        else:
            print("[check] resume smoke: stop_after='gnn' did not interrupt (FAILED)")
            return False
        gnn_bytes = (run_dir / "stages" / "gnn" / "gnn.npz").read_bytes()
        before = metrics_registry().snapshot()
        artifacts = run_pipeline(config, resume_from=run_dir)
        delta = metrics_registry().delta_since(before)
        restored = delta.get("pipeline.stage.restored", 0)
        unchanged = (run_dir / "stages" / "gnn" / "gnn.npz").read_bytes() == gnn_bytes
    ok = restored >= 3 and unchanged and artifacts.gnn_test_accuracy >= 0.0
    status = "ok" if ok else "FAILED"
    detail = "" if unchanged else " gnn checkpoint rewritten"
    print(
        f"[check] resume smoke: {restored} stages restored after interrupt, "
        f"gnn accuracy {artifacts.gnn_test_accuracy:.3f} ({status}){detail}"
    )
    return bool(ok)


def _run_determinism_lint(root: Path) -> bool:
    """The AST determinism lint must be clean over ``src/``."""
    from repro.tools.lint import lint_paths

    findings = lint_paths([root / "src"])
    for finding in findings:
        print(f"[check]   {finding}")
    status = "ok" if not findings else "FAILED"
    print(f"[check] determinism lint: {len(findings)} finding(s) ({status})")
    return not findings


def _run_reduce_smoke(samples: int = 3, seed: int = 0) -> bool:
    """Reduce a tiny corpus with every pass on; check the invariants."""
    import numpy as np

    from repro.acfg.graph import from_sample
    from repro.malgen import generate_corpus
    from repro.reduce import ReduceConfig, reduce_acfg

    config = ReduceConfig(
        prune_dead_stores=True,
        filter_leaves=True,
        leaf_max_in_degree=8,
        max_rounds=8,
    )
    corpus = generate_corpus(samples, seed=seed)
    nodes_before = nodes_after = 0
    problems: list[str] = []
    for sample in corpus:
        graph = from_sample(sample)
        result = reduce_acfg(graph, cfg=sample.cfg, config=config)
        nodes_before += graph.n_real
        nodes_after += result.graph.n_real
        name = sample.program.name
        if result.graph.n_real > graph.n_real:
            problems.append(f"{name}: node count grew")
        if not np.all(np.isfinite(result.graph.features)):
            problems.append(f"{name}: non-finite merged features")
        scores = np.arange(1.0, result.graph.n_real + 1.0)
        lifted = result.lift.lift_scores(scores)
        if abs(float(lifted.sum()) - float(scores.sum())) > 1e-6 * scores.sum():
            problems.append(f"{name}: importance mass not conserved")
        # Default config must be a fixpoint of its own output.
        once = reduce_acfg(graph, cfg=sample.cfg)
        twice = reduce_acfg(once.graph)
        if twice.graph.n_real != once.graph.n_real:
            problems.append(f"{name}: default reduction not idempotent")
    for problem in problems:
        print(f"[check]   {problem}")
    ok = not problems
    status = "ok" if ok else "FAILED"
    print(
        f"[check] reduce smoke: {len(corpus)} graphs, "
        f"{nodes_before} -> {nodes_after} nodes ({status})"
    )
    return ok


def _run_serve_smoke() -> bool:
    """Serve one cold and one cached request through the daemon."""
    from dataclasses import replace

    import numpy as np

    from repro.eval.pipeline import run_pipeline
    from repro.eval.profile import PROFILE_CONFIG
    from repro.serve import DaemonConfig, ServeDaemon

    config = replace(
        PROFILE_CONFIG,
        samples_per_family=2,
        gnn_epochs=8,
        explainer_epochs=10,
        gnnexplainer_epochs=3,
        pgexplainer_epochs=2,
        subgraphx_iterations=4,
        subgraphx_shapley_samples=1,
    )
    artifacts = run_pipeline(config)
    sample = artifacts.corpus[0]
    problems: list[str] = []
    with ServeDaemon(artifacts.engine(), DaemonConfig()) as daemon:
        cold = daemon.submit(sample)
        warm = daemon.submit(sample)
    if cold.cached or not warm.cached:
        problems.append("repeat submission was not served from the cache")
    if warm.fingerprint != cold.fingerprint:
        problems.append("fingerprint changed between identical submissions")
    if not (
        np.array_equal(warm.probabilities, cold.probabilities)
        and np.array_equal(warm.explanation.node_order, cold.explanation.node_order)
        and np.array_equal(warm.explanation.node_scores, cold.explanation.node_scores)
    ):
        problems.append("cached response not bit-identical to cold response")
    for problem in problems:
        print(f"[check]   {problem}")
    ok = not problems
    status = "ok" if ok else "FAILED"
    print(
        f"[check] serve smoke: cold+cached request for "
        f"{cold.name!r} (family {cold.family}, "
        f"fingerprint {cold.fingerprint[:12]}) ({status})"
    )
    return ok


def _run_chaos_smoke() -> bool:
    """Serving under an aggressive fault plan must stay typed end to end.

    Two phases over a tiny untrained stack (cheap: gradient saliency
    explainer, no training loops):

    1. Chaos: a daemon under a plan with fault probability > 0 at every
       stage serves the whole corpus twice.  Every submission must get
       a typed response (full or ``DegradedResponse``) — never a raw
       exception — and the per-stage circuit breaker must both trip
       and recover at least once.
    2. Identity: with no fault plan, the daemon's response must be
       bit-identical to a direct ``engine.submit`` — the resilience
       seam is free when inactive.
    """
    import numpy as np

    from repro.acfg import ACFGDataset, FeatureScaler
    from repro.baselines.gradient import GradientExplainer
    from repro.gnn import GCNClassifier
    from repro.malgen import generate_corpus
    from repro.obs import metrics_registry
    from repro.resilience import FaultPlan, FaultSpec, ResilienceConfig
    from repro.serve import (
        DaemonConfig,
        InferenceEngine,
        RequestRejected,
        ServeDaemon,
    )

    corpus = generate_corpus(2, seed=0)
    dataset = ACFGDataset.from_corpus(corpus)
    model = GCNClassifier(hidden=(8, 8), rng=np.random.default_rng(0))
    engine = InferenceEngine(
        gnn=model,
        scaler=FeatureScaler().fit(list(dataset)),
        explainers={"Gradient": GradientExplainer(model)},
        families=dataset.families,
        default_explainer="Gradient",
    )
    plan = FaultPlan(
        seed=7,
        stages={
            "sanitize": FaultSpec(error=0.05, latency=0.05, latency_ms=2.0),
            "verify": FaultSpec(error=0.05, nonfinite=0.05),
            "reduce": FaultSpec(error=0.05, latency=0.05, latency_ms=2.0),
            "classify": FaultSpec(error=0.45, nonfinite=0.15),
            "explain": FaultSpec(error=0.45, nonfinite=0.15),
        },
    )
    config = DaemonConfig(
        cache_capacity=0,
        resilience=ResilienceConfig(
            deadline_ms=5000.0, breaker_threshold=2, breaker_cooldown_ms=1.0
        ),
    )
    problems: list[str] = []
    answered = degraded = unhandled = 0
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, config, fault_plan=plan) as daemon:
        for sample in list(corpus) + list(corpus):
            try:
                response = daemon.submit(sample)
            except RequestRejected:
                answered += 1
                continue
            except Exception as error:  # noqa: BLE001 - the contract under test
                unhandled += 1
                problems.append(
                    f"unhandled {type(error).__name__} escaped submit: {error}"
                )
                continue
            answered += 1
            if getattr(response, "degraded", False):
                degraded += 1
            if not np.all(np.isfinite(np.asarray(response.probabilities))):
                problems.append(
                    f"non-finite probabilities served for {response.name!r}"
                )
    delta = metrics_registry().delta_since(before)
    faults = sum(
        count for name, count in delta.items()
        if name.startswith("resilience.fault.")
    )
    trips = sum(
        count for name, count in delta.items()
        if name.startswith("resilience.breaker.") and name.endswith(".trip")
    )
    recoveries = sum(
        count for name, count in delta.items()
        if name.startswith("resilience.breaker.") and name.endswith(".recover")
    )
    if faults == 0:
        problems.append("fault plan injected nothing")
    if trips == 0:
        problems.append("circuit breaker never tripped under chaos")
    if recoveries == 0:
        problems.append("circuit breaker never recovered after tripping")

    # Phase 2: with no fault plan the daemon must add nothing.
    sample = corpus[0]
    direct = engine.submit(sample)
    with ServeDaemon(engine, DaemonConfig()) as clean_daemon:
        served = clean_daemon.submit(sample)
    if served.degraded or served.fingerprint != direct.fingerprint:
        problems.append("clean daemon response diverged from engine.submit")
    elif not (
        np.array_equal(served.probabilities, direct.probabilities)
        and np.array_equal(
            served.explanation.node_order, direct.explanation.node_order
        )
        and np.array_equal(
            served.explanation.node_scores, direct.explanation.node_scores
        )
    ):
        problems.append("clean daemon response not bit-identical to engine.submit")

    for problem in problems:
        print(f"[check]   {problem}")
    ok = not problems
    status = "ok" if ok else "FAILED"
    print(
        f"[check] chaos smoke: {answered} typed responses "
        f"({degraded} degraded, {unhandled} unhandled), {faults} faults, "
        f"{trips} breaker trip(s), {recoveries} recover(ies) ({status})"
    )
    return ok


def _run_fuzz_smoke(iterations: int = 500, seed: int = 0) -> bool:
    """A seeded fuzz campaign must finish with zero unhandled crashes.

    Drives ``iterations`` mutated listings through parser → CFG →
    features → sanitizer → GNN forward (every k-th survivor through all
    five explainers); any crash, sanitizer miss, or non-finite output
    fails the gate and prints its minimized repro.
    """
    from repro.harden.fuzz import FuzzConfig, run_fuzz

    hostile_dir = _repo_root() / "tests" / "data" / "hostile"
    report = run_fuzz(
        FuzzConfig(
            iterations=iterations,
            seed=seed,
            hostile_dir=hostile_dir if hostile_dir.is_dir() else None,
        )
    )
    status = "ok" if report.ok else "FAILED"
    print(
        f"[check] fuzz smoke: {report.iterations} mutations, "
        f"{report.parsed} parsed, {report.quarantined} quarantined, "
        f"{report.reduced} reduced, {report.forwards} forwards, "
        f"{report.explained} explained, "
        f"{len(report.crashes)} crash(es) ({status})"
    )
    for crash in report.crashes:
        print(
            f"[check]   crash iter={crash.iteration} stage={crash.stage} "
            f"{crash.error_type}: {crash.message}"
        )
        if crash.text:
            print("[check]   minimized repro:")
            for line in crash.text.splitlines():
                print(f"[check]     {line}")
    return report.ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="One-shot repository health check."
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also run the observability smoke gate (traced tiny pipeline)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="also run the crash-resume smoke gate (interrupt + resume a "
        "tiny checkpointed pipeline)",
    )
    parser.add_argument(
        "--fuzz",
        action="store_true",
        help="also run the hostile-input fuzz gate (500 seeded mutations "
        "through parser→CFG→GNN→explainers, zero crashes required)",
    )
    parser.add_argument(
        "--fuzz-iterations",
        type=int,
        default=500,
        help="mutation count for the --fuzz gate",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="also run the AST determinism lint over src/",
    )
    parser.add_argument(
        "--reduce",
        action="store_true",
        help="also run the static-reduction smoke gate (all passes on a "
        "tiny corpus, invariants checked directly)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also run the serving smoke gate (in-process daemon, one "
        "cold and one cached request, bit-identical responses)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="also run the resilience smoke gate (daemon under an "
        "every-stage fault plan: 100%% typed responses, breaker "
        "trip+recover; no-plan serving bit-identical to the engine)",
    )
    args = parser.parse_args(argv)
    root = _repo_root()
    results: dict[str, bool | str] = {}

    print(f"[check] repository root: {root}")
    results["ruff"] = _run_ruff(root)
    results["pytest"] = _run_pytest(root)
    results["corpus verification"] = _run_corpus_verification(
        samples=3, seed=0
    )
    results["batching smoke"] = _run_batching_smoke(samples=2, seed=0)
    if args.profile:
        results["profile smoke"] = _run_profile_smoke()
    if args.resume:
        results["resume smoke"] = _run_resume_smoke()
    if args.lint:
        results["determinism lint"] = _run_determinism_lint(root)
    if args.reduce:
        results["reduce smoke"] = _run_reduce_smoke(samples=3, seed=0)
    if args.serve:
        results["serve smoke"] = _run_serve_smoke()
    if args.chaos:
        results["chaos smoke"] = _run_chaos_smoke()
    if args.fuzz:
        results["fuzz smoke"] = _run_fuzz_smoke(iterations=args.fuzz_iterations)

    print("\n[check] summary")
    failed = False
    for gate, outcome in results.items():
        if outcome == _SKIPPED:
            status = "SKIP"
        elif outcome:
            status = "PASS"
        else:
            status = "FAIL"
            failed = True
        print(f"  {gate:<20} {status}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
