"""Developer tooling: the one-shot repository health check."""

from repro.tools.check import main

__all__ = ["main"]
