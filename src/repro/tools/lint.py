"""AST-based determinism lint for the repro codebase.

Numerical reproducibility dies by a thousand tiny cuts: iterating a
``set`` whose order varies across interpreter runs, seeding nothing and
hoping, or folding a wall-clock reading into a numeric result.  PR 4
shipped exactly one of these (an unsorted-set iteration that reordered
batch assembly); this lint makes the whole class mechanical.

Rules (all purely syntactic — an expression is only flagged when the
AST *proves* it is a set or a clock, never guessed from a name):

``set-iteration``
    A ``for`` statement or ordering-sensitive comprehension iterating
    directly over a set literal, set comprehension, or ``set()`` /
    ``frozenset()`` call.  Iteration order is randomized per process
    (hash seed), so any downstream ordering inherits nondeterminism.
    Not flagged when the iteration feeds an order-insensitive consumer
    (``sorted``, ``sum``, ``any``, ``min``, ``set.update``, ...).

``dict-values-iteration``
    Same contexts over ``<expr>.values()``.  Value order follows key
    insertion order, which silently reorders when the *population* code
    changes — sort the keys or iterate ``sorted(d)`` instead.

``unseeded-random``
    ``random.<fn>()`` module-level calls, legacy ``np.random.<fn>()``
    global-state calls, and ``default_rng()`` with no seed argument.
    Every random draw in a numeric path must flow from an explicit
    seed.

``wall-clock-seed``
    A wall-clock reading (``time.time``, ``time.time_ns``,
    ``datetime.now``, ``datetime.utcnow``) used as a ``seed=`` keyword
    or as an argument to a callee whose name mentions seed/rng/random.
    Timing spans and log lines are fine; clocks feeding RNGs are not.

A finding is suppressed by a ``# lint: ok`` comment on the same source
line or the line directly above it (ideally with a parenthesized
reason).  The lint runs over
``src/`` in CI via ``repro-check --lint`` and is importable:
``python -m repro.tools.lint <paths>``.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "LintFinding",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]

#: Callees whose result does not depend on iteration order, so feeding
#: them a set/values() generator is harmless.
_ORDER_INSENSITIVE_CALLEES: frozenset[str] = frozenset(
    {
        "all",
        "any",
        "dict",
        "frozenset",
        "len",
        "max",
        "min",
        "set",
        "sorted",
        "sum",
        "Counter",
    }
)

#: Method names that fold their iterable argument order-insensitively.
_ORDER_INSENSITIVE_METHODS: frozenset[str] = frozenset(
    {"update", "union", "intersection", "difference", "issuperset", "issubset"}
)

#: ``random`` module functions that read the unseeded global state.
_GLOBAL_RANDOM_FUNCTIONS: frozenset[str] = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "gauss",
        "getrandbits",
        "normalvariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "uniform",
    }
)

#: Legacy numpy global-state samplers (``np.random.<fn>``).
_NUMPY_GLOBAL_FUNCTIONS: frozenset[str] = frozenset(
    {
        "choice",
        "normal",
        "permutation",
        "rand",
        "randint",
        "randn",
        "random",
        "shuffle",
        "uniform",
    }
)

_WALL_CLOCK_ATTRIBUTES: frozenset[str] = frozenset(
    {"time", "time_ns", "now", "utcnow"}
)

_SUPPRESSION_MARKER = "lint: ok"


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard at a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"


def _is_set_expression(node: ast.expr) -> bool:
    """True only when the AST proves the expression is a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: proven set if either operand is a proven set
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _is_values_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "values"
        and not node.args
        and not node.keywords
    )


def _is_wall_clock_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _WALL_CLOCK_ATTRIBUTES
        and isinstance(node.func.value, (ast.Name, ast.Attribute))
    )


def _callee_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: list[LintFinding] = []
        #: comprehension nodes consumed by an order-insensitive callee
        self._order_insensitive_comprehensions: set[int] = set()

    # ------------------------------------------------------------------
    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(self.path, node.lineno, node.col_offset, rule, message)
        )

    def _check_iterable(self, iterable: ast.expr, context: ast.AST) -> None:
        if _is_set_expression(iterable):
            self._add(
                context,
                "set-iteration",
                "iterating a set in an ordering-sensitive context; wrap in "
                "sorted(...) or restructure",
            )
        elif _is_values_call(iterable):
            self._add(
                context,
                "dict-values-iteration",
                "iterating dict.values() in an ordering-sensitive context; "
                "iterate sorted keys instead",
            )

    # ------------------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _callee_name(node)
        # Mark comprehension arguments of order-insensitive consumers.
        if (
            callee in _ORDER_INSENSITIVE_CALLEES
            or callee in _ORDER_INSENSITIVE_METHODS
        ):
            for argument in node.args:
                if isinstance(
                    argument, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                ):
                    self._order_insensitive_comprehensions.add(id(argument))

        # unseeded-random
        if isinstance(node.func, ast.Attribute):
            owner = node.func.value
            if (
                isinstance(owner, ast.Name)
                and owner.id == "random"
                and node.func.attr in _GLOBAL_RANDOM_FUNCTIONS
            ):
                self._add(
                    node,
                    "unseeded-random",
                    f"random.{node.func.attr}() reads unseeded global state; "
                    "use random.Random(seed) or numpy default_rng(seed)",
                )
            if (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in {"np", "numpy"}
                and node.func.attr in _NUMPY_GLOBAL_FUNCTIONS
            ):
                self._add(
                    node,
                    "unseeded-random",
                    f"np.random.{node.func.attr}() reads the legacy global "
                    "generator; use np.random.default_rng(seed)",
                )
        if callee == "default_rng" and not node.args and not node.keywords:
            self._add(
                node,
                "unseeded-random",
                "default_rng() without a seed draws entropy from the OS; "
                "pass an explicit seed",
            )

        # wall-clock-seed
        seedish_callee = any(
            fragment in callee.lower() for fragment in ("seed", "rng", "random")
        )
        for keyword in node.keywords:
            if keyword.arg and (
                "seed" in keyword.arg.lower() or seedish_callee
            ):
                if _is_wall_clock_call(keyword.value):
                    self._add(
                        keyword.value,
                        "wall-clock-seed",
                        "wall-clock reading used as a seed; derive seeds "
                        "from config, never the clock",
                    )
        if seedish_callee:
            for argument in node.args:
                if _is_wall_clock_call(argument):
                    self._add(
                        argument,
                        "wall-clock-seed",
                        "wall-clock reading passed to a seeding/RNG call; "
                        "derive seeds from config, never the clock",
                    )
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if id(node) not in self._order_insensitive_comprehensions:
            for generator in node.generators:
                self._check_iterable(generator.iter, node)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if id(node) not in self._order_insensitive_comprehensions:
            for generator in node.generators:
                self._check_iterable(generator.iter, node)
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one source string; suppressions already applied."""
    tree = ast.parse(source, filename=path)
    # Order-insensitive consumers are discovered at their Call node,
    # which ast.NodeVisitor reaches before the argument comprehension —
    # a single pass suffices.
    visitor = _DeterminismVisitor(path)
    visitor.visit(tree)
    lines = source.splitlines()
    kept = []
    for finding in sorted(visitor.findings, key=lambda f: (f.line, f.column)):
        same = lines[finding.line - 1] if finding.line <= len(lines) else ""
        above = lines[finding.line - 2] if finding.line >= 2 else ""
        suppressed = _SUPPRESSION_MARKER in same or (
            _SUPPRESSION_MARKER in above and above.lstrip().startswith("#")
        )
        if not suppressed:
            kept.append(finding)
    return kept


def lint_file(path: str | Path) -> list[LintFinding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path))


def lint_paths(paths: list[str | Path]) -> list[LintFinding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: list[LintFinding] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            findings.extend(lint_file(file))
    return findings


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    targets = argv or ["src"]
    findings = lint_paths(list(targets))
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} determinism finding(s)")
        return 1
    print(f"determinism lint clean over {', '.join(map(str, targets))}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
