"""Benchmark-regression gate: current ``BENCH_*.json`` vs baselines.

Committed reference numbers live in ``benchmarks/baselines/``; each
benchmark run writes fresh ``BENCH_*.json`` artifacts (to the repo root
or to ``$REPRO_BENCH_DIR``).  This tool pairs the two sets, extracts
every numeric leaf, applies per-metric relative thresholds to the
*gated* metrics, prints a delta table, and exits non-zero when any
gated metric regressed past its threshold — the CI contract that keeps
the batched engine's measured speedups from silently rotting.

Gating policy: wall-clock ``seconds`` are noisy across runners, so the
gates watch the scale-free throughput metrics — ``*.graphs_per_sec``
and ``*.speedup`` — with a generous default threshold (30 % relative).
Everything else is reported informationally.

Usage::

    python -m repro.tools.bench_compare [--current DIR] [--baselines DIR]
                                        [--threshold F] [--allow-missing]
                                        [--only GLOB]

``--only`` restricts the comparison to baseline files matching a glob
(e.g. ``--only BENCH_quick.json`` for the PR-time quick-perf lane,
which produces a single artifact).

Exit codes: 0 ok, 1 regression (or missing current artifact), 2 usage
error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DEFAULT_POLICIES",
    "MetricDelta",
    "MetricPolicy",
    "compare_benchmarks",
    "compare_directories",
    "extract_metrics",
    "format_delta_table",
    "main",
]

BASELINE_DIR_NAME = Path("benchmarks") / "baselines"

#: Environment variable redirecting where benchmarks write BENCH_*.json.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


@dataclass(frozen=True)
class MetricPolicy:
    """How one family of metrics is gated.

    ``pattern`` is an ``fnmatch`` glob over the dotted metric path
    (``training.batched.graphs_per_sec``).  ``direction`` names the
    good direction; ``threshold`` is the tolerated move in the bad
    direction before the gate fails — relative to the baseline in the
    default ``mode="relative"``, or an absolute delta with
    ``mode="absolute"`` (right for metrics bounded in [0, 1], where a
    relative threshold collapses near zero).
    """

    pattern: str
    direction: str  # "higher" | "lower"
    threshold: float
    mode: str = "relative"  # "relative" | "absolute"

    def matches(self, path: str) -> bool:
        return fnmatch.fnmatch(path, self.pattern)

    def bad_move(self, baseline: float, current: float) -> float:
        delta = current - baseline
        if self.mode == "relative":
            delta = delta / baseline if baseline else 0.0
        return -delta if self.direction == "higher" else delta


DEFAULT_POLICIES: tuple[MetricPolicy, ...] = (
    # Chaos lane: the fault plan is committed alongside the baselines
    # so the injected-fault multiset is identical run to run; what
    # varies is breaker timing (wall-clock cooldowns), so the rate
    # gates are absolute with room for a breaker-shed request or two.
    # The typed-response rate is the hard resilience contract — any
    # unhandled exception under chaos fails the gate outright.
    MetricPolicy("chaos.*.typed_response_rate", "higher", 0.001, mode="absolute"),
    MetricPolicy("chaos.*.availability", "higher", 0.15, mode="absolute"),
    MetricPolicy("chaos.*.degraded_rate", "lower", 0.15, mode="absolute"),
    MetricPolicy("chaos.*.graphs_per_sec", "higher", 0.60),
    # Serving throughput is measured over sub-second closed loops, so
    # run-to-run spread is much wider than the training benches'; the
    # first matching policy wins, so this looser gate must precede the
    # generic *graphs_per_sec one.
    MetricPolicy("serving.*.graphs_per_sec", "higher", 0.60),
    MetricPolicy("*graphs_per_sec", "higher", 0.30),
    MetricPolicy("*speedup", "higher", 0.30),
    # Stability metrics are bounded in [0, 1]: gate on absolute drops.
    MetricPolicy("*.jaccard", "higher", 0.15, mode="absolute"),
    MetricPolicy("*.spearman", "higher", 0.20, mode="absolute"),
    # Counterfactual metrics are likewise [0, 1]-bounded rates over a
    # small per-family sample (granularity ~1/families), so the gates
    # tolerate a couple of graphs moving before tripping.
    MetricPolicy("*.sufficiency", "higher", 0.25, mode="absolute"),
    MetricPolicy("*.necessity", "higher", 0.25, mode="absolute"),
    MetricPolicy("*.edit_size", "lower", 0.25, mode="absolute"),
    MetricPolicy("*.flip_rate", "higher", 0.20, mode="absolute"),
    # Reduction lane: compression ratios are scale-free like speedups;
    # the accuracy cost of reducing is bounded absolutely.
    MetricPolicy("*compression", "higher", 0.30),
    MetricPolicy("*accuracy_drop", "lower", 0.25, mode="absolute"),
    # Serving SLOs are lower-is-better latencies.  CI wall clocks are
    # noisy, so p50 tolerates a 2x move and the tail p99 a 3x move
    # before the gate trips; throughput rides the *graphs_per_sec gate.
    MetricPolicy("*_p50_ms", "lower", 1.00),
    MetricPolicy("*_p99_ms", "lower", 2.00),
)


@dataclass(frozen=True)
class MetricDelta:
    """One baseline/current metric pair and its verdict."""

    file: str
    path: str
    baseline: float
    current: float | None
    status: str  # "ok" | "regressed" | "info" | "missing"
    rel_change: float | None = None
    threshold: float | None = None


def extract_metrics(payload: dict, prefix: str = "") -> dict[str, float]:
    """Flatten a benchmark JSON into dotted-path -> numeric leaves."""
    out: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(extract_metrics(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def compare_benchmarks(
    baseline: dict,
    current: dict | None,
    file: str = "",
    policies: tuple[MetricPolicy, ...] = DEFAULT_POLICIES,
) -> list[MetricDelta]:
    """Judge every baseline metric against the current run."""
    base_metrics = extract_metrics(baseline)
    cur_metrics = extract_metrics(current) if current is not None else {}
    deltas: list[MetricDelta] = []
    for path, base_value in sorted(base_metrics.items()):
        policy = next((p for p in policies if p.matches(path)), None)
        cur_value = cur_metrics.get(path)
        if cur_value is None:
            deltas.append(
                MetricDelta(file, path, base_value, None, "missing",
                            threshold=policy.threshold if policy else None)
            )
            continue
        rel = (cur_value - base_value) / base_value if base_value else 0.0
        if policy is None:
            deltas.append(MetricDelta(file, path, base_value, cur_value, "info", rel))
            continue
        status = (
            "regressed"
            if policy.bad_move(base_value, cur_value) > policy.threshold
            else "ok"
        )
        deltas.append(
            MetricDelta(file, path, base_value, cur_value, status, rel,
                        policy.threshold)
        )
    return deltas


def format_delta_table(deltas: list[MetricDelta]) -> str:
    """A readable per-metric verdict table."""
    header = (
        f"{'metric':<56} {'baseline':>12} {'current':>12} "
        f"{'change':>9} {'status':>10}"
    )
    lines = [header, "-" * len(header)]
    for d in deltas:
        metric = f"{d.file}:{d.path}" if d.file else d.path
        current = f"{d.current:,.2f}" if d.current is not None else "—"
        change = f"{d.rel_change:+.1%}" if d.rel_change is not None else "—"
        status = d.status.upper() if d.status in ("regressed", "missing") else d.status
        lines.append(
            f"{metric:<56} {d.baseline:>12,.2f} {current:>12} "
            f"{change:>9} {status:>10}"
        )
    return "\n".join(lines)


def _repo_root() -> Path:
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return Path.cwd()


def default_bench_dir() -> Path:
    """Where benchmarks write artifacts: $REPRO_BENCH_DIR or repo root."""
    override = os.environ.get(BENCH_DIR_ENV)
    return Path(override) if override else _repo_root()


def compare_directories(
    baseline_dir: str | Path,
    current_dir: str | Path,
    policies: tuple[MetricPolicy, ...] = DEFAULT_POLICIES,
    allow_missing: bool = False,
    only: str | None = None,
) -> tuple[list[MetricDelta], bool]:
    """Compare every committed baseline file against the current run.

    Returns ``(deltas, ok)``.  A baseline without a current
    counterpart fails the gate (the artifact disappearing is exactly
    the silent rot the gate exists to catch) unless ``allow_missing``.
    ``only`` narrows the gate to baseline files matching the glob —
    for lanes that produce a subset of the artifacts.
    """
    baseline_dir, current_dir = Path(baseline_dir), Path(current_dir)
    baseline_files = sorted(baseline_dir.glob("BENCH_*.json"))
    if only is not None:
        baseline_files = [
            f for f in baseline_files if fnmatch.fnmatch(f.name, only)
        ]
    if not baseline_files:
        detail = f" matching {only!r}" if only else ""
        raise FileNotFoundError(
            f"no BENCH_*.json baselines{detail} in {baseline_dir}"
        )
    deltas: list[MetricDelta] = []
    for baseline_file in baseline_files:
        baseline = json.loads(baseline_file.read_text())
        current_file = current_dir / baseline_file.name
        current = (
            json.loads(current_file.read_text()) if current_file.is_file() else None
        )
        deltas.extend(
            compare_benchmarks(baseline, current, baseline_file.name, policies)
        )
    failing = [
        d for d in deltas
        if d.status == "regressed" or (d.status == "missing" and not allow_missing)
    ]
    return deltas, not failing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--baselines",
        default=None,
        help="baseline directory (default: <repo>/benchmarks/baselines)",
    )
    parser.add_argument(
        "--current",
        default=None,
        help=f"current artifact directory (default: ${BENCH_DIR_ENV} or repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="override the relative regression threshold for every gated metric",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="missing current artifacts only warn instead of failing",
    )
    parser.add_argument(
        "--only",
        default=None,
        help="gate only baseline files matching this glob "
        "(e.g. BENCH_quick.json)",
    )
    args = parser.parse_args(argv)

    baselines = Path(args.baselines) if args.baselines else _repo_root() / BASELINE_DIR_NAME
    current = Path(args.current) if args.current else default_bench_dir()
    policies = DEFAULT_POLICIES
    if args.threshold is not None:
        if args.threshold <= 0:
            print("error: --threshold must be positive", file=sys.stderr)
            return 2
        policies = tuple(
            MetricPolicy(p.pattern, p.direction, args.threshold, p.mode)
            for p in policies
        )

    try:
        deltas, ok = compare_directories(
            baselines,
            current,
            policies,
            allow_missing=args.allow_missing,
            only=args.only,
        )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"# Benchmark comparison: {current} vs baselines in {baselines}\n")
    print(format_delta_table(deltas))
    regressed = [d for d in deltas if d.status == "regressed"]
    missing = [d for d in deltas if d.status == "missing"]
    print()
    if regressed:
        print(f"FAILED: {len(regressed)} metric(s) regressed past threshold")
    if missing:
        print(f"{'warning' if args.allow_missing else 'FAILED'}: "
              f"{len(missing)} baseline metric(s) have no current value")
    if ok:
        print("OK: no gated regressions")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
