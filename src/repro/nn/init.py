"""Weight initialization schemes used by the models in the paper."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros_init"]


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization, the GCN default."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialization for ReLU-activated dense layers."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def zeros_init(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (biases)."""
    del rng
    return np.zeros((fan_in, fan_out))
