"""Numerical guards: typed NaN/Inf detection and gradient clipping.

The training loops consume data that is adversarial by construction
(malware authors control the binaries that become our graphs), so a
single degenerate sample can push a loss or gradient to NaN/Inf and
silently poison every later update.  These helpers turn that silent
corruption into a typed :class:`NumericalError` at the step where it
first appears, and give optimizers a global-norm gradient clip to keep
hostile batches from blowing up the weights in the first place.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "NumericalError",
    "assert_finite",
    "assert_finite_array",
    "clip_grad_norm",
    "grad_norm",
]


class NumericalError(ArithmeticError):
    """A NaN/Inf (or otherwise invalid) value reached a numeric path.

    ``where`` names the quantity that went bad (``"loss"``,
    ``"gradient"``, ``"features"``); ``context`` carries free-form
    diagnostic detail (epoch, batch, offending value).
    """

    def __init__(self, where: str, detail: str = "", context: dict | None = None):
        message = f"non-finite value in {where}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.where = where
        self.detail = detail
        self.context = dict(context or {})


def assert_finite(value: float, where: str, context: dict | None = None) -> float:
    """Return ``value`` unchanged, raising :class:`NumericalError` if it
    is NaN or infinite."""
    if not math.isfinite(value):
        raise NumericalError(where, f"got {value!r}", context)
    return value


def assert_finite_array(
    array: np.ndarray, where: str, context: dict | None = None
) -> np.ndarray:
    """Return ``array`` unchanged, raising on any NaN/Inf entry."""
    if not np.all(np.isfinite(array)):
        bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise NumericalError(where, f"{bad} non-finite element(s)", context)
    return array


def grad_norm(parameters: Sequence[Tensor]) -> float:
    """Global L2 norm over every parameter gradient (missing grads = 0)."""
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(param.grad * param.grad))
    return math.sqrt(total)


def clip_grad_norm(
    parameters: Sequence[Tensor], max_norm: float, where: str = "gradient"
) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  A non-finite norm (some gradient already
    holds NaN/Inf) raises :class:`NumericalError` instead of silently
    writing the poison into the optimizer state.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = grad_norm(parameters)
    if not math.isfinite(norm):
        raise NumericalError(where, f"gradient norm is {norm!r}")
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm
