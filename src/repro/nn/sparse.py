"""Sparse-matrix and segment operations for batched graph execution.

A mini-batch of graphs can be executed as one big *disconnected* graph:
stack every graph's normalized adjacency into a block-diagonal matrix,
stack the node features row-wise, and remember which rows belong to
which graph in a ``segment_ids`` vector.  A GCN layer applied to the
block-diagonal matrix is mathematically identical to applying it to
each graph separately (messages cannot cross blocks), and per-graph
pooling becomes a segment reduction.

The block-diagonal matrix is overwhelmingly sparse — its density falls
as ``1/num_graphs`` — so it is stored in CSR form (:class:`CSRMatrix`)
and multiplied with scipy's compiled kernels.  The ops here are the
autograd-facing entry points: like every op in :mod:`repro.nn.tensor`
they record a backward closure on the tape and are finite-difference
tested in ``tests/test_autograd.py``.

The CSR matrix itself is a *constant* of the graph (no gradients flow
into its values); differentiable adjacencies — the soft masks the
baseline explainers optimize — keep using the dense tensor path.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from repro.nn.tensor import Tensor

__all__ = ["CSRMatrix", "csr_matmul", "segment_sum", "segment_max"]


class CSRMatrix:
    """An immutable CSR sparse matrix used as a constant in autograd ops.

    Wraps ``scipy.sparse.csr_matrix`` and lazily materializes the
    transpose (needed by the backward pass of :func:`csr_matmul`) on
    first use so inference-only paths never pay for it.
    """

    __slots__ = ("matrix", "_transpose")

    def __init__(self, matrix):
        if _sp.issparse(matrix) and matrix.format == "csr" and matrix.dtype == np.float64:
            self.matrix = matrix
        else:
            self.matrix = _sp.csr_matrix(matrix, dtype=np.float64)
        self._transpose = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls(_sp.csr_matrix(np.asarray(dense, dtype=np.float64)))

    @classmethod
    def block_diagonal(cls, blocks: list["CSRMatrix | np.ndarray"]) -> "CSRMatrix":
        """Stack square blocks along the diagonal: diag(B_1, ..., B_k).

        Assembled directly in CSR form — concatenated data, column
        indices shifted per block, row pointers offset by cumulative
        nnz — because ``scipy.sparse.block_diag`` routes through COO
        and its per-block allocations dominate mini-batch packing.
        """
        if not blocks:
            raise ValueError("need at least one block")
        mats = [
            b.matrix if isinstance(b, CSRMatrix) else _sp.csr_matrix(b)
            for b in blocks
        ]
        if len(mats) == 1:
            return cls(mats[0])
        rows = np.array([m.shape[0] for m in mats])
        cols = np.array([m.shape[1] for m in mats])
        col_offsets = np.concatenate([[0], np.cumsum(cols[:-1])])
        nnz_offsets = np.concatenate([[0], np.cumsum([m.nnz for m in mats[:-1]])])
        data = np.concatenate([m.data for m in mats])
        indices = np.concatenate(
            [m.indices + off for m, off in zip(mats, col_offsets)]
        )
        indptr = np.concatenate(
            [mats[0].indptr]
            + [m.indptr[1:] + off for m, off in zip(mats[1:], nnz_offsets[1:])]
        )
        shape = (int(rows.sum()), int(cols.sum()))
        return cls(_sp.csr_matrix((data, indices, indptr), shape=shape))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def toarray(self) -> np.ndarray:
        return self.matrix.toarray()

    @property
    def T(self):
        if self._transpose is None:
            self._transpose = self.matrix.T.tocsr()
        return self._transpose

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


def csr_matmul(a: CSRMatrix, x: Tensor) -> Tensor:
    """``a @ x`` where ``a`` is a constant CSR matrix and ``x`` a tensor.

    Gradient: ``d loss/d x = aᵀ @ grad``.  No gradient flows into ``a``.
    """
    x = Tensor.ensure(x)
    data = a.matrix @ x.data

    def backward(grad: np.ndarray) -> None:
        x._accumulate(a.T @ grad)

    return Tensor._from_op(np.asarray(data), (x,), backward, "csr_matmul")


def _check_segments(
    x: Tensor, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if segment_ids.ndim != 1 or segment_ids.shape[0] != x.shape[0]:
        raise ValueError(
            f"segment_ids must be 1-D with one entry per row; got "
            f"{segment_ids.shape} for {x.shape[0]} rows"
        )
    if segment_ids.size and (
        segment_ids.min() < 0 or segment_ids.max() >= num_segments
    ):
        raise ValueError("segment ids out of range")
    return segment_ids


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Row-wise scatter-add: ``out[s] = Σ_{i: segment_ids[i]=s} x[i]``.

    The batched form of per-graph sum pooling: with rows stacked across
    graphs and ``segment_ids`` mapping rows to graphs, this reduces a
    whole mini-batch in one call.  Output shape ``[num_segments, f]``.
    """
    x = Tensor.ensure(x)
    segment_ids = _check_segments(x, segment_ids, num_segments)
    out = np.zeros((num_segments,) + x.shape[1:], dtype=np.float64)
    np.add.at(out, segment_ids, x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad[segment_ids])

    return Tensor._from_op(out, (x,), backward, "segment_sum")


def segment_max(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Row-wise segment maximum, the batched form of max pooling.

    Every segment must be non-empty.  Ties split the gradient evenly,
    matching the subgradient convention of :meth:`Tensor.max`.
    """
    x = Tensor.ensure(x)
    segment_ids = _check_segments(x, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments)
    if np.any(counts == 0):
        raise ValueError("segment_max requires every segment to be non-empty")

    contiguous = bool(np.all(np.diff(segment_ids) >= 0))
    if contiguous:
        # Sorted segment ids (the GraphBatch layout): compiled reduceat.
        starts = np.zeros(num_segments, dtype=np.intp)
        starts[1:] = np.cumsum(counts)[:-1]
        out = np.maximum.reduceat(x.data, starts, axis=0)
    else:
        out = np.full((num_segments,) + x.shape[1:], -np.inf)
        np.maximum.at(out, segment_ids, x.data)

    def backward(grad: np.ndarray) -> None:
        winners = (x.data == out[segment_ids]).astype(np.float64)
        tie_counts = np.zeros_like(out)
        np.add.at(tie_counts, segment_ids, winners)
        x._accumulate(winners * (grad / tie_counts)[segment_ids])

    return Tensor._from_op(out, (x,), backward, "segment_max")
