"""Sparse-matrix and segment operations for batched graph execution.

A mini-batch of graphs can be executed as one big *disconnected* graph:
stack every graph's normalized adjacency into a block-diagonal matrix,
stack the node features row-wise, and remember which rows belong to
which graph in a ``segment_ids`` vector.  A GCN layer applied to the
block-diagonal matrix is mathematically identical to applying it to
each graph separately (messages cannot cross blocks), and per-graph
pooling becomes a segment reduction.

The block-diagonal matrix is overwhelmingly sparse — its density falls
as ``1/num_graphs`` — so it is stored in CSR form (:class:`CSRMatrix`).
The ops here are the autograd-facing entry points: like every op in
:mod:`repro.nn.tensor` they record a backward closure on the tape and
are finite-difference tested in ``tests/test_autograd.py``.  The raw
kernels underneath dispatch through the pluggable
:class:`repro.nn.backend.SparseBackend` seam, and every op accepts an
optional :class:`~repro.nn.backend.KernelWorkspace` so repeated steps
reuse output/gradient buffers instead of reallocating.

The CSR matrix itself is a *constant* of the graph (no gradients flow
into its values); differentiable adjacencies — the soft masks the
baseline explainers optimize — keep using the dense tensor path.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from repro.nn.backend import KernelWorkspace, get_backend
from repro.nn.tensor import Tensor

__all__ = [
    "CSRMatrix",
    "csr_matmul",
    "gcn_layer",
    "segment_max",
    "segment_starts",
    "segment_sum",
]


class CSRMatrix:
    """An immutable CSR sparse matrix used as a constant in autograd ops.

    Wraps ``scipy.sparse.csr_matrix``; the transpose (needed by the
    backward pass of :func:`csr_matmul`) and any alternate-dtype casts
    (float32 compute over a float64-canonical Â) are materialized
    lazily and memoized, so inference-only paths never pay for the
    transpose and repeated epochs never re-cast.
    """

    __slots__ = ("matrix", "_transposes", "_casts")

    def __init__(self, matrix, dtype=None):
        target = np.dtype(np.float64 if dtype is None else dtype)
        if _sp.issparse(matrix) and matrix.format == "csr" and matrix.dtype == target:
            self.matrix = matrix
        else:
            self.matrix = _sp.csr_matrix(matrix, dtype=target)
        self._transposes: dict[str, _sp.csr_matrix] = {}
        self._casts: dict[str, _sp.csr_matrix] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, dtype=None) -> "CSRMatrix":
        target = np.dtype(np.float64 if dtype is None else dtype)
        return cls(_sp.csr_matrix(np.asarray(dense, dtype=target)), dtype=target)

    @classmethod
    def block_diagonal(cls, blocks: list["CSRMatrix | np.ndarray"]) -> "CSRMatrix":
        """Stack square blocks along the diagonal: diag(B_1, ..., B_k).

        Assembled directly in CSR form — concatenated data, column
        indices shifted per block, row pointers offset by cumulative
        nnz — because ``scipy.sparse.block_diag`` routes through COO
        and its per-block allocations dominate mini-batch packing.
        The result keeps the blocks' (promoted) dtype.
        """
        if not blocks:
            raise ValueError("need at least one block")
        mats = [
            b.matrix if isinstance(b, CSRMatrix) else _sp.csr_matrix(b)
            for b in blocks
        ]
        if len(mats) == 1:
            return cls(mats[0], dtype=mats[0].dtype)
        rows = np.array([m.shape[0] for m in mats])
        cols = np.array([m.shape[1] for m in mats])
        col_offsets = np.concatenate([[0], np.cumsum(cols[:-1])])
        nnz_offsets = np.concatenate([[0], np.cumsum([m.nnz for m in mats[:-1]])])
        data = np.concatenate([m.data for m in mats])
        indices = np.concatenate(
            [m.indices + off for m, off in zip(mats, col_offsets)]
        )
        indptr = np.concatenate(
            [mats[0].indptr]
            + [m.indptr[1:] + off for m, off in zip(mats[1:], nnz_offsets[1:])]
        )
        shape = (int(rows.sum()), int(cols.sum()))
        return cls(
            _sp.csr_matrix((data, indices, indptr), shape=shape), dtype=data.dtype
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    @property
    def dtype(self) -> np.dtype:
        return self.matrix.dtype

    def toarray(self) -> np.ndarray:
        return self.matrix.toarray()

    def astype(self, dtype) -> "_sp.csr_matrix":
        """This matrix as a scipy CSR in ``dtype`` (cached, shared)."""
        dtype = np.dtype(dtype)
        if dtype == self.matrix.dtype:
            return self.matrix
        cached = self._casts.get(dtype.str)
        if cached is None:
            cached = self.matrix.astype(dtype)
            self._casts[dtype.str] = cached
        return cached

    def transpose(self, dtype=None) -> "_sp.csr_matrix":
        """The CSR transpose in ``dtype`` (default: own dtype; cached)."""
        dtype = np.dtype(self.matrix.dtype if dtype is None else dtype)
        cached = self._transposes.get(dtype.str)
        if cached is None:
            base = self._transposes.get(self.matrix.dtype.str)
            if base is None:
                base = self.matrix.T.tocsr()
                self._transposes[self.matrix.dtype.str] = base
            cached = base if dtype == base.dtype else base.astype(dtype)
            self._transposes[dtype.str] = cached
        return cached

    @property
    def T(self):
        return self.transpose()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, dtype={self.dtype})"


def csr_matmul(
    a: CSRMatrix,
    x: Tensor,
    workspace: KernelWorkspace | None = None,
    slot: str = "csr_matmul",
) -> Tensor:
    """``a @ x`` where ``a`` is a constant CSR matrix and ``x`` a tensor.

    Gradient: ``d loss/d x = aᵀ @ grad``.  No gradient flows into ``a``.
    With a ``workspace``, the forward output and the backward gradient
    are written into preallocated per-``slot`` buffers; parameter
    (leaf) gradients never alias a workspace buffer.
    """
    x = Tensor.ensure(x)
    x_data = x.data
    mat = a.astype(x_data.dtype)
    out = None
    if workspace is not None and x_data.ndim == 2:
        out = workspace.buffer(slot, (mat.shape[0], x_data.shape[1]), x_data.dtype)
    data = get_backend().spmm(mat, x_data, out=out)

    def backward(grad: np.ndarray) -> None:
        a_t = a.transpose(grad.dtype)
        grad_out = None
        if workspace is not None and grad.ndim == 2 and x._op != "leaf":
            grad_out = workspace.buffer(
                slot + ":bwd", (a_t.shape[0], grad.shape[1]), grad.dtype
            )
        grad_x = get_backend().spmm(a_t, grad, out=grad_out)
        x._accumulate_owned(np.asarray(grad_x))

    return Tensor._from_op(np.asarray(data), (x,), backward, "csr_matmul")


def gcn_layer(
    a: CSRMatrix,
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    mask: np.ndarray,
    workspace: KernelWorkspace | None = None,
    slot: str = "gcn",
) -> Tensor:
    """Fused GCN layer: ``relu(a @ (x @ weight) + bias) * mask``.

    One tape node instead of five (matmul/spmm/add/relu/mul), with the
    bias add, ReLU and mask applied in place on the spmm output — the
    intermediate activations of the composed form are never
    materialized.  Bit-identical to the composed ops (the in-place
    elementwise chain performs the same IEEE operations in the same
    order, and ``out > 0`` equals ``mask * (pre > 0)`` wherever the
    masked gradient is nonzero).

    ``mask`` is a constant ``[n, 1]`` 0/1 column (no gradient); ``a``
    is a constant CSR Â.  With a ``workspace`` the two large
    intermediates (layer output, backward support gradient) live in
    per-``slot`` reusable buffers.
    """
    x = Tensor.ensure(x)
    support = x.data @ weight.data
    mat = a.astype(support.dtype)
    out = None
    if workspace is not None:
        out = workspace.buffer(slot, (mat.shape[0], support.shape[1]), support.dtype)
    h = np.asarray(get_backend().spmm(mat, support, out=out))
    h += bias.data
    np.maximum(h, 0.0, out=h)
    h *= mask

    def backward(grad: np.ndarray) -> None:
        g = grad * mask
        g *= h > 0.0
        a_t = a.transpose(g.dtype)
        grad_support_out = None
        if workspace is not None:
            grad_support_out = workspace.buffer(
                slot + ":bwd", support.shape, g.dtype
            )
        grad_support = np.asarray(
            get_backend().spmm(a_t, g, out=grad_support_out)
        )
        if bias.requires_grad:
            bias._accumulate_owned(g.sum(axis=0, keepdims=True))
        if weight.requires_grad:
            weight._accumulate_owned(x.data.T @ grad_support)
        if x.requires_grad:
            x._accumulate_owned(grad_support @ weight.data.T)

    return Tensor._from_op(h, (x, weight, bias), backward, "gcn_layer")


def _check_segments(
    x: Tensor, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if segment_ids.ndim != 1 or segment_ids.shape[0] != x.shape[0]:
        raise ValueError(
            f"segment_ids must be 1-D with one entry per row; got "
            f"{segment_ids.shape} for {x.shape[0]} rows"
        )
    if segment_ids.size and (
        segment_ids.min() < 0 or segment_ids.max() >= num_segments
    ):
        raise ValueError("segment ids out of range")
    return segment_ids


def segment_starts(
    segment_ids: np.ndarray, num_segments: int
) -> np.ndarray | None:
    """Per-segment row offsets for the compiled ``reduceat`` fast path.

    Returns the offsets only when ``segment_ids`` is sorted *and* every
    segment is non-empty — ``reduceat`` silently produces wrong rows
    for empty segments (``starts[i] == starts[i+1]`` yields
    ``x[starts[i]]``), so any other layout gets ``None`` and the ops
    fall back to the scatter kernels.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    counts = np.bincount(segment_ids, minlength=num_segments)
    if not np.all(counts > 0):
        return None
    if segment_ids.size > 1 and np.any(np.diff(segment_ids) < 0):
        return None
    starts = np.zeros(num_segments, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    return starts


def segment_sum(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    starts: np.ndarray | None = None,
) -> Tensor:
    """Row-wise scatter-add: ``out[s] = Σ_{i: segment_ids[i]=s} x[i]``.

    The batched form of per-graph sum pooling: with rows stacked across
    graphs and ``segment_ids`` mapping rows to graphs, this reduces a
    whole mini-batch in one call.  Output shape ``[num_segments, f]``.
    Callers that already know the batch layout can pass ``starts``
    (see :func:`segment_starts`) to skip its recomputation.
    """
    x = Tensor.ensure(x)
    segment_ids = _check_segments(x, segment_ids, num_segments)
    if starts is None:
        starts = segment_starts(segment_ids, num_segments)
    out = get_backend().segment_sum(x.data, segment_ids, num_segments, starts)

    def backward(grad: np.ndarray) -> None:
        x._accumulate_owned(grad[segment_ids])

    return Tensor._from_op(np.asarray(out), (x,), backward, "segment_sum")


def segment_max(
    x: Tensor,
    segment_ids: np.ndarray,
    num_segments: int,
    starts: np.ndarray | None = None,
) -> Tensor:
    """Row-wise segment maximum, the batched form of max pooling.

    Every segment must be non-empty.  Ties split the gradient evenly,
    matching the subgradient convention of :meth:`Tensor.max`.
    """
    x = Tensor.ensure(x)
    segment_ids = _check_segments(x, segment_ids, num_segments)
    if starts is None:
        starts = segment_starts(segment_ids, num_segments)
        if starts is None:
            counts = np.bincount(segment_ids, minlength=num_segments)
            if np.any(counts == 0):
                raise ValueError(
                    "segment_max requires every segment to be non-empty"
                )
    out = np.asarray(
        get_backend().segment_max(x.data, segment_ids, num_segments, starts)
    )

    def backward(grad: np.ndarray) -> None:
        winners = (x.data == out[segment_ids]).astype(x.data.dtype)
        if starts is not None:
            tie_counts = np.add.reduceat(winners, starts, axis=0)
        else:
            tie_counts = np.zeros_like(out)
            np.add.at(tie_counts, segment_ids, winners)
        winners *= (grad / tie_counts)[segment_ids]
        x._accumulate_owned(winners)

    return Tensor._from_op(out, (x,), backward, "segment_max")
