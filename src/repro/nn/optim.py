"""Optimizers.  The paper trains everything with Adam [29]."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds parameters and clears their gradients."""

    def __init__(self, parameters: Sequence[Tensor]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # state snapshot / restore (loss-spike recovery rolls back through
    # these so a restored run continues with consistent moment estimates)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Deep-copied parameter values plus optimizer slot state."""
        return {"params": [param.data.copy() for param in self.parameters]}

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        for param, data in zip(self.parameters, state["params"]):
            param.data[...] = data


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: Sequence[Tensor], lr: float = 0.01, momentum: float = 0.0
    ):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        for slot, data in zip(self._velocity, state["velocity"]):
            slot[...] = data


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        # Two scratch buffers per parameter (lazily allocated on the
        # first step) keep the whole update allocation-free.
        self._scratch: list[tuple[np.ndarray, np.ndarray] | None] = [
            None for _ in self.parameters
        ]

    def step(self) -> None:
        """One in-place Adam update.

        Every intermediate lives in per-parameter scratch buffers, and
        each IEEE operation matches the textbook expression operand-for-
        operand (scalar·array products commute bitwise), so the result
        is bit-identical to the allocating formulation
        ``param -= lr * (m/bias1) / (sqrt(v/bias2) + eps)`` —
        ``tests/test_kernel_backend.py`` holds it to that.
        """
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for index, (param, m, v) in enumerate(
            zip(self.parameters, self._m, self._v)
        ):
            if param.grad is None:
                continue
            grad = param.grad
            scratch = self._scratch[index]
            if scratch is None or scratch[0].dtype != grad.dtype:
                scratch = (np.empty_like(grad), np.empty_like(grad))
                self._scratch[index] = scratch
            s1, s2 = scratch
            if self.weight_decay:
                # grad + wd*param, without touching param.grad in place.
                np.multiply(param.data, self.weight_decay, out=s1)
                s1 += grad
                grad = s1.copy()
            # m = beta1*m + (1-beta1)*grad
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            m *= self.beta1
            m += s1
            # v = beta2*v + (1-beta2)*grad^2
            np.multiply(grad, grad, out=s1)
            s1 *= 1.0 - self.beta2
            v *= self.beta2
            v += s1
            # param -= lr * (m/bias1) / (sqrt(v/bias2) + eps)
            np.divide(m, bias1, out=s1)
            np.divide(v, bias2, out=s2)
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s1 *= self.lr
            np.divide(s1, s2, out=s1)
            param.data -= s1

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["step_count"] = self._step_count
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        for slot, data in zip(self._m, state["m"]):
            slot[...] = data
        for slot, data in zip(self._v, state["v"]):
            slot[...] = data
        self._step_count = state["step_count"]
