"""Layers: dense feed-forward and graph convolution.

These are the only two layer types the paper uses.  ``GCNConv``
implements the Kipf & Welling propagation rule ``A_hat @ X @ W`` where
``A_hat`` is the symmetrically normalized adjacency with self-loops;
the normalization itself lives in :mod:`repro.gnn.normalize` because it
is a property of the graph, not the layer.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.nn.backend import KernelWorkspace
from repro.nn.init import glorot_uniform, he_normal
from repro.nn.sparse import CSRMatrix, csr_matmul, gcn_layer
from repro.nn.tensor import Tensor

__all__ = ["Module", "Dense", "GCNConv", "Sequential"]

Activation = Callable[[Tensor], Tensor]

_ACTIVATIONS: dict[str, Activation] = {
    "linear": lambda x: x,
    "relu": Tensor.relu,
    "sigmoid": Tensor.sigmoid,
    "tanh": Tensor.tanh,
    "softmax": Tensor.softmax,
}


def resolve_activation(name: str) -> Activation:
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; expected one of {sorted(_ACTIVATIONS)}"
        ) from None


class Module:
    """Minimal parameter container with recursive traversal."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        # vars() preserves __init__ assignment order, which is fixed per
        # class; sorting would silently renumber existing state_dicts.
        # lint: ok
        for value in vars(self).values():
            params.extend(_collect(value))
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {str(i): p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays but model has {len(params)} parameters"
            )
        for i, param in enumerate(params):
            source = state[str(i)]
            if source.shape != param.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: {source.shape} vs {param.data.shape}"
                )
            param.data[...] = source


def _collect(value) -> Iterable[Tensor]:
    if isinstance(value, Tensor):
        if value.requires_grad:
            yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect(item)


class Dense(Module):
    """Fully connected layer ``activation(x @ W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "linear",
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        if activation == "relu":
            weight = he_normal(in_features, out_features, rng)
        else:
            weight = glorot_uniform(in_features, out_features, rng)
        self.weight = Tensor(weight, requires_grad=True)
        self.bias = Tensor(np.zeros((1, out_features)), requires_grad=True)
        self.activation_name = activation
        self._activation = resolve_activation(activation)
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: Tensor) -> Tensor:
        return self._activation(x @ self.weight + self.bias)


class GCNConv(Module):
    """Graph convolution ``activation(A_hat @ X @ W + b)``.

    The caller supplies the (already normalized) propagation matrix so the
    expensive normalization is computed once per graph, not per layer.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        self.weight = Tensor(
            glorot_uniform(in_features, out_features, rng), requires_grad=True
        )
        self.bias = Tensor(np.zeros((1, out_features)), requires_grad=True)
        self.activation_name = activation
        self._activation = resolve_activation(activation)
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, a_hat: Tensor, x: Tensor) -> Tensor:
        return self._activation(a_hat @ (x @ self.weight) + self.bias)

    def sparse(
        self,
        a_hat: "CSRMatrix",
        x: Tensor,
        mask: np.ndarray | None = None,
        workspace: KernelWorkspace | None = None,
        slot: str = "gcn",
    ) -> Tensor:
        """The same propagation with a constant CSR matrix.

        Used by the batched engine, where ``a_hat`` is the
        block-diagonal Â of a whole mini-batch.  When the constant 0/1
        ``mask`` column is supplied and the activation is ReLU, the
        whole layer (including the masking) runs as one fused tape node
        (:func:`repro.nn.sparse.gcn_layer`) — bit-identical to the
        composed form; other activations fall back to composed ops.
        """
        if mask is not None and self.activation_name == "relu":
            return gcn_layer(
                a_hat, x, self.weight, self.bias, mask,
                workspace=workspace, slot=slot,
            )
        out = self._activation(
            csr_matmul(a_hat, x @ self.weight, workspace=workspace, slot=slot)
            + self.bias
        )
        return out if mask is None else out * mask


class Sequential(Module):
    """Chain of single-input modules applied in order."""

    def __init__(self, *layers):
        self.layers = list(layers)

    def __call__(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
