"""From-scratch neural-network substrate on numpy.

Everything the paper's models need — a reverse-mode autograd tensor,
dense and graph-convolution layers, Adam/SGD optimizers, and the loss
functions used by the GNN classifier and CFGExplainer — implemented
without any deep-learning framework.
"""

from repro.nn.backend import (
    KernelWorkspace,
    LoopBackend,
    ScipyBackend,
    SparseBackend,
    get_backend,
    set_backend,
    use_backend,
)
from repro.nn.dtype import (
    COMPUTE_DTYPES,
    compute_dtype,
    get_compute_dtype,
    set_compute_dtype,
)
from repro.nn.guards import (
    NumericalError,
    assert_finite,
    assert_finite_array,
    clip_grad_norm,
    grad_norm,
)
from repro.nn.init import glorot_uniform, he_normal, zeros_init
from repro.nn.layers import Dense, GCNConv, Module, Sequential
from repro.nn.losses import (
    binary_cross_entropy,
    cross_entropy,
    cross_entropy_batch,
    nll_loss,
    nll_loss_from_probs,
)
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.serialize import load_module_into, save_module
from repro.nn.sparse import (
    CSRMatrix,
    csr_matmul,
    gcn_layer,
    segment_max,
    segment_starts,
    segment_sum,
)
from repro.nn.tensor import Tensor, no_grad

__all__ = [
    "COMPUTE_DTYPES",
    "KernelWorkspace",
    "LoopBackend",
    "ScipyBackend",
    "SparseBackend",
    "compute_dtype",
    "get_backend",
    "get_compute_dtype",
    "set_backend",
    "set_compute_dtype",
    "use_backend",
    "NumericalError",
    "assert_finite",
    "assert_finite_array",
    "clip_grad_norm",
    "grad_norm",
    "Tensor",
    "no_grad",
    "CSRMatrix",
    "csr_matmul",
    "gcn_layer",
    "segment_starts",
    "segment_sum",
    "segment_max",
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "Dense",
    "GCNConv",
    "Module",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "nll_loss",
    "nll_loss_from_probs",
    "cross_entropy",
    "cross_entropy_batch",
    "binary_cross_entropy",
    "save_module",
    "load_module_into",
]
