"""Pluggable kernel backend behind the sparse/segment autograd ops.

The profile of batched training (DESIGN.md §Kernel backend) is a short
list of hot kernels: the block-diagonal sparse matmul (forward and its
transposed backward), the segment reductions that implement per-graph
pooling, and buffer churn around them.  This module is the seam that
lets those kernels be swapped without touching autograd, model,
explainer or serving code:

* :class:`SparseBackend` — the protocol: raw ndarray-in/ndarray-out
  kernels with optional preallocated ``out`` buffers.  Implementations
  see scipy CSR matrices and numpy arrays, never :class:`Tensor`; the
  autograd wrappers in :mod:`repro.nn.sparse` stay the only place tape
  closures are built.
* :class:`ScipyBackend` — the default: scipy's compiled CSR kernels,
  driven through ``csr_matvecs`` directly when an output buffer is
  supplied so repeated epochs reuse memory instead of reallocating.
* :class:`LoopBackend` — a deliberately simple row-loop reference
  implementation.  It exists for conformance testing (every backend
  must agree with it) and as the template for dropping in a vectorized
  or compiled kernel.
* :class:`KernelWorkspace` — named preallocated buffers keyed by
  ``(slot, shape, dtype)``.  Slot names are unique per call site (one
  per layer per direction), so no reset protocol is needed: a buffer
  is only ever overwritten by the same call site on the next step,
  after every tensor referencing it is dead.  Parameter gradients are
  never stored in workspace buffers (see ``tests/test_kernel_backend``
  for the aliasing regression tests).

Select a backend process-wide with :func:`set_backend` or temporarily
with :func:`use_backend`.
"""

from __future__ import annotations

import contextlib
from typing import Protocol, runtime_checkable

import numpy as np
from scipy import sparse as _sp

try:  # scipy's compiled CSR kernels (private but stable since 0.x)
    from scipy.sparse import _sparsetools

    _csr_matvecs = _sparsetools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - old scipy
    _csr_matvecs = None

__all__ = [
    "KernelWorkspace",
    "LoopBackend",
    "ScipyBackend",
    "SparseBackend",
    "get_backend",
    "set_backend",
    "use_backend",
]


@runtime_checkable
class SparseBackend(Protocol):
    """Raw kernels the sparse autograd ops are built from.

    ``out``, where accepted, must be a C-contiguous array of the
    result's exact shape and dtype; the kernel overwrites it fully and
    returns it.  With ``out=None`` a fresh array is allocated — the
    semantics are identical either way.
    """

    name: str

    def spmm(
        self, a: "_sp.csr_matrix", x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """``a @ x`` for CSR ``a`` and dense 2-D ``x``."""
        ...

    def segment_sum(
        self,
        x: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
        starts: np.ndarray | None,
    ) -> np.ndarray:
        """Scatter-add rows into segments; ``starts`` is the row offset
        per segment when ``segment_ids`` is sorted (else ``None``)."""
        ...

    def segment_max(
        self,
        x: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
        starts: np.ndarray | None,
    ) -> np.ndarray:
        """Per-segment row-wise maximum (segments must be non-empty)."""
        ...


def _can_use_csr_matvecs(a, x: np.ndarray, out: np.ndarray) -> bool:
    return (
        _csr_matvecs is not None
        and x.ndim == 2
        and a.dtype == x.dtype == out.dtype
        and out.flags.c_contiguous
    )


class ScipyBackend:
    """Default backend: scipy's compiled CSR kernels.

    ``spmm`` drives ``csr_matvecs`` (the kernel under scipy's ``A @ x``)
    directly when an output buffer is supplied: the kernel accumulates
    into a zeroed buffer, so reusing one turns a per-call allocation
    into a memset.  Any shape/dtype mismatch falls back to ``A @ x``.
    """

    name = "scipy"

    def spmm(self, a, x, out=None):
        if out is not None and _can_use_csr_matvecs(a, x, out):
            out[...] = 0.0
            n_rows, n_cols = a.shape
            _csr_matvecs(
                n_rows, n_cols, x.shape[1],
                a.indptr, a.indices, a.data,
                np.ascontiguousarray(x).ravel(), out.ravel(),
            )
            return out
        result = a @ x
        if out is not None:
            out[...] = result
            return out
        return result

    def segment_sum(self, x, segment_ids, num_segments, starts):
        if starts is not None:
            # Sorted segment ids (the GraphBatch layout): compiled
            # reduceat — same left-to-right accumulation order as the
            # scatter-add below, so the results are bit-identical.
            return np.add.reduceat(x, starts, axis=0)
        out = np.zeros((num_segments,) + x.shape[1:], dtype=x.dtype)
        np.add.at(out, segment_ids, x)
        return out

    def segment_max(self, x, segment_ids, num_segments, starts):
        if starts is not None:
            return np.maximum.reduceat(x, starts, axis=0)
        out = np.full((num_segments,) + x.shape[1:], -np.inf, dtype=x.dtype)
        np.maximum.at(out, segment_ids, x)
        return out


class LoopBackend:
    """Row-loop reference backend (conformance tests + drop-in template)."""

    name = "loop"

    def spmm(self, a, x, out=None):
        if out is None:
            out = np.zeros((a.shape[0],) + x.shape[1:], dtype=np.result_type(a, x))
        else:
            out[...] = 0.0
        indptr, indices, data = a.indptr, a.indices, a.data
        for row in range(a.shape[0]):
            start, stop = indptr[row], indptr[row + 1]
            if start != stop:
                out[row] = data[start:stop] @ x[indices[start:stop]]
        return out

    def segment_sum(self, x, segment_ids, num_segments, starts):
        out = np.zeros((num_segments,) + x.shape[1:], dtype=x.dtype)
        for row, segment in enumerate(segment_ids):
            out[segment] += x[row]
        return out

    def segment_max(self, x, segment_ids, num_segments, starts):
        out = np.full((num_segments,) + x.shape[1:], -np.inf, dtype=x.dtype)
        for row, segment in enumerate(segment_ids):
            np.maximum(out[segment], x[row], out=out[segment])
        return out


_BACKEND: SparseBackend = ScipyBackend()


def get_backend() -> SparseBackend:
    """The backend the sparse autograd ops currently dispatch to."""
    return _BACKEND


def set_backend(backend: SparseBackend) -> SparseBackend:
    """Install ``backend`` process-wide; returns the previous one."""
    global _BACKEND
    if not isinstance(backend, SparseBackend):
        raise TypeError(
            f"backend must implement the SparseBackend protocol, got {backend!r}"
        )
    previous = _BACKEND
    _BACKEND = backend
    return previous


@contextlib.contextmanager
def use_backend(backend: SparseBackend):
    """Temporarily dispatch kernels to ``backend`` (restores on exit)."""
    previous = set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


class KernelWorkspace:
    """Named preallocated buffers for kernel outputs.

    ``buffer(slot, shape, dtype)`` returns the same array on every call
    with the same key, uninitialized — callers fully overwrite it.
    Distinct call sites use distinct slot names, so two live tensors
    never share a buffer; a slot's buffer is recycled only on the *next*
    training step, when the previous step's tensors are dead.

    Owned by :class:`repro.gnn.batch.BatchPacker` (training) and
    created per pass by :func:`repro.gnn.batch.iter_batches`
    (evaluation/serving); attached to each :class:`GraphBatch`.
    """

    __slots__ = ("_buffers", "hits", "allocations")

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}
        self.hits = 0
        self.allocations = 0

    def buffer(self, slot: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (slot, shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self.allocations += 1
        else:
            self.hits += 1
        return buf

    def owns(self, array: np.ndarray) -> bool:
        """True when ``array`` shares memory with any workspace buffer."""
        return any(np.shares_memory(array, buf) for buf in self._buffers.values())

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()
