"""Process-wide compute-dtype control for the numpy substrate.

Every tensor, kernel buffer and optimizer slot is created in the
*compute dtype*: ``float64`` by default (the bit-exact reference the
whole test suite is written against), switchable to ``float32`` for
throughput — half the memory traffic through the sparse matmul /
segment kernels that dominate batched training.

The switch is a context manager, mirroring :func:`repro.nn.no_grad`::

    with compute_dtype(np.float32):
        model = GCNClassifier(...)          # float32 parameters
        train_gnn(model, train_set, ...)    # float32 end to end

Tolerance contract (documented in DESIGN.md §Kernel backend): float32
training losses track the float64 reference to ~1e-4 relative over
short runs; they are *not* bit-identical, and runs that need exact
reproducibility must stay in the default float64.  Mixed-dtype inputs
are never silently truncated — ops follow numpy promotion, so a
float64 tensor entering a float32 run upcasts the op result.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = [
    "COMPUTE_DTYPES",
    "compute_dtype",
    "get_compute_dtype",
    "set_compute_dtype",
]

#: Dtypes the kernels support end to end.
COMPUTE_DTYPES = (np.float64, np.float32)

_COMPUTE_DTYPE = np.float64


def _validate(dtype) -> "np.dtype":
    resolved = np.dtype(dtype)
    if resolved not in (np.dtype(d) for d in COMPUTE_DTYPES):
        names = [np.dtype(d).name for d in COMPUTE_DTYPES]
        raise ValueError(f"compute dtype must be one of {names}, got {resolved}")
    return resolved.type


def get_compute_dtype():
    """The dtype new tensors and kernel buffers are created with."""
    return _COMPUTE_DTYPE


def set_compute_dtype(dtype) -> None:
    """Set the process-wide compute dtype (``float64`` or ``float32``)."""
    global _COMPUTE_DTYPE
    _COMPUTE_DTYPE = _validate(dtype)


@contextlib.contextmanager
def compute_dtype(dtype):
    """Temporarily switch the compute dtype (restores on exit)."""
    global _COMPUTE_DTYPE
    previous = _COMPUTE_DTYPE
    _COMPUTE_DTYPE = _validate(dtype)
    try:
        yield
    finally:
        _COMPUTE_DTYPE = previous
