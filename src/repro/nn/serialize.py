"""Checkpointing for :class:`Module` models.

Saves the flat parameter list plus a user-supplied config dict to one
``.npz`` file; loading validates shapes against a freshly constructed
model, so architecture mismatches fail loudly instead of silently
mis-assigning weights.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Module

__all__ = ["checked_parameter_arrays", "load_module_into", "save_module"]


def save_module(
    module: Module, path: str | Path, config: dict | None = None
) -> None:
    """Write the module's parameters (and optional config) to ``path``."""
    path = Path(path)
    arrays = {f"param_{i}": p.data for i, p in enumerate(module.parameters())}
    arrays["__config__"] = np.frombuffer(
        json.dumps(config or {}).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def checked_parameter_arrays(
    path: str | Path, module: Module
) -> tuple[list[np.ndarray], dict]:
    """Read and validate a checkpoint against ``module`` without mutating it.

    Returns ``(arrays, config)`` where ``arrays[i]`` is the stored value
    of ``module.parameters()[i]``.  Raises ``ValueError`` on parameter
    count or shape mismatch — before anything is written — so callers
    can stage several checkpoints and only apply them once every file
    has validated.
    """
    path = Path(path)
    if not path.suffix:
        path = path.with_suffix(".npz")
    data = np.load(path)
    params = module.parameters()
    stored = [key for key in data.files if key.startswith("param_")]
    if len(stored) != len(params):
        raise ValueError(
            f"checkpoint has {len(stored)} parameters, model has {len(params)}"
        )
    arrays = []
    for i, param in enumerate(params):
        array = data[f"param_{i}"]
        if array.shape != param.data.shape:
            raise ValueError(
                f"parameter {i}: checkpoint shape {array.shape} != model {param.data.shape}"
            )
        arrays.append(array)
    config_bytes = data["__config__"].tobytes() if "__config__" in data.files else b"{}"
    return arrays, json.loads(config_bytes.decode())


def load_module_into(module: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_module` into ``module``.

    Returns the config dict stored alongside the weights.  Raises
    ``ValueError`` when the parameter count or any shape differs; every
    shape is validated before the first parameter is written, so a
    mismatch never leaves the module half-loaded.
    """
    arrays, config = checked_parameter_arrays(path, module)
    for param, array in zip(module.parameters(), arrays):
        param.data[...] = array
    return config
