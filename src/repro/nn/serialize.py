"""Checkpointing for :class:`Module` models.

Saves the flat parameter list plus a user-supplied config dict to one
``.npz`` file; loading validates shapes against a freshly constructed
model, so architecture mismatches fail loudly instead of silently
mis-assigning weights.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import Module

__all__ = ["save_module", "load_module_into"]


def save_module(
    module: Module, path: str | Path, config: dict | None = None
) -> None:
    """Write the module's parameters (and optional config) to ``path``."""
    path = Path(path)
    arrays = {f"param_{i}": p.data for i, p in enumerate(module.parameters())}
    arrays["__config__"] = np.frombuffer(
        json.dumps(config or {}).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_module_into(module: Module, path: str | Path) -> dict:
    """Load parameters saved by :func:`save_module` into ``module``.

    Returns the config dict stored alongside the weights.  Raises
    ``ValueError`` when the parameter count or any shape differs.
    """
    path = Path(path)
    if not path.suffix:
        path = path.with_suffix(".npz")
    data = np.load(path)
    params = module.parameters()
    stored = [key for key in data.files if key.startswith("param_")]
    if len(stored) != len(params):
        raise ValueError(
            f"checkpoint has {len(stored)} parameters, model has {len(params)}"
        )
    for i, param in enumerate(params):
        array = data[f"param_{i}"]
        if array.shape != param.data.shape:
            raise ValueError(
                f"parameter {i}: checkpoint shape {array.shape} != model {param.data.shape}"
            )
        param.data[...] = array
    config_bytes = data["__config__"].tobytes() if "__config__" in data.files else b"{}"
    return json.loads(config_bytes.decode())
