"""A small reverse-mode automatic-differentiation engine on numpy.

The paper jointly trains two coupled networks through a multiplicative
interaction (``Z_weighted = psi * Z``), and the baseline explainers
optimize soft masks through a frozen GCN.  A generic autograd tensor
keeps all of those expressible with one gradient implementation that is
property-tested against finite differences (see ``tests/test_autograd.py``).

Only the operations the models need are implemented; each op records a
backward closure on a tape and gradients are accumulated by a reverse
topological walk from the loss.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.dtype import get_compute_dtype

__all__ = ["Tensor", "no_grad"]

# Global switch consulted when building the graph.  Inside ``no_grad()``
# blocks no backward closures are recorded, which makes inference cheap.
_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Needed because an op like ``x + b`` with ``b`` of shape ``(1, k)``
    broadcasts ``b`` across rows; the gradient flowing back to ``b`` must
    be summed over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes numpy added on the left.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    array = np.asarray(value, dtype=get_compute_dtype())
    return array


class Tensor:
    """A numpy array plus the machinery to backpropagate through it.

    Parameters
    ----------
    data:
        Anything ``numpy.asarray`` accepts; stored in the compute dtype
        (:func:`repro.nn.dtype.get_compute_dtype` — float64 unless a
        ``compute_dtype`` context says otherwise).
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    # Make numpy defer to Tensor.__radd__ etc. instead of elementwise-wrapping.
    __array_priority__ = 100

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op = "leaf"

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        # Op results keep their computed dtype (numpy promotion rules);
        # only *leaf* construction casts to the compute dtype.  Bypassing
        # __init__ also skips a redundant asarray per op on the hot path.
        out = Tensor.__new__(Tensor)
        out.data = data if isinstance(data, np.ndarray) else np.asarray(data)
        out.grad = None
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out.requires_grad = requires
        if requires:
            out._backward = backward
            out._parents = tuple(parents)
            out._op = op
        else:
            out._backward = None
            out._parents = ()
            out._op = op
        return out

    @staticmethod
    def ensure(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy); treat as read-only."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        detached = Tensor.__new__(Tensor)
        detached.data = self.data.copy()
        detached.requires_grad = False
        detached.grad = None
        detached._backward = None
        detached._parents = ()
        detached._op = "leaf"
        return detached

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, op={self._op}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_unbroadcast(grad)
            if other.requires_grad:
                other._accumulate_unbroadcast(grad)

        return Tensor._from_op(data, (self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(-grad)

        return Tensor._from_op(-self.data, (self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate_owned(_unbroadcast(grad * self.data, other.shape))

        return Tensor._from_op(data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate_owned(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._from_op(data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(data, (self,), backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_owned(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate_owned(self.data.T @ grad)

        return Tensor._from_op(data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        original = self.shape
        data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._from_op(data, (self,), backward, "reshape")

    @property
    def T(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return Tensor._from_op(data, (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate_owned(full)

        return Tensor._from_op(data, (self,), backward, "getitem")

    def scatter2d(
        self, shape: tuple[int, int], rows: np.ndarray, cols: np.ndarray
    ) -> "Tensor":
        """Place this 1-D tensor's values at ``(rows[i], cols[i])`` of a
        zero matrix of ``shape``.  Positions must be unique.

        The differentiable inverse of fancy indexing: used to scatter
        per-edge mask values into an adjacency-shaped matrix.
        """
        values = self.data.reshape(-1)
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if values.size != rows.size or rows.size != cols.size:
            raise ValueError("values, rows and cols must have equal length")
        data = np.zeros(shape, dtype=self.data.dtype)
        data[rows, cols] = values

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad[rows, cols].reshape(self.data.shape))

        return Tensor._from_op(data, (self,), backward, "scatter2d")

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        offsets = np.cumsum([0] + [t.data.shape[axis] for t in tensors])

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._from_op(data, tensors, backward, "concat")

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
            self._accumulate_owned(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._from_op(data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            maxima = data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
                maxima = np.expand_dims(data, axis=axis)
            mask = (self.data == maxima).astype(self.data.dtype)
            # Split gradient evenly across ties so it stays a subgradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate_owned(mask * expanded / counts)

        return Tensor._from_op(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * (self.data > 0.0))

        return Tensor._from_op(data, (self,), backward, "relu")

    def sigmoid(self) -> "Tensor":
        # Numerically stable piecewise formulation.
        out = np.empty_like(self.data)
        positive = self.data >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-self.data[positive]))
        exp_x = np.exp(self.data[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * out * (1.0 - out))

        return Tensor._from_op(out, (self,), backward, "sigmoid")

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * (1.0 - out**2))

        return Tensor._from_op(out, (self,), backward, "tanh")

    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad * out)

        return Tensor._from_op(out, (self,), backward, "exp")

    def log(self, eps: float = 0.0) -> "Tensor":
        """Natural log; pass ``eps`` to compute ``log(x + eps)``.

        The paper's loss uses ``log(Y[C] + 1e-20)`` to dodge log(0).
        """
        shifted = self.data + eps
        out = np.log(shifted)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad / shifted)

        return Tensor._from_op(out, (self,), backward, "log")

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            # d softmax: s * (grad - sum(grad * s))
            dot = (grad * out).sum(axis=axis, keepdims=True)
            self._accumulate_owned(out * (grad - dot))

        return Tensor._from_op(out, (self,), backward, "softmax")

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_norm
        softmax = np.exp(out)

        def backward(grad: np.ndarray) -> None:
            self._accumulate_owned(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return Tensor._from_op(out, (self,), backward, "log_softmax")

    def logsumexp(self, axis: int = 0, keepdims: bool = False, beta: float = 1.0) -> "Tensor":
        """``(1/beta) * log Σ exp(beta * x)`` along ``axis`` — smooth max.

        Numerically stabilized by shifting with the (constant) max;
        the gradient is the softmax of ``beta * x``, concentrating on
        the largest entries, which is what makes it useful as a
        concentrated-but-differentiable pooling operator.
        """
        scaled = self * beta
        shift = float(scaled.data.max()) if scaled.data.size else 0.0
        pooled = (scaled - shift).exp().sum(axis=axis, keepdims=keepdims).log()
        return (pooled + shift) * (1.0 / beta)

    # ------------------------------------------------------------------
    # backpropagation
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` (shared with the caller: always copied first)."""
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Add a gradient array this tensor may take ownership of.

        The hot-path variant of :meth:`_accumulate`: backward closures
        that just *computed* ``grad`` (a fresh product, matmul result,
        gather, ...) hand it over instead of paying a full copy.  The
        caller must not read or write the array afterwards.
        """
        if self.grad is None:
            if grad.dtype != self.data.dtype:
                grad = grad.astype(self.data.dtype)
            self.grad = grad
        else:
            self.grad += grad

    def _accumulate_unbroadcast(self, grad: np.ndarray) -> None:
        """Unbroadcast then accumulate, owning the result when fresh."""
        reduced = _unbroadcast(grad, self.shape)
        if reduced is grad:
            self._accumulate(reduced)
        else:
            self._accumulate_owned(reduced)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def stack_rows(rows: Iterable[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor, differentiably."""
    rows = [Tensor.ensure(r).reshape(1, -1) for r in rows]
    return Tensor.concatenate(rows, axis=0)
