"""Loss functions.

``nll_loss_from_probs`` is the paper's loss (Section IV-A): negative
log-likelihood computed on *probabilities* (post-softmax), with the
``+1e-20`` bias the authors use to avoid ``log(0)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "nll_loss",
    "nll_loss_from_probs",
    "cross_entropy",
    "cross_entropy_batch",
    "binary_cross_entropy",
]

#: Bias added inside the log, exactly as in the paper's implementation note.
LOG_BIAS = 1e-20


def nll_loss_from_probs(probs: Tensor, target: int, eps: float = LOG_BIAS) -> Tensor:
    """``-log(Y[C] + eps)`` for one sample whose class probabilities are ``probs``.

    ``probs`` may be shaped ``(C,)`` or ``(1, C)``.
    """
    flat = probs.reshape(-1)
    return -(flat[target : target + 1].log(eps=eps).sum())

def nll_loss(log_probs: Tensor, target: int) -> Tensor:
    """Negative log-likelihood given *log*-probabilities."""
    flat = log_probs.reshape(-1)
    return -(flat[target : target + 1].sum())


def cross_entropy(logits: Tensor, target: int) -> Tensor:
    """Cross-entropy on raw logits (stable log-softmax formulation)."""
    return nll_loss(logits.log_softmax(axis=-1), target)


def cross_entropy_batch(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy over a batch of logit rows.

    ``logits`` has shape ``[B, C]`` and ``targets`` holds B class
    indices.  Equals the mean of per-row :func:`cross_entropy`, so a
    batched training step reproduces the per-graph loop's loss exactly.
    """
    targets = np.asarray(targets, dtype=np.intp).reshape(-1)
    batch = logits.shape[0]
    if targets.shape[0] != batch:
        raise ValueError(
            f"{targets.shape[0]} targets for {batch} logit rows"
        )
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(batch), targets]
    return -(picked.sum() * (1.0 / batch))


def binary_cross_entropy(probs: Tensor, targets: np.ndarray, eps: float = 1e-12) -> Tensor:
    """Mean binary cross-entropy between probabilities and 0/1 targets."""
    targets = np.asarray(targets, dtype=np.float64)
    term_pos = Tensor(targets) * probs.log(eps=eps)
    term_neg = Tensor(1.0 - targets) * (1.0 - probs).log(eps=eps)
    return -(term_pos + term_neg).mean()
