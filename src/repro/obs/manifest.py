"""Run manifests: what ran, on what, and where the time went.

A :class:`RunManifest` is captured at pipeline start — seed, the full
``ExperimentConfig`` snapshot, git SHA, platform, and the versions of
the numeric packages — and *finalized* at pipeline end with the
tracer's aggregated span statistics and counter deltas.  Written next
to the evaluation artifacts it makes a run reproducible (the inputs)
and auditable (the per-stage costs), the property arXiv:2504.16316
identifies as the precondition for trusting explainer comparisons.

The identity fields are deterministic: :meth:`RunManifest.fingerprint`
hashes everything except wall-clock values, so two runs of the same
config on the same checkout produce the same fingerprint even though
their timings differ.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.obs.trace import Tracer

__all__ = [
    "GRAPH_FINGERPRINT_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "fingerprint_graph",
]

#: Bumped whenever the serialized layout changes shape.
MANIFEST_SCHEMA_VERSION = 1

#: Packages whose versions materially affect numeric results.
_TRACKED_PACKAGES = ("numpy", "scipy", "networkx")


def _git_sha() -> str | None:
    """HEAD of the repository containing this file, if git is usable."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else None


def _package_versions() -> dict[str, str]:
    from importlib import metadata

    versions: dict[str, str] = {}
    for name in _TRACKED_PACKAGES:
        try:
            versions[name] = metadata.version(name)
        except metadata.PackageNotFoundError:
            continue
    return versions


def _config_snapshot(config: Any) -> dict | None:
    """A JSON-ready dump of an ``ExperimentConfig`` (or any dataclass)."""
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        raw = dataclasses.asdict(config)
    elif isinstance(config, dict):
        raw = dict(config)
    else:
        raise TypeError(f"config must be a dataclass or dict, got {type(config)}")
    return json.loads(json.dumps(raw, default=_jsonable))


def _jsonable(value: Any):
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, Path):
        return str(value)
    return str(value)


#: Bumped whenever :func:`fingerprint_graph`'s hashing scheme changes,
#: so persisted cache keys from an older scheme can never collide with
#: newer ones.
GRAPH_FINGERPRINT_VERSION = 1


def fingerprint_graph(graph: Any, rounds: int = 3) -> str:
    """Content-address an ACFG: hash of structure + features, node-order
    insensitive.

    The digest is a Weisfeiler-Lehman refinement over SHA-256 labels:
    each node starts as the hash of its (canonicalized float64) feature
    row, then for ``rounds`` iterations absorbs the sorted multiset of
    ``(direction, edge type, neighbor label)`` messages, and the final
    fingerprint hashes the sorted multiset of node labels.  Properties
    the serving cache relies on:

    * **Permutation-invariant** — relabeling nodes consistently
      (``P·A·Pᵀ``, ``P·X``) leaves the fingerprint unchanged, so the
      same program disassembled with a different block order hits the
      same cache entry.
    * **Content-sensitive** — any feature edit, added/removed edge, or
      edge-type flip (conditional 2 vs unconditional 1) changes it.
    * **Padding-insensitive** — only the first ``n_real`` nodes
      participate; padded copies of a graph share its fingerprint.
    * **Process-independent** — pure SHA-256 over canonical bytes, no
      ``hash()``/randomization, so keys survive daemon restarts.

    ``graph`` is duck-typed (``adjacency``/``features``/``n_real``)
    because :mod:`repro.acfg` imports :mod:`repro.obs`, not vice versa.
    Like all WL schemes, graphs a ``rounds``-step WL refinement cannot
    distinguish collide — irrelevant in practice since block feature
    rows are nearly unique, and harmless here: a collision only serves
    a cached explanation for a WL-equivalent graph.
    """
    adjacency = np.asarray(graph.adjacency, dtype=np.float64)
    n = int(getattr(graph, "n_real", None) or adjacency.shape[0])
    adjacency = adjacency[:n, :n]
    # +0.0 canonicalizes -0.0 so byte views of equal values agree.
    features = np.asarray(graph.features, dtype=np.float64)[:n] + 0.0

    labels = [hashlib.sha256(features[i].tobytes()).digest() for i in range(n)]
    sources, targets = np.nonzero(adjacency)
    weights = [np.float64(w).tobytes() for w in adjacency[sources, targets]]
    out_edges: list[list[int]] = [[] for _ in range(n)]
    in_edges: list[list[int]] = [[] for _ in range(n)]
    for k in range(len(sources)):
        out_edges[sources[k]].append(k)
        in_edges[targets[k]].append(k)

    for _ in range(rounds):
        refined = []
        for i in range(n):
            digest = hashlib.sha256(labels[i])
            messages = sorted(
                [b"o" + weights[k] + labels[targets[k]] for k in out_edges[i]]
                + [b"i" + weights[k] + labels[sources[k]] for k in in_edges[i]]
            )
            for message in messages:
                digest.update(message)
            refined.append(digest.digest())
        labels = refined

    digest = hashlib.sha256(
        f"acfg-wl:v{GRAPH_FINGERPRINT_VERSION}:n={n}:rounds={rounds}".encode()
    )
    for label in sorted(labels):
        digest.update(label)
    return digest.hexdigest()


@dataclass
class RunManifest:
    """Identity + cost record of one pipeline run."""

    schema_version: int = MANIFEST_SCHEMA_VERSION
    created_at: str = ""
    seed: int | None = None
    config: dict | None = None
    git_sha: str | None = None
    platform: dict = field(default_factory=dict)
    packages: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    # filled by finalize():
    total_wall_seconds: float | None = None
    total_cpu_seconds: float | None = None
    span_stats: dict = field(default_factory=dict)
    span_tree: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        config: Any = None,
        seed: int | None = None,
        extra: dict | None = None,
    ) -> "RunManifest":
        """Snapshot the run identity at pipeline start."""
        import datetime

        snapshot = _config_snapshot(config)
        if seed is None and snapshot is not None:
            seed = snapshot.get("seed")
        return cls(
            created_at=datetime.datetime.now(datetime.timezone.utc).isoformat(),
            seed=seed,
            config=snapshot,
            git_sha=_git_sha(),
            platform={
                "python": sys.version.split()[0],
                "implementation": platform.python_implementation(),
                "system": platform.system(),
                "machine": platform.machine(),
            },
            packages=_package_versions(),
            extra=dict(extra or {}),
        )

    def finalize(self, tracer: "Tracer") -> "RunManifest":
        """Fold a tracer's recorded spans and counters into the manifest."""
        self.span_stats = {
            name: stats.to_dict() for name, stats in sorted(tracer.aggregate().items())
        }
        self.span_tree = [root.to_dict() for root in tracer.roots]
        self.metrics = tracer.metrics_delta()
        self.total_wall_seconds = sum(r.wall_seconds for r in tracer.roots)
        self.total_cpu_seconds = sum(r.cpu_seconds for r in tracer.roots)
        return self

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over the deterministic identity fields only."""
        identity = {
            "schema_version": self.schema_version,
            "seed": self.seed,
            "config": self.config,
            "git_sha": self.git_sha,
            "platform": self.platform,
            "packages": self.packages,
            "extra": self.extra,
        }
        payload = json.dumps(identity, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["fingerprint"] = self.fingerprint()
        return out

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        data = json.loads(Path(path).read_text())
        data.pop("fingerprint", None)
        return cls(**data)
