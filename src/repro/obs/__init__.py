"""Observability: span tracing, process-wide metrics, run manifests.

Three pieces, designed to stay out of the hot path unless asked for:

* :mod:`repro.obs.trace` — nested :func:`span` context managers with
  wall/CPU timing and per-span counters, recorded by a per-run
  :class:`Tracer` (installed with :func:`tracing`) and optionally
  mirrored to a JSONL sink.  With no tracer active, ``span()`` is a
  shared no-op.
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  of named counters (cache hits/misses, graphs trained, explainer
  iterations) that instrumented modules increment unconditionally.
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the identity
  (seed, config, git SHA, platform, package versions) and cost
  (aggregated span statistics, counter deltas) record of one run.

``python -m repro.eval profile`` ties them together; see
DESIGN.md §Observability for the span taxonomy and manifest schema.
"""

from repro.obs.manifest import (
    GRAPH_FINGERPRINT_VERSION,
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    fingerprint_graph,
)
from repro.obs.metrics import MetricsRegistry, metrics_registry
from repro.obs.trace import (
    Span,
    SpanStats,
    Tracer,
    add_counter,
    current_span,
    get_tracer,
    iter_spans,
    span,
    tracing,
)

__all__ = [
    "GRAPH_FINGERPRINT_VERSION",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "RunManifest",
    "Span",
    "SpanStats",
    "Tracer",
    "add_counter",
    "current_span",
    "fingerprint_graph",
    "get_tracer",
    "iter_spans",
    "metrics_registry",
    "span",
    "tracing",
]
