"""Process-wide named counters.

A :class:`MetricsRegistry` is a flat ``name -> float`` accumulator.
One process-wide instance (:func:`metrics_registry`) collects counts
from anywhere in the library — cache hits and misses, graphs pushed
through training, explainer iterations — without requiring a tracer to
be active.  The tracing layer snapshots it at run start and records the
delta in the :class:`~repro.obs.manifest.RunManifest`, so counters
accumulated by unrelated earlier work in the same process never leak
into a run's report.

Increments are a dict update guarded by a lock — cheap enough to leave
permanently enabled on paths that do real numerical work per call.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry", "metrics_registry"]


class MetricsRegistry:
    """A named-counter accumulator, safe for concurrent increments."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def get(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> dict[str, float]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def delta_since(self, baseline: dict[str, float]) -> dict[str, float]:
        """Counter increases since ``baseline`` (a prior snapshot)."""
        current = self.snapshot()
        out: dict[str, float] = {}
        for name, value in current.items():
            diff = value - baseline.get(name, 0.0)
            if diff != 0.0:
                out[name] = diff
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters)


_GLOBAL = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide registry every instrumented module reports to."""
    return _GLOBAL
