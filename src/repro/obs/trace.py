"""Nested span tracing with wall/CPU clocks and per-span counters.

The core abstraction is a :class:`Span` — a named, timed region of the
pipeline (``"pipeline.corpus"``, ``"train.epoch"``,
``"explain.CFGExplainer"``) that may nest.  Spans are recorded by a
:class:`Tracer`; at most one tracer is *active* per process at a time,
installed with the :func:`tracing` context manager:

    with tracing(sink="trace.jsonl") as tracer:
        with span("pipeline") :
            with span("pipeline.corpus"):
                ...
                add_counter("corpus.graphs", len(corpus))
    print(tracer.aggregate())

Instrumentation sites call :func:`span` unconditionally.  When no
tracer is active the call returns a shared no-op context manager — a
dict-free, allocation-free fast path — so the instrumented library
costs nothing in ordinary (untraced) runs; the <3 % overhead budget on
the batched training bench is met by construction.

Every span records wall time (``perf_counter``) and process CPU time
(``process_time``), plus any counters credited to it while it was the
innermost open span.  Counters also flow into the process-wide
:func:`~repro.obs.metrics.metrics_registry`.  A tracer can mirror every
span close (and the final counter totals) to a JSONL sink for offline
analysis.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

from repro.obs.metrics import MetricsRegistry, metrics_registry

__all__ = [
    "Span",
    "SpanStats",
    "Tracer",
    "add_counter",
    "current_span",
    "get_tracer",
    "iter_spans",
    "span",
    "tracing",
]


@dataclass
class Span:
    """One timed region.  Mutated only by its owning tracer."""

    name: str
    depth: int
    started_at: float  # epoch seconds, for sinks
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    status: str = "open"  # "open" | "ok" | "error"
    error: str | None = None
    counters: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def add(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def to_dict(self) -> dict:
        """JSON-ready recursive form (used by sinks and the manifest)."""
        out: dict = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
        }
        if self.error:
            out["error"] = self.error
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


@dataclass
class SpanStats:
    """Aggregate over every span sharing one name."""

    name: str
    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def mean_wall_seconds(self) -> float:
        return self.wall_seconds / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "mean_wall_seconds": self.mean_wall_seconds,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        return out


class Tracer:
    """Records a tree of spans and mirrors closes to an optional sink."""

    def __init__(
        self,
        sink: str | Path | IO[str] | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.roots: list[Span] = []
        self.metrics = metrics if metrics is not None else metrics_registry()
        self._stack: list[Span] = []
        self._sink_owned = False
        self._sink: IO[str] | None = None
        if sink is not None:
            if isinstance(sink, (str, Path)):
                path = Path(sink)
                path.parent.mkdir(parents=True, exist_ok=True)
                self._sink = path.open("w", encoding="utf-8")
                self._sink_owned = True
            else:
                self._sink = sink
        self._metrics_baseline = self.metrics.snapshot()
        # perf_counter/process_time marks live outside the dataclass so
        # serialized spans never carry raw clock readings.
        self._marks: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def start_span(self, name: str) -> Span:
        opened = Span(name=name, depth=len(self._stack), started_at=time.time())
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        self._marks[id(opened)] = (time.perf_counter(), time.process_time())
        return opened

    def end_span(self, opened: Span, error: BaseException | None = None) -> None:
        if not self._stack or self._stack[-1] is not opened:
            raise RuntimeError(
                f"span {opened.name!r} closed out of order "
                f"(open stack: {[s.name for s in self._stack]})"
            )
        t0, c0 = self._marks.pop(id(opened))
        opened.wall_seconds = time.perf_counter() - t0
        opened.cpu_seconds = time.process_time() - c0
        if error is not None:
            opened.status = "error"
            opened.error = f"{type(error).__name__}: {error}"
        else:
            opened.status = "ok"
        self._stack.pop()
        self._emit({"type": "span", "depth": opened.depth,
                    "started_at": opened.started_at, **opened.to_dict()})

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def add_counter(self, name: str, value: float = 1.0) -> None:
        if self._stack:
            self._stack[-1].add(name, value)
        self.metrics.inc(name, value)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def aggregate(self) -> dict[str, SpanStats]:
        """Per-name statistics over the whole recorded tree."""
        stats: dict[str, SpanStats] = {}

        def visit(node: Span) -> None:
            entry = stats.setdefault(node.name, SpanStats(node.name))
            entry.count += 1
            entry.wall_seconds += node.wall_seconds
            entry.cpu_seconds += node.cpu_seconds
            for key, value in node.counters.items():
                entry.counters[key] = entry.counters.get(key, 0.0) + value
            for child in node.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return stats

    def metrics_delta(self) -> dict[str, float]:
        """Process-wide counter increases since this tracer was created."""
        return self.metrics.delta_since(self._metrics_baseline)

    def close(self) -> None:
        """Flush the metrics line and release an owned sink file."""
        if self._sink is not None:
            self._emit({"type": "metrics", "counters": self.metrics_delta()})
            if self._sink_owned:
                self._sink.close()
            self._sink = None

    def _emit(self, event: dict) -> None:
        if self._sink is None:
            return
        # Children are serialized with their parent's closing event;
        # nested payloads are dropped here to keep lines flat.
        event = {k: v for k, v in event.items() if k != "children"}
        self._sink.write(json.dumps(event) + "\n")
        self._sink.flush()


# ----------------------------------------------------------------------
# module-level active tracer + the zero-cost disabled path
# ----------------------------------------------------------------------
_ACTIVE: Tracer | None = None


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, name: str, value: float = 1.0) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager binding one span to the active tracer."""

    __slots__ = ("_tracer", "_name", "_span")

    def __init__(self, tracer: Tracer, name: str):
        self._tracer = tracer
        self._name = name
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start_span(self._name)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._span is not None
        self._tracer.end_span(self._span, error=exc)
        return False  # never swallow exceptions


def get_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is disabled."""
    return _ACTIVE


def span(name: str):
    """Open a named span under the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return _SpanContext(tracer, name)


def current_span() -> Span | None:
    tracer = _ACTIVE
    return tracer.current() if tracer is not None else None


def add_counter(name: str, value: float = 1.0) -> None:
    """Credit the innermost open span and the process-wide registry.

    Unlike :func:`span` this is *not* free when tracing is disabled: it
    still increments the global registry, by design — cache hit/miss
    and throughput counters stay observable in untraced runs.
    """
    tracer = _ACTIVE
    if tracer is not None:
        tracer.add_counter(name, value)
    else:
        metrics_registry().inc(name, value)


class tracing:
    """Install a :class:`Tracer` as the process's active tracer.

    Usable as a context manager; nesting is rejected (one run, one
    tracer).  The tracer is closed (sink flushed) on exit but keeps its
    recorded spans for aggregation and rendering.
    """

    def __init__(self, sink: str | Path | IO[str] | None = None,
                 metrics: MetricsRegistry | None = None):
        self._sink = sink
        self._metrics = metrics
        self.tracer: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a tracer is already active in this process")
        self.tracer = Tracer(sink=self._sink, metrics=self._metrics)
        _ACTIVE = self.tracer
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _ACTIVE
        assert self.tracer is not None
        _ACTIVE = None
        self.tracer.close()
        return False


def iter_spans(roots: list[Span]) -> Iterator[Span]:
    """Depth-first walk over a span forest."""
    stack = list(reversed(roots))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))
