"""Attributed Control Flow Graphs: Table I features, padding, datasets."""

from repro.acfg.dataset import ACFGDataset, FeatureScaler, train_test_split
from repro.acfg.features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    block_features,
    cfg_feature_matrix,
)
from repro.acfg.graph import ACFG, from_sample
from repro.acfg.ingest import (
    CorpusIngest,
    IngestPolicy,
    SampleIngest,
    ingest_corpus,
    ingest_sample,
)

__all__ = [
    "FEATURE_NAMES",
    "NUM_FEATURES",
    "block_features",
    "cfg_feature_matrix",
    "ACFG",
    "from_sample",
    "ACFGDataset",
    "FeatureScaler",
    "train_test_split",
    "CorpusIngest",
    "IngestPolicy",
    "SampleIngest",
    "ingest_corpus",
    "ingest_sample",
]
