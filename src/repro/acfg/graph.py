"""The ``ACFG`` container: weighted adjacency + node features + label.

Follows Section II-A: ``A ∈ {0,1,2}^{N×N}`` (1 = fallthrough/jump,
2 = call), ``X ∈ R^{N×d}`` with d = 12.  Graphs are padded to a fixed
``N`` with zero-feature, zero-edge temporary nodes exactly as the paper
does for its GCN (Section V-A).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.acfg.features import NUM_FEATURES, cfg_feature_matrix
from repro.malgen.corpus import LabeledSample

__all__ = ["ACFG", "content_digest", "from_sample"]


def content_digest(*arrays: np.ndarray) -> bytes:
    """SHA1 over the shapes and bytes of ``arrays``.

    The canonical content key used by every cache that must survive
    in-place buffer mutation (:class:`repro.gnn.cache.AHatCache`,
    :class:`repro.gnn.cache.EmbeddingCache`): equal digests ⇔ equal
    shape and equal bytes, regardless of which objects hold them.
    """
    hasher = hashlib.sha1()
    for array in arrays:
        array = np.ascontiguousarray(array)
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    return hasher.digest()


@dataclass
class ACFG:
    """One attributed control flow graph sample.

    ``n_real`` is the number of genuine nodes; indices ``>= n_real`` are
    padding.  ``block_tags`` carries the generator's ground-truth motif
    tags for real nodes (empty tuples when unknown, e.g. loaded data).
    """

    adjacency: np.ndarray
    features: np.ndarray
    label: int
    family: str
    name: str = "acfg"
    n_real: int | None = None
    block_tags: tuple[frozenset[str], ...] = field(default_factory=tuple)
    # Lazily cached content digests (see content_key / embed_key).
    # Excluded from init/repr/eq; dataclasses.replace() resets them.
    _content_key: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _embed_key: bytes | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self):
        self.adjacency = np.asarray(self.adjacency, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        n = self.adjacency.shape[0]
        if self.adjacency.shape != (n, n):
            raise ValueError(f"adjacency must be square, got {self.adjacency.shape}")
        if self.features.shape[0] != n:
            raise ValueError(
                f"features rows ({self.features.shape[0]}) != adjacency size ({n})"
            )
        if self.n_real is None:
            self.n_real = n
        if not 0 <= self.n_real <= n:
            raise ValueError(f"n_real={self.n_real} outside [0, {n}]")
        if not set(np.unique(self.adjacency)) <= {0.0, 1.0, 2.0}:
            raise ValueError("adjacency values must be in {0, 1, 2}")

    @property
    def n(self) -> int:
        """Total (padded) node count."""
        return self.adjacency.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def real_nodes(self) -> np.ndarray:
        return np.arange(self.n_real)

    def padded(self, n: int) -> "ACFG":
        """A copy padded (or verified) to ``n`` total nodes."""
        if n < self.n:
            raise ValueError(f"cannot pad {self.n}-node graph down to {n}")
        if n == self.n:
            return self
        adjacency = np.zeros((n, n), dtype=np.float64)
        adjacency[: self.n, : self.n] = self.adjacency
        features = np.zeros((n, self.num_features), dtype=np.float64)
        features[: self.n] = self.features
        return replace(
            self, adjacency=adjacency, features=features, n_real=self.n_real
        )

    def subgraph_adjacency(self, kept_nodes: np.ndarray) -> np.ndarray:
        """Adjacency with all rows/columns outside ``kept_nodes`` zeroed.

        This is the paper's pruning operation (Algorithm 2 lines 17-18):
        the matrix keeps its shape; removed nodes simply lose all edges.
        """
        keep = np.zeros(self.n, dtype=bool)
        keep[np.asarray(kept_nodes, dtype=int)] = True
        pruned = self.adjacency * keep[:, None]
        pruned = pruned * keep[None, :]
        return pruned

    def content_key(self) -> bytes:
        """Digest of (adjacency, active-node mask) — the Â cache key.

        Byte-identical to what :class:`repro.gnn.cache.AHatCache`
        derives from the raw arrays, so graph-keyed and array-keyed
        lookups share entries.  Cached after the first call; anything
        that mutates ``adjacency``/``features``/``n_real`` in place
        (e.g. the structured fuzzer) must call
        :meth:`invalidate_content_keys`.
        """
        if self._content_key is None:
            mask = np.zeros(self.n, dtype=bool)
            mask[: self.n_real] = True
            self._content_key = content_digest(self.adjacency, mask)
        return self._content_key

    def embed_key(self) -> bytes:
        """Digest of (adjacency, features, n_real) — the frozen-forward
        (:class:`repro.gnn.cache.EmbeddingCache`) key; lazily cached."""
        if self._embed_key is None:
            self._embed_key = content_digest(
                self.adjacency, self.features, np.asarray([self.n_real])
            )
        return self._embed_key

    def invalidate_content_keys(self) -> None:
        """Drop cached digests after an in-place payload mutation."""
        self._content_key = None
        self._embed_key = None

    def masked_features(self, kept_nodes: np.ndarray) -> np.ndarray:
        """Features with rows outside ``kept_nodes`` zeroed (like padding)."""
        keep = np.zeros(self.n, dtype=bool)
        keep[np.asarray(kept_nodes, dtype=int)] = True
        return self.features * keep[:, None]


def from_sample(sample: LabeledSample, pad_to: int | None = None) -> ACFG:
    """Build an ACFG from a generated corpus sample."""
    adjacency = sample.cfg.adjacency_matrix().astype(np.float64)
    features = cfg_feature_matrix(sample.cfg)
    if features.shape[0] == 0:
        features = features.reshape(0, NUM_FEATURES)
    acfg = ACFG(
        adjacency=adjacency,
        features=features,
        label=sample.label,
        family=sample.family,
        name=sample.program.name,
        n_real=sample.cfg.node_count,
        block_tags=tuple(sample.block_tags),
    )
    if pad_to is not None:
        acfg = acfg.padded(pad_to)
    return acfg
