"""Dataset assembly: corpus → padded ACFGs, scaling, splits, persistence."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.acfg.graph import ACFG
from repro.malgen.corpus import LabeledSample
from repro.malgen.families import FAMILIES
from repro.nn.guards import NumericalError
from repro.obs import add_counter
from repro.obs import span as obs_span

__all__ = ["FeatureScaler", "ACFGDataset", "train_test_split"]


def _check_scalable(features: np.ndarray, name: str) -> None:
    """``log1p`` is only defined for finite features >= 0; a negative or
    NaN/Inf entry would silently turn into NaN and poison training, so
    validate before transforming."""
    if not np.all(np.isfinite(features)):
        raise NumericalError(
            "features", f"graph {name!r} has NaN/Inf feature values"
        )
    if np.any(features < 0):
        raise NumericalError(
            "features",
            f"graph {name!r} has negative feature values; log1p scaling "
            "requires non-negative counts (quarantine hostile inputs with "
            "on_bad_input='quarantine')",
        )


@dataclass
class FeatureScaler:
    """log1p + max-scaling fitted on training graphs.

    Raw Table I features are heavy-tailed counts; GCNs train far better
    on compressed, bounded inputs.  Padding rows stay exactly zero under
    this transform (log1p(0) = 0), preserving the paper's zero-feature
    padding semantics.

    Features must be finite and non-negative (they are counts);
    :meth:`fit` and :meth:`transform` raise a typed
    :class:`~repro.nn.NumericalError` otherwise instead of letting
    ``log1p`` of a negative value emit NaN into the pipeline.
    """

    scale: np.ndarray | None = None

    def fit(self, graphs: list[ACFG]) -> "FeatureScaler":
        if not graphs:
            raise ValueError("cannot fit scaler on empty dataset")
        for g in graphs:
            _check_scalable(g.features[: g.n_real], g.name)
        stacked = np.vstack([np.log1p(g.features[: g.n_real]) for g in graphs])
        scale = stacked.max(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale = scale
        return self

    def transform(self, graph: ACFG) -> ACFG:
        if self.scale is None:
            raise RuntimeError("scaler not fitted")
        _check_scalable(graph.features, graph.name)
        transformed = np.log1p(graph.features) / self.scale
        from dataclasses import replace

        return replace(graph, features=transformed)


class ACFGDataset:
    """A list of equally padded ACFGs plus class metadata."""

    def __init__(
        self,
        graphs: list[ACFG],
        families: tuple[str, ...] = FAMILIES,
        lift_maps: dict | None = None,
    ):
        if not graphs:
            raise ValueError("dataset needs at least one graph")
        sizes = {g.n for g in graphs}
        if len(sizes) != 1:
            raise ValueError(f"graphs must share a padded size, got {sorted(sizes)}")
        self.graphs = list(graphs)
        self.families = tuple(families)
        #: Ingestion quarantine report (set by ``from_corpus`` when an
        #: ``on_bad_input`` policy was active, else None).
        self.quarantine = None
        #: ``graph name -> LiftMap`` when the dataset was built with a
        #: reduction config (repro.reduce), else None.  Shared (not
        #: copied) across ``scaled()`` / split views, since neither
        #: changes graph structure.
        self.lift_maps = lift_maps
        #: Corpus-level :class:`repro.reduce.ReductionStats` totals when
        #: reduction ran, else None.
        self.reduction = None

    @classmethod
    def from_corpus(
        cls,
        corpus: list[LabeledSample],
        pad_to: int | None = None,
        families: tuple[str, ...] = FAMILIES,
        verify: str | None = None,
        on_bad_input: str | None = None,
        sanitizer=None,
        reduce=None,
        policy: "IngestPolicy | None" = None,
    ) -> "ACFGDataset":
        """Convert a generated corpus, padding all graphs to a common N.

        The sanitize → verify → reduce ordering is implemented once, in
        :func:`repro.acfg.ingest.ingest_corpus` (the serving engine runs
        the same path per submission); this method adds padding and
        dataset assembly on top.  Pass either a prebuilt
        :class:`~repro.acfg.ingest.IngestPolicy` via ``policy`` or the
        individual knobs:

        ``on_bad_input`` is the hostile-input policy
        (:mod:`repro.harden`): ``"quarantine"`` drops samples with fatal
        sanitizer findings (degenerate graphs, NaN/Inf/negative
        features, failed conversions) and records them on the returned
        dataset's ``quarantine`` report; ``"raise"`` raises
        :class:`~repro.harden.HostileInputError` on the first fatal
        finding; ``None`` (default) skips sanitation entirely.

        ``verify`` runs the :mod:`repro.staticcheck` invariant gate over
        the (post-quarantine) corpus: ``"strict"`` raises
        :class:`repro.staticcheck.CorpusVerificationError` on any
        structural violation, ``"warn"`` downgrades to a warning, and
        ``None`` (the default) skips verification.  Quarantine runs
        first so hostile samples cannot crash the verifier.

        ``reduce`` is an optional :class:`repro.reduce.ReduceConfig`:
        each graph is shrunk by the static-analysis reduction pipeline
        *after* quarantine and verification but *before* padding, and
        the per-graph :class:`repro.reduce.LiftMap` objects land on the
        returned dataset's ``lift_maps`` (keyed by graph name) so
        explanations project back onto original blocks.  A graph whose
        reduction fails is quarantined under the same ``on_bad_input``
        policy as ingestion failures.
        """
        from repro.acfg.ingest import IngestPolicy, ingest_corpus

        if policy is None:
            policy = IngestPolicy(
                on_bad_input=on_bad_input,
                verify=verify,
                reduce=reduce,
                sanitizer=sanitizer,
            )
        ingest = ingest_corpus(corpus, policy)
        with obs_span("dataset.from_corpus"):
            graphs = ingest.graphs
            if not graphs:
                raise ValueError(
                    "no graphs survived ingestion (entire corpus quarantined?)"
                )
            max_nodes = max(g.n for g in graphs)
            if pad_to is None:
                pad_to = max_nodes
            elif pad_to < max_nodes:
                raise ValueError(
                    f"pad_to={pad_to} smaller than largest graph ({max_nodes} nodes)"
                )
            add_counter("dataset.graphs", len(graphs))
            dataset = cls(
                [g.padded(pad_to) for g in graphs], families, lift_maps=ingest.lift_maps
            )
            dataset.quarantine = ingest.quarantine
            dataset.reduction = ingest.reduction
            return dataset

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index: int) -> ACFG:
        return self.graphs[index]

    def __iter__(self):
        return iter(self.graphs)

    @property
    def n(self) -> int:
        """Common padded node count."""
        return self.graphs[0].n

    @property
    def num_classes(self) -> int:
        return len(self.families)

    @property
    def labels(self) -> np.ndarray:
        return np.array([g.label for g in self.graphs], dtype=int)

    def of_family(self, family: str) -> list[ACFG]:
        return [g for g in self.graphs if g.family == family]

    def scaled(self, scaler: FeatureScaler) -> "ACFGDataset":
        return ACFGDataset(
            [scaler.transform(g) for g in self.graphs],
            self.families,
            lift_maps=self.lift_maps,
        )

    def lift_map_for(self, graph_name: str):
        """The :class:`repro.reduce.LiftMap` of one graph, or None."""
        if self.lift_maps is None:
            return None
        return self.lift_maps.get(graph_name)

    # ------------------------------------------------------------------
    # persistence (npz + json sidecar)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        meta = {"families": list(self.families), "graphs": []}
        for i, g in enumerate(self.graphs):
            arrays[f"adj_{i}"] = g.adjacency
            arrays[f"feat_{i}"] = g.features
            meta["graphs"].append(
                {
                    "label": g.label,
                    "family": g.family,
                    "name": g.name,
                    "n_real": g.n_real,
                    "block_tags": [sorted(tags) for tags in g.block_tags],
                }
            )
        if self.lift_maps is not None:
            meta["lift_maps"] = {
                name: lift.to_dict() for name, lift in self.lift_maps.items()
            }
        np.savez_compressed(path.with_suffix(".npz"), **arrays)
        path.with_suffix(".json").write_text(json.dumps(meta))

    @classmethod
    def load(cls, path: str | Path) -> "ACFGDataset":
        path = Path(path)
        arrays = np.load(path.with_suffix(".npz"))
        meta = json.loads(path.with_suffix(".json").read_text())
        graphs = []
        for i, info in enumerate(meta["graphs"]):
            graphs.append(
                ACFG(
                    adjacency=arrays[f"adj_{i}"],
                    features=arrays[f"feat_{i}"],
                    label=info["label"],
                    family=info["family"],
                    name=info["name"],
                    n_real=info["n_real"],
                    block_tags=tuple(frozenset(t) for t in info["block_tags"]),
                )
            )
        lift_maps = None
        if "lift_maps" in meta:
            from repro.reduce import LiftMap

            lift_maps = {
                name: LiftMap.from_dict(payload)
                for name, payload in meta["lift_maps"].items()
            }
        return cls(graphs, tuple(meta["families"]), lift_maps=lift_maps)


def train_test_split(
    dataset: ACFGDataset, test_fraction: float = 0.25, seed: int = 0
) -> tuple[ACFGDataset, ACFGDataset]:
    """Stratified split: the same fraction of every family goes to test."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    train: list[ACFG] = []
    test: list[ACFG] = []
    for family in dataset.families:
        members = dataset.of_family(family)
        if not members:
            continue
        order = rng.permutation(len(members))
        n_test = max(1, int(round(test_fraction * len(members))))
        if n_test >= len(members):
            n_test = len(members) - 1
        test_indices = set(order[:n_test].tolist())
        for i, graph in enumerate(members):
            (test if i in test_indices else train).append(graph)
    return (
        ACFGDataset(train, dataset.families, lift_maps=dataset.lift_maps),
        ACFGDataset(test, dataset.families, lift_maps=dataset.lift_maps),
    )
