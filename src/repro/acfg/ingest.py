"""The single ingestion path: sanitize → verify → reduce.

Exactly one implementation of the hostile-input ordering exists in the
repository, and it lives here.  Two consumers share it:

* **Corpus construction** — :meth:`repro.acfg.ACFGDataset.from_corpus`
  calls :func:`ingest_corpus` to turn a generated (or loaded) corpus
  into ACFGs, quarantining hostile samples, gating on the
  :mod:`repro.staticcheck` invariants, and optionally shrinking every
  graph through :mod:`repro.reduce` — all before padding.
* **Serving** — :class:`repro.serve.engine.InferenceEngine` calls
  :func:`ingest_sample` on every submission, running the *same* checks
  in the *same* order on a single graph, but collecting findings into a
  typed result instead of raising, so the daemon can turn them into
  typed request rejections.

The ordering is a security invariant, not a convenience: quarantine
runs **first** so hostile samples cannot crash the verifier, the
verifier runs **second** so reduction never sees a structurally invalid
CFG, and reduction runs **last** (before padding/scaling) so its
dominator analyses operate on verified structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.acfg.graph import ACFG, from_sample
from repro.malgen.corpus import LabeledSample
from repro.obs import add_counter
from repro.obs import span as obs_span

if TYPE_CHECKING:  # pragma: no cover - types only (lazy at runtime)
    from repro.harden.sanitize import (
        GraphSanitizer,
        QuarantineRecord,
        QuarantineReport,
    )
    from repro.reduce import LiftMap, ReduceConfig, ReductionStats

__all__ = [
    "CorpusIngest",
    "IngestPolicy",
    "SampleIngest",
    "ingest_corpus",
    "ingest_sample",
]


@dataclass(frozen=True)
class IngestPolicy:
    """Every knob of the sanitize → verify → reduce path, in one place.

    ``on_bad_input`` is the :mod:`repro.harden` quarantine policy
    (``None`` trusts the input, ``"quarantine"`` drops fatal samples,
    ``"raise"`` aborts on the first one); ``verify`` is the
    :mod:`repro.staticcheck` invariant gate mode (``None`` / ``"warn"``
    / ``"strict"``); ``reduce`` an optional
    :class:`repro.reduce.ReduceConfig` applied after both gates.
    ``sanitizer`` overrides the default :class:`GraphSanitizer` (custom
    size bounds, promoted reasons).
    """

    on_bad_input: str | None = None
    verify: str | None = None
    reduce: "ReduceConfig | None" = None
    sanitizer: "GraphSanitizer | None" = None

    def __post_init__(self):
        from repro.harden.sanitize import ON_BAD_INPUT_POLICIES

        if self.on_bad_input not in ON_BAD_INPUT_POLICIES:
            raise ValueError(
                f"on_bad_input must be one of {ON_BAD_INPUT_POLICIES}, "
                f"got {self.on_bad_input!r}"
            )
        if self.verify not in (None, "strict", "warn"):
            raise ValueError(
                f"verify must be None, 'strict' or 'warn', got {self.verify!r}"
            )


@dataclass
class CorpusIngest:
    """What survived corpus ingestion, plus every finding along the way."""

    samples: list[LabeledSample]
    graphs: list[ACFG]
    quarantine: "QuarantineReport | None" = None
    lift_maps: "dict[str, LiftMap] | None" = None
    reduction: "ReductionStats | None" = None


@dataclass
class SampleIngest:
    """One submission's trip through sanitize → verify → reduce.

    ``graph`` is the model-ready (reduced, unscaled, unpadded) ACFG, or
    ``None`` when a fatal finding stopped the path.  ``fatal`` holds the
    findings that stopped it; ``records`` every finding including
    non-fatal flags.  ``lift`` is the reduction lift map (``None`` when
    reduction was off or an identity).
    """

    sample: LabeledSample
    graph: ACFG | None
    records: "list[QuarantineRecord]" = field(default_factory=list)
    fatal: "list[QuarantineRecord]" = field(default_factory=list)
    lift: "LiftMap | None" = None
    original: ACFG | None = None

    @property
    def ok(self) -> bool:
        return self.graph is not None and not self.fatal


def _sanitize_one(
    sample: LabeledSample, sanitizer: "GraphSanitizer"
) -> "tuple[ACFG | None, list[QuarantineRecord]]":
    """Sanitizer checks + CFG→ACFG conversion for one sample.

    Conversion happens inside the try/except so a sample whose
    construction explodes is quarantined as ``construction_error``
    rather than crashing ingestion.
    """
    from repro.harden.sanitize import QuarantineRecord

    records = sanitizer.check_sample(sample)
    graph = None
    try:
        graph = from_sample(sample)
    except Exception as error:  # hostile input can fail anywhere
        records.append(
            QuarantineRecord(
                sample.program.name,
                sample.family,
                "construction_error",
                f"{type(error).__name__}: {error}",
                "construction",
            )
        )
    else:
        records.extend(sanitizer.check_acfg(graph))
    return graph, records


def _reduce_many(
    samples: list[LabeledSample],
    graphs: list[ACFG],
    reduce_config: "ReduceConfig",
    on_bad_input: str | None,
    report: "QuarantineReport | None",
):
    """Run :func:`repro.reduce.reduce_acfg` over converted samples.

    Returns ``(reduced_graphs, lift_maps_by_name, corpus_stats)``.  A
    graph whose reduction raises is quarantined (when the policy
    allows) with reason ``reduction_error`` instead of crashing
    ingestion, so reduction composes with the hostile-input pipeline.
    """
    from repro.harden.sanitize import HostileInputError, QuarantineRecord
    from repro.reduce import merge_stats, reduce_acfg

    kept: list[ACFG] = []
    lift_maps: dict[str, object] = {}
    stats = []
    for sample, graph in zip(samples, graphs):
        try:
            result = reduce_acfg(graph, cfg=sample.cfg, config=reduce_config)
        except (ArithmeticError, ValueError) as error:
            record = QuarantineRecord(
                sample.program.name,
                sample.family,
                "reduction_error",
                f"{type(error).__name__}: {error}",
                "reduce",
            )
            if on_bad_input == "quarantine":
                if report is not None:
                    report.records.append(record)
                    report.quarantined.append(sample.program.name)
                add_counter("reduce.quarantined")
                continue
            if on_bad_input == "raise":
                raise HostileInputError(record) from error
            raise
        kept.append(result.graph)
        lift_maps[result.graph.name] = result.lift
        stats.append(result.stats)
    totals = merge_stats(stats)
    add_counter("reduce.graphs", len(kept))
    add_counter("reduce.nodes_before", totals.nodes_before)
    add_counter("reduce.nodes_after", totals.nodes_after)
    add_counter("reduce.edges_before", totals.edges_before)
    add_counter("reduce.edges_after", totals.edges_after)
    add_counter("reduce.blocks_merged", totals.blocks_merged)
    add_counter("reduce.chains_collapsed", totals.chains_collapsed)
    add_counter("reduce.unreachable_pruned", totals.unreachable_pruned)
    add_counter("reduce.dead_store_bypassed", totals.dead_store_bypassed)
    add_counter("reduce.leaves_pruned", totals.leaves_pruned)
    return kept, lift_maps, totals


def ingest_corpus(
    corpus: list[LabeledSample],
    policy: IngestPolicy,
    span_prefix: str = "dataset",
) -> CorpusIngest:
    """Corpus-wide sanitize → verify → reduce with batch semantics.

    Matches the historical :meth:`ACFGDataset.from_corpus` contract
    exactly: a fatal sanitizer finding under ``on_bad_input="raise"``
    raises :class:`~repro.harden.HostileInputError`; ``verify="strict"``
    raises :class:`~repro.staticcheck.CorpusVerificationError` on any
    invariant violation over the post-quarantine corpus.
    """
    report = None
    graphs: list[ACFG]
    if policy.on_bad_input is not None:
        from repro.harden.sanitize import (
            GraphSanitizer,
            HostileInputError,
            QuarantineReport,
        )

        sanitizer = policy.sanitizer or GraphSanitizer()
        report = QuarantineReport(inspected=len(corpus))
        kept_samples: list[LabeledSample] = []
        kept_graphs: list[ACFG] = []
        with obs_span(f"{span_prefix}.sanitize"):
            for sample in corpus:
                graph, records = _sanitize_one(sample, sanitizer)
                report.records.extend(records)
                fatal = [r for r in records if sanitizer.is_fatal(r)]
                if fatal:
                    if policy.on_bad_input == "raise":
                        raise HostileInputError(fatal[0])
                    report.quarantined.append(sample.program.name)
                    add_counter("harden.quarantined")
                    for record in fatal:
                        add_counter(f"harden.quarantine.{record.reason}")
                    continue
                if records:
                    add_counter("harden.flagged")
                kept_samples.append(sample)
                kept_graphs.append(graph)
            add_counter("harden.inspected", len(corpus))
        corpus, graphs = kept_samples, kept_graphs
    else:
        graphs = []

    if policy.verify is not None:
        # Imported here: repro.staticcheck depends on repro.acfg.
        from repro.staticcheck import verify_corpus

        with obs_span(f"{span_prefix}.verify"):
            verify_corpus(corpus, mode=policy.verify)

    if policy.on_bad_input is None:
        graphs = [from_sample(sample) for sample in corpus]

    lift_maps = None
    reduction = None
    if policy.reduce is not None:
        with obs_span(f"{span_prefix}.reduce"):
            graphs, lift_maps, reduction = _reduce_many(
                corpus, graphs, policy.reduce, policy.on_bad_input, report
            )
    return CorpusIngest(
        samples=list(corpus),
        graphs=graphs,
        quarantine=report,
        lift_maps=lift_maps,
        reduction=reduction,
    )


def ingest_sample(
    sample: LabeledSample,
    policy: IngestPolicy,
    graph: ACFG | None = None,
    skip_cfg_checks: bool = False,
    stage_hook=None,
) -> SampleIngest:
    """One submission through the same path, with collecting semantics.

    Unlike :func:`ingest_corpus` this never raises on hostile content:
    fatal sanitizer findings and strict-mode verifier errors land in
    ``result.fatal`` as typed :class:`QuarantineRecord` entries, so a
    serving front door can map them to typed rejections.  (A policy of
    ``on_bad_input=None`` still trusts the input and converts blindly,
    exactly like the corpus path.)

    A prebuilt ``graph`` (or ``skip_cfg_checks=True``) is for
    submissions that arrive as bare ACFGs with no recovered CFG
    attached: sanitizer CFG checks and the verifier need instructions,
    so only the ACFG-level checks run.

    ``stage_hook(stage)`` is the resilience seam: called at each stage
    *boundary* — ``"sanitize"``, ``"verify"``, ``"reduce"`` — before the
    stage's own error handling, and unconditionally (even when the
    policy skips the stage) so deadlines and injected faults see every
    boundary.  Whatever it raises propagates to the caller untouched:
    an injected fault must look like an infrastructure failure (retry,
    degrade), never like a hostile-input verdict (quarantine).
    """
    from repro.harden.sanitize import GraphSanitizer, QuarantineRecord

    prebuilt = graph
    skip_cfg_checks = skip_cfg_checks or prebuilt is not None
    result = SampleIngest(sample=sample, graph=None)
    sanitizer = policy.sanitizer or GraphSanitizer()

    if stage_hook is not None:
        stage_hook("sanitize")
    if policy.on_bad_input is not None:
        if skip_cfg_checks:
            graph = prebuilt
            if graph is None:
                try:
                    graph = from_sample(sample)
                except Exception as error:
                    result.records.append(
                        QuarantineRecord(
                            sample.program.name,
                            sample.family,
                            "construction_error",
                            f"{type(error).__name__}: {error}",
                            "construction",
                        )
                    )
            if graph is not None:
                result.records.extend(sanitizer.check_acfg(graph))
        else:
            graph, records = _sanitize_one(sample, sanitizer)
            result.records.extend(records)
        result.fatal = [r for r in result.records if sanitizer.is_fatal(r)]
        if result.fatal:
            add_counter("harden.quarantined")
            for record in result.fatal:
                add_counter(f"harden.quarantine.{record.reason}")
            return result
        if result.records:
            add_counter("harden.flagged")
        add_counter("harden.inspected", 1)
    else:
        graph = prebuilt if prebuilt is not None else from_sample(sample)

    if stage_hook is not None:
        stage_hook("verify")
    if policy.verify is not None and not skip_cfg_checks:
        from repro.staticcheck import Severity, verify_sample

        findings = verify_sample(sample)
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        if errors:
            for finding in errors:
                result.records.append(
                    QuarantineRecord(
                        sample.program.name,
                        sample.family,
                        "invariant_violation",
                        str(finding),
                        "verify",
                    )
                )
            if policy.verify == "strict":
                result.fatal = result.records[-len(errors):]
                add_counter("staticcheck.rejected", 1)
                return result

    result.original = graph
    if stage_hook is not None:
        stage_hook("reduce")
    if policy.reduce is not None and graph is not None:
        try:
            graphs, lift_maps, _ = _reduce_many(
                [sample], [graph], policy.reduce, "raise", None
            )
        except Exception as error:
            record = getattr(error, "record", None)
            if record is None:
                record = QuarantineRecord(
                    sample.program.name,
                    sample.family,
                    "reduction_error",
                    f"{type(error).__name__}: {error}",
                    "reduce",
                )
            result.records.append(record)
            result.fatal.append(record)
            return result
        graph = graphs[0]
        lift = lift_maps.get(graph.name)
        result.lift = None if lift is None or lift.is_identity else lift

    result.graph = graph
    return result
