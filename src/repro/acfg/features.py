"""Block-level features — exactly the 12 attributes of the paper's Table I.

Ten are generated from the code sequence (constant counts and counts of
each instruction category) and two from the node structure (# offspring,
i.e. the out-degree, and # instructions in the vertex).
"""

from __future__ import annotations

import numpy as np

from repro.disasm.cfg import BasicBlock, CFG
from repro.disasm.isa import InstructionCategory

__all__ = ["FEATURE_NAMES", "NUM_FEATURES", "block_features", "cfg_feature_matrix"]

#: Order matches Table I top-to-bottom.
FEATURE_NAMES: tuple[str, ...] = (
    "numeric_constants",
    "string_constants",
    "transfer_instructions",
    "call_instructions",
    "arithmetic_instructions",
    "compare_instructions",
    "mov_instructions",
    "termination_instructions",
    "data_declaration_instructions",
    "total_instructions",
    "offspring",
    "instructions_in_vertex",
)

NUM_FEATURES: int = len(FEATURE_NAMES)

_CATEGORY_FEATURES: tuple[tuple[int, InstructionCategory], ...] = (
    (2, InstructionCategory.TRANSFER),
    (3, InstructionCategory.CALL),
    (4, InstructionCategory.ARITHMETIC),
    (5, InstructionCategory.COMPARE),
    (6, InstructionCategory.MOV),
    (7, InstructionCategory.TERMINATION),
    (8, InstructionCategory.DATA_DECLARATION),
)


def block_features(block: BasicBlock, out_degree: int) -> np.ndarray:
    """The 12-dimensional feature vector for one basic block."""
    features = np.zeros(NUM_FEATURES, dtype=np.float64)
    for instruction in block.instructions:
        features[0] += instruction.numeric_constant_count
        features[1] += instruction.string_constant_count
        category = instruction.category
        for index, wanted in _CATEGORY_FEATURES:
            if category is wanted:
                features[index] += 1
                break
    features[9] = len(block.instructions)
    features[10] = out_degree
    features[11] = len(block.instructions)
    return features


def cfg_feature_matrix(cfg: CFG) -> np.ndarray:
    """Stack block features into the paper's ``X ∈ R^{N×d}`` matrix."""
    if cfg.node_count == 0:
        return np.zeros((0, NUM_FEATURES), dtype=np.float64)
    # "# Offspring (The degree)": number of distinct successor blocks,
    # matching the nonzero entries of the adjacency row.
    out_degrees = np.zeros(cfg.node_count, dtype=int)
    successor_sets: dict[int, set[int]] = {}
    for source, target, _ in cfg.edges:
        successor_sets.setdefault(source, set()).add(target)
    for source, targets in successor_sets.items():
        out_degrees[source] = len(targets)
    return np.stack(
        [
            block_features(block, int(out_degrees[block.index]))
            for block in cfg.blocks
        ]
    )
