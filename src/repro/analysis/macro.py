"""Macro-level behaviour hypotheses from Windows API usage.

The paper's analysts read the Windows API calls in the top-20% blocks
and hypothesize behaviour (Ldpinch's thread/pipe/socket relay being the
worked example).  This module mechanizes that: collect the API symbols
called in the important blocks, bucket them by behaviour group, and
match known multi-API behaviour signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disasm.cfg import CFG
from repro.malgen.apis import group_of

__all__ = ["BehaviorHypothesis", "BEHAVIOR_SIGNATURES", "macro_analysis"]


@dataclass(frozen=True)
class BehaviorHypothesis:
    """One hypothesized behaviour with the API evidence supporting it."""

    behavior: str
    description: str
    apis: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.behavior}: {self.description} (evidence: {', '.join(self.apis)})"


#: Behaviour signatures: (name, description, required API subset).
#: A signature fires when every listed API appears in the analyzed blocks.
BEHAVIOR_SIGNATURES: tuple[tuple[str, str, frozenset[str]], ...] = (
    (
        "thread_relay",
        "spawns threads that relay data between file handles and the network "
        "(credential exfiltration pattern, cf. Ldpinch)",
        frozenset({"CreateThread", "ReadFile", "send"}),
    ),
    (
        "pipe_backdoor",
        "creates pipes wired to a spawned process for remote command I/O",
        frozenset({"CreatePipe", "CreateProcessA"}),
    ),
    (
        "process_injection",
        "writes code into another process and starts a remote thread",
        frozenset({"OpenProcess", "WriteProcessMemory", "CreateRemoteThread"}),
    ),
    (
        "registry_persistence",
        "installs itself under a registry Run key",
        frozenset({"RegOpenKeyExA", "RegSetValueExA"}),
    ),
    (
        "credential_harvest",
        "reads stored values from registry hives",
        frozenset({"RegOpenKeyExA", "RegQueryValueExA"}),
    ),
    (
        "network_backdoor",
        "connects out and waits for commands",
        frozenset({"socket", "connect", "recv"}),
    ),
    (
        "mass_mailer",
        "resolves hosts and blasts messages over fresh sockets",
        frozenset({"gethostbyname", "socket", "send"}),
    ),
    (
        "downloader",
        "fetches a payload over HTTP and drops it to disk",
        frozenset({"InternetOpenUrlA", "InternetReadFile"}),
    ),
    (
        "keylogging",
        "polls keyboard state to capture input",
        frozenset({"GetAsyncKeyState"}),
    ),
    (
        "self_replication",
        "copies its own executable elsewhere",
        frozenset({"GetModuleFileNameA", "CopyFileA"}),
    ),
    (
        "service_install",
        "registers itself as a Windows service",
        frozenset({"OpenSCManagerA", "CreateServiceA"}),
    ),
    (
        "anti_debug_timing",
        "measures elapsed time to detect analysis environments",
        frozenset({"QueryPerformanceCounter", "GetTickCount"}),
    ),
)


def called_apis(cfg: CFG, block_indices: list[int] | None = None) -> list[str]:
    """All API symbols called from the given blocks, in program order."""
    if block_indices is None:
        block_indices = list(range(cfg.node_count))
    symbols = []
    for index in block_indices:
        for instruction in cfg.blocks[index].instructions:
            symbol = instruction.api_symbol
            if symbol is not None:
                symbols.append(symbol)
    return symbols


def macro_analysis(
    cfg: CFG, block_indices: list[int] | None = None
) -> list[BehaviorHypothesis]:
    """Behaviour hypotheses supported by the APIs in the given blocks."""
    apis = set(called_apis(cfg, block_indices))
    hypotheses = []
    for behavior, description, required in BEHAVIOR_SIGNATURES:
        if required <= apis:
            hypotheses.append(
                BehaviorHypothesis(behavior, description, tuple(sorted(required)))
            )
    return hypotheses


def api_group_profile(
    cfg: CFG, block_indices: list[int] | None = None
) -> dict[str, int]:
    """Count of API calls per behaviour group (process/file/network/...)."""
    profile: dict[str, int] = {}
    for symbol in called_apis(cfg, block_indices):
        group = group_of(symbol)
        if group is not None:
            profile[group] = profile.get(group, 0) + 1
    return profile
