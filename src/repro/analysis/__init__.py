"""Qualitative analysis of explanation subgraphs (Section V-D).

Micro-level: detect the unique malware patterns the paper's analysts
found in top-20% subgraphs — code manipulation, XOR obfuscation,
semantic-NOP obfuscation, self-looping jumps.  Macro-level: hypothesize
behaviour from the Windows API calls appearing in important blocks.
"""

from repro.analysis.macro import BehaviorHypothesis, macro_analysis
from repro.analysis.micro import (
    MicroFinding,
    detect_code_manipulation,
    detect_self_loop,
    detect_semantic_nop_obfuscation,
    detect_xor_obfuscation,
    micro_analysis,
)
from repro.analysis.report import FamilyReport, build_family_reports

__all__ = [
    "MicroFinding",
    "detect_code_manipulation",
    "detect_xor_obfuscation",
    "detect_semantic_nop_obfuscation",
    "detect_self_loop",
    "micro_analysis",
    "BehaviorHypothesis",
    "macro_analysis",
    "FamilyReport",
    "build_family_reports",
]
