"""Micro-level static analysis of important basic blocks.

Implements the four pattern detectors behind the paper's Table V:

* **Code manipulation** — a ``call`` immediately followed by an
  instruction that overwrites or consumes EAX, i.e. tampering with the
  function's return value (``call sub_X; pop eax``,
  ``call ds:Sleep; mov eax, [ebp+var_EC]``).
* **XOR obfuscation** — XOR used for data mangling rather than the
  compiler's self-zeroing idiom: XOR of two *different* registers, XOR
  with an immediate key, or XOR against memory.  The liveness pass from
  :mod:`repro.staticcheck.dataflow` suppresses XORs whose result is
  provably dead (overwritten before any read) — compiler junk, not
  obfuscation — removing a class of Table V false positives.
* **Semantic-NOP obfuscation** — runs of NOPs and one-byte NOP aliases
  (``mov edx, edx``, ``xchg dl, dl``).
* **Self-looping jumps** — blocks that unconditionally jump to
  themselves (spin/delay obfuscation the paper observed in Bagle and
  Vundo).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disasm.cfg import BasicBlock, CFG
from repro.disasm.instruction import Instruction
from repro.disasm.isa import is_register
from repro.staticcheck.dataflow import dead_stores

__all__ = [
    "MicroFinding",
    "detect_code_manipulation",
    "detect_xor_obfuscation",
    "detect_semantic_nop_obfuscation",
    "detect_self_loop",
    "micro_analysis",
]

#: Minimum consecutive semantic NOPs to call it a sled rather than noise.
_NOP_SLED_THRESHOLD = 3


@dataclass(frozen=True)
class MicroFinding:
    """One detected pattern: what, where, and the evidencing instructions."""

    pattern: str
    block_index: int
    evidence: tuple[str, ...]

    def __str__(self) -> str:
        return f"[{self.pattern}] block {self.block_index}: {'; '.join(self.evidence)}"


def _touches_eax(instruction: Instruction) -> bool:
    """Whether the instruction writes EAX/AX/AL/AH as its destination."""
    if not instruction.operands:
        return instruction.mnemonic == "pop"  # bare pop never occurs; safe
    first = instruction.operands[0].lower()
    return is_register(first) and first in {"eax", "ax", "al", "ah"}


def detect_code_manipulation(block: BasicBlock) -> list[MicroFinding]:
    """Call immediately followed by EAX tampering."""
    findings = []
    instructions = block.instructions
    for previous, current in zip(instructions[:-1], instructions[1:]):
        if not previous.is_call:
            continue
        manipulates = (
            (current.mnemonic == "pop" and _touches_eax(current))
            or (
                current.mnemonic in {"mov", "movzx", "movsx"}
                and _touches_eax(current)
            )
        )
        if manipulates:
            findings.append(
                MicroFinding(
                    "code_manipulation",
                    block.index,
                    (str(previous), str(current)),
                )
            )
    return findings


def detect_xor_obfuscation(
    block: BasicBlock, dead_offsets: set[int] | None = None
) -> list[MicroFinding]:
    """XOR uses that mangle data (excluding the self-zeroing idiom).

    ``dead_offsets`` lists instruction offsets within the block whose
    register result is dead (from ``repro.staticcheck.dataflow``); XORs
    there are dead stores — junk the compiler or a padder emitted — and
    are not reported.  Without it the detector is purely syntactic.
    """
    findings = []
    for offset, instruction in enumerate(block.instructions):
        if instruction.mnemonic != "xor" or len(instruction.operands) != 2:
            continue
        if dead_offsets is not None and offset in dead_offsets:
            continue  # result never read: dead zeroing/junk, not mangling
        dst, src = (op.lower() for op in instruction.operands)
        if dst == src:
            continue  # xor eax, eax — ordinary zeroing, not obfuscation
        is_key = instruction.numeric_constant_count > 0
        is_register_mix = is_register(dst) and is_register(src)
        is_memory = dst.startswith("[") or src.startswith("[")
        if is_key or is_register_mix or is_memory:
            findings.append(
                MicroFinding("xor_obfuscation", block.index, (str(instruction),))
            )
    return findings


def detect_semantic_nop_obfuscation(block: BasicBlock) -> list[MicroFinding]:
    """Runs of >= 3 consecutive semantic NOPs."""
    findings = []
    run: list[str] = []
    for instruction in block.instructions:
        if instruction.is_semantic_nop:
            run.append(str(instruction))
            continue
        if len(run) >= _NOP_SLED_THRESHOLD:
            findings.append(
                MicroFinding("semantic_nop", block.index, tuple(run))
            )
        run = []
    if len(run) >= _NOP_SLED_THRESHOLD:
        findings.append(MicroFinding("semantic_nop", block.index, tuple(run)))
    return findings


def detect_self_loop(cfg: CFG, block: BasicBlock) -> list[MicroFinding]:
    """Block whose terminator unconditionally jumps to itself."""
    terminator = block.terminator
    if not terminator.is_unconditional_jump:
        return []
    if block.index in cfg.successors(block.index):
        return [
            MicroFinding(
                "self_loop_jump", block.index, (str(terminator),)
            )
        ]
    return []


def micro_analysis(
    cfg: CFG,
    block_indices: list[int] | None = None,
    *,
    use_liveness: bool = True,
) -> list[MicroFinding]:
    """Run every detector over the given blocks (all blocks by default).

    ``use_liveness`` (default on) runs the dead-store pass once over the
    whole CFG so the XOR detector can skip provably dead results; pass
    ``False`` to reproduce the purely syntactic pre-liveness behaviour.
    """
    if block_indices is None:
        block_indices = list(range(cfg.node_count))
    dead_by_block: dict[int, set[int]] = {}
    if use_liveness and cfg.blocks:
        for store in dead_stores(cfg):
            dead_by_block.setdefault(store.block_index, set()).add(store.offset)
    findings: list[MicroFinding] = []
    for index in block_indices:
        block = cfg.blocks[index]
        findings.extend(detect_code_manipulation(block))
        findings.extend(detect_xor_obfuscation(block, dead_by_block.get(index)))
        findings.extend(detect_semantic_nop_obfuscation(block))
        findings.extend(detect_self_loop(cfg, block))
    return findings
