"""Table V-style reports: per-family patterns found in top-k subgraphs."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.macro import BehaviorHypothesis, macro_analysis
from repro.analysis.micro import MicroFinding, micro_analysis
from repro.explain.explanation import Explanation
from repro.malgen.corpus import LabeledSample

__all__ = ["FamilyReport", "build_family_reports", "format_table_v"]


@dataclass
class FamilyReport:
    """Aggregated qualitative findings for one ACFG family."""

    family: str
    samples_analyzed: int = 0
    pattern_counts: Counter = field(default_factory=Counter)
    example_evidence: dict[str, tuple[str, ...]] = field(default_factory=dict)
    behaviors: Counter = field(default_factory=Counter)

    def top_patterns(self, k: int = 3) -> list[tuple[str, int]]:
        return self.pattern_counts.most_common(k)


def analyze_sample(
    sample: LabeledSample, explanation: Explanation, fraction: float = 0.2
) -> tuple[list[MicroFinding], list[BehaviorHypothesis]]:
    """Micro + macro analysis of one sample's top-``fraction`` blocks."""
    top = explanation.top_nodes(fraction).tolist()
    return micro_analysis(sample.cfg, top), macro_analysis(sample.cfg, top)


def build_family_reports(
    pairs: list[tuple[LabeledSample, Explanation]], fraction: float = 0.2
) -> dict[str, FamilyReport]:
    """Aggregate per-family reports over (sample, explanation) pairs."""
    reports: dict[str, FamilyReport] = {}
    for sample, explanation in pairs:
        report = reports.setdefault(sample.family, FamilyReport(sample.family))
        report.samples_analyzed += 1
        findings, behaviors = analyze_sample(sample, explanation, fraction)
        for finding in findings:
            report.pattern_counts[finding.pattern] += 1
            report.example_evidence.setdefault(finding.pattern, finding.evidence)
        for hypothesis in behaviors:
            report.behaviors[hypothesis.behavior] += 1
    return reports


def format_table_v(reports: dict[str, FamilyReport]) -> str:
    """Render reports as the paper's Table V layout."""
    lines = [
        f"{'Family':10s} | {'Unique patterns (count)':45s} | Example",
        "-" * 100,
    ]
    for family, report in sorted(reports.items()):
        patterns = ", ".join(f"{p} ({c})" for p, c in report.top_patterns())
        example_pattern = (
            report.top_patterns(1)[0][0] if report.pattern_counts else ""
        )
        example = "; ".join(report.example_evidence.get(example_pattern, ())[:3])
        lines.append(f"{family:10s} | {patterns:45s} | {example}")
    return "\n".join(lines)
