"""Code motifs: reusable assembly fragments the family generators compose.

A *motif* is a function ``(writer, rng) -> None`` that emits a small,
realistic assembly fragment — a decode loop, an API call chain, an
obfuscation sled.  ``MotifWriter`` wraps :class:`ProgramBuilder` and
records which instruction span each motif produced, giving every basic
block ground-truth motif tags that the evaluation uses to check whether
explainers surface the planted discriminative code.

Generic motifs appear across all families (including benign); the
family-specific ones implement exactly the behaviours the paper's
Table V attributes to each family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.disasm.program import Program, ProgramBuilder

__all__ = [
    "MotifWriter",
    "MotifSpan",
    "MOTIF_LIBRARY",
    "GENERIC_MOTIFS",
    "register_motif",
]


@dataclass(frozen=True)
class MotifSpan:
    """Half-open instruction range ``[start, stop)`` produced by a motif."""

    name: str
    start: int
    stop: int


@dataclass
class MotifWriter:
    """A ``ProgramBuilder`` that tags emitted spans with motif names."""

    builder: ProgramBuilder
    spans: list[MotifSpan] = field(default_factory=list)
    _helpers: dict[str, Callable[["MotifWriter", np.random.Generator], None]] = field(
        default_factory=dict
    )

    # -- passthrough -----------------------------------------------------
    def emit(self, mnemonic: str, *operands: str) -> None:
        self.builder.emit(mnemonic, *operands)

    def label(self, name: str) -> None:
        self.builder.label(name)

    def fresh_label(self, prefix: str = "loc") -> str:
        return self.builder.fresh_label(prefix)

    @property
    def position(self) -> int:
        return len(self.builder._instructions)

    # -- motif tracking ---------------------------------------------------
    def run_motif(self, name: str, rng: np.random.Generator) -> MotifSpan:
        """Emit the named motif and record its span."""
        try:
            motif = MOTIF_LIBRARY[name]
        except KeyError:
            raise ValueError(f"unknown motif {name!r}") from None
        start = self.position
        motif(self, rng)
        span = MotifSpan(name, start, self.position)
        self.spans.append(span)
        return span

    def request_helper(
        self, name: str, body: Callable[["MotifWriter", np.random.Generator], None]
    ) -> str:
        """Register a local subroutine to be emitted once at program end.

        Returns the label to ``call``; repeated requests reuse the helper.
        """
        if name not in self._helpers:
            self._helpers[name] = body
        return name

    def flush_helpers(self, rng: np.random.Generator) -> None:
        """Emit all requested helper subroutines (called by the generator)."""
        while self._helpers:
            name, body = self._helpers.popitem()
            self.label(name)
            start = self.position
            body(self, rng)
            self.spans.append(MotifSpan(f"helper:{name}", start, self.position))

    def build(self) -> Program:
        return self.builder.build()


MotifFn = Callable[[MotifWriter, np.random.Generator], None]

MOTIF_LIBRARY: dict[str, MotifFn] = {}
GENERIC_MOTIFS: set[str] = set()


def register_motif(name: str, generic: bool = False) -> Callable[[MotifFn], MotifFn]:
    """Decorator adding a motif to the library."""

    def decorate(fn: MotifFn) -> MotifFn:
        if name in MOTIF_LIBRARY:
            raise ValueError(f"motif {name!r} already registered")
        MOTIF_LIBRARY[name] = fn
        if generic:
            GENERIC_MOTIFS.add(name)
        return fn

    return decorate


# ---------------------------------------------------------------------------
# helpers shared by motifs
# ---------------------------------------------------------------------------
_GP_REGS = ("eax", "ebx", "ecx", "edx", "esi", "edi")
_ARITH_OPS = ("add", "sub", "and", "or", "shl", "shr", "imul")


def _hex_const(rng: np.random.Generator, width: int = 8) -> str:
    value = int(rng.integers(1, 16**width))
    return f"0{value:X}h"


def _reg(rng: np.random.Generator) -> str:
    return str(rng.choice(_GP_REGS))


def _push_args(writer: MotifWriter, rng: np.random.Generator, count: int) -> None:
    for _ in range(count):
        kind = rng.integers(0, 3)
        if kind == 0:
            writer.emit("push", str(int(rng.integers(0, 256))))
        elif kind == 1:
            writer.emit("push", _reg(rng))
        else:
            writer.emit("push", f"[ebp+var_{int(rng.integers(1, 64)) * 4:X}]")


def _api_call(writer: MotifWriter, rng: np.random.Generator, api: str, args: int) -> None:
    _push_args(writer, rng, args)
    writer.emit("call", f"ds:{api}")


# ---------------------------------------------------------------------------
# generic motifs (shared across every class, benign included)
# ---------------------------------------------------------------------------
@register_motif("arithmetic_block", generic=True)
def arithmetic_block(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Straight-line arithmetic over random registers."""
    for _ in range(int(rng.integers(3, 8))):
        op = str(rng.choice(_ARITH_OPS))
        if rng.random() < 0.5:
            writer.emit(op, _reg(rng), str(int(rng.integers(1, 100))))
        else:
            writer.emit(op, _reg(rng), _reg(rng))


@register_motif("counting_loop", generic=True)
def counting_loop(writer: MotifWriter, rng: np.random.Generator) -> None:
    """``for (ecx = K; ecx != 0; ecx--)`` with a small arithmetic body."""
    top = writer.fresh_label("loop")
    writer.emit("mov", "ecx", str(int(rng.integers(4, 64))))
    writer.label(top)
    writer.emit(str(rng.choice(("add", "sub"))), _reg(rng), "1")
    writer.emit("dec", "ecx")
    writer.emit("jnz", top)


@register_motif("branch_diamond", generic=True)
def branch_diamond(writer: MotifWriter, rng: np.random.Generator) -> None:
    """A compare with two alternative arms that re-join."""
    alt = writer.fresh_label("alt")
    join = writer.fresh_label("join")
    writer.emit("cmp", _reg(rng), str(int(rng.integers(0, 16))))
    writer.emit(str(rng.choice(("je", "jne", "jg", "jl"))), alt)
    writer.emit("mov", _reg(rng), str(int(rng.integers(0, 100))))
    writer.emit("jmp", join)
    writer.label(alt)
    writer.emit("mov", _reg(rng), _reg(rng))
    writer.label(join)
    writer.emit("test", "eax", "eax")


@register_motif("stack_shuffle", generic=True)
def stack_shuffle(writer: MotifWriter, rng: np.random.Generator) -> None:
    regs = [_reg(rng) for _ in range(int(rng.integers(2, 4)))]
    for reg in regs:
        writer.emit("push", reg)
    for reg in reversed(regs):
        writer.emit("pop", reg)


@register_motif("memory_copy_loop", generic=True)
def memory_copy_loop(writer: MotifWriter, rng: np.random.Generator) -> None:
    top = writer.fresh_label("copy")
    writer.emit("mov", "esi", f"[ebp+var_{int(rng.integers(1, 32)) * 4:X}]")
    writer.emit("mov", "edi", f"[ebp+var_{int(rng.integers(1, 32)) * 4:X}]")
    writer.emit("mov", "ecx", str(int(rng.integers(8, 128))))
    writer.label(top)
    writer.emit("mov", "al", "[esi]")
    writer.emit("mov", "[edi]", "al")
    writer.emit("inc", "esi")
    writer.emit("inc", "edi")
    writer.emit("dec", "ecx")
    writer.emit("jnz", top)


@register_motif("local_call", generic=True)
def local_call(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Call into a shared local utility subroutine (creates a call edge)."""

    def utility(w: MotifWriter, r: np.random.Generator) -> None:
        w.emit("push", "ebp")
        w.emit("mov", "ebp", "esp")
        for _ in range(int(r.integers(2, 5))):
            w.emit(str(r.choice(_ARITH_OPS)), _reg(r), str(int(r.integers(1, 50))))
        w.emit("pop", "ebp")
        w.emit("ret")

    helper = writer.request_helper(f"sub_util_{int(rng.integers(0, 4))}", utility)
    writer.emit("call", helper)
    writer.emit("test", "eax", "eax")


# ---------------------------------------------------------------------------
# family-specific behaviour motifs (Table V patterns)
# ---------------------------------------------------------------------------
@register_motif("code_manipulation")
def code_manipulation(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Call immediately followed by tampering with the returned EAX.

    The paper's micro-level analysis flags ``call X; pop eax`` and
    ``call X; mov eax, ...`` as return-value manipulation.
    """

    def stub(w: MotifWriter, r: np.random.Generator) -> None:
        w.emit("mov", "eax", str(int(r.integers(0, 1000))))
        w.emit("ret")

    variant = int(rng.integers(0, 3))
    if variant == 0:
        helper = writer.request_helper(f"sub_{int(rng.integers(0x400000, 0x420000)):X}", stub)
        writer.emit("call", helper)
        writer.emit("pop", "eax")
        writer.emit("add", "esi", "eax")
    elif variant == 1:
        writer.emit("call", "ds:Sleep")
        writer.emit("mov", "eax", "[ebp+var_EC]")
    else:
        writer.emit("call", "ds:GetModuleFileNameA")
        writer.emit("mov", "eax", "ebx")


@register_motif("xor_decode_loop")
def xor_decode_loop(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Multi-byte XOR decryption loop with a random 4-byte key."""
    key = _hex_const(rng)
    top = writer.fresh_label("decode")
    writer.emit("mov", "esi", f"offset_{_hex_const(rng, 6)}")
    writer.emit("mov", "ecx", str(int(rng.integers(16, 256))))
    writer.label(top)
    writer.emit("mov", "edx", "[esi]")
    writer.emit("xor", "edx", key)
    writer.emit("mov", "[esi]", "edx")
    writer.emit("add", "esi", "4")
    writer.emit("dec", "ecx")
    writer.emit("jnz", top)


@register_motif("xor_byte_obfuscation")
def xor_byte_obfuscation(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Single-byte XOR / register-swap obfuscation (Hupigon, Bifrose style)."""
    key = f"{int(rng.integers(1, 255)):X}h"
    writer.emit("xor", "al", key)
    writer.emit("xchg", "al", "ah")
    writer.emit("xchg", "ah", "al")
    writer.emit("xor", "[ecx]", "al")
    if rng.random() < 0.5:
        writer.emit("xor", "eax", "ecx")


@register_motif("semantic_nop_sled")
def semantic_nop_sled(writer: MotifWriter, rng: np.random.Generator) -> None:
    """NOPs and one-byte NOP aliases used to pad/obfuscate (Bagle, Vundo)."""
    aliases = (
        ("nop", ()),
        ("mov", ("edx", "edx")),
        ("mov", ("esi", "esi")),
        ("mov", ("eax", "eax")),
        ("xchg", ("dl", "dl")),
        ("xchg", ("esp", "esp")),
    )
    for _ in range(int(rng.integers(5, 12))):
        mnemonic, operands = aliases[int(rng.integers(0, len(aliases)))]
        writer.emit(mnemonic, *operands)


@register_motif("self_loop_jump")
def self_loop_jump(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Block that unconditionally loops to itself until patched (Bagle/Vundo)."""
    top = writer.fresh_label("spin")
    skip = writer.fresh_label("skip")
    writer.emit("cmp", "eax", str(int(rng.integers(0, 4))))
    writer.emit("jne", skip)
    writer.label(top)
    writer.emit("nop")
    writer.emit("jmp", top)
    writer.label(skip)
    writer.emit("test", "eax", "eax")


@register_motif("thread_spawn_chain")
def thread_spawn_chain(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Ldpinch-style thread creation with a library start address."""
    writer.emit("push", f"offset_sub_{int(rng.integers(0x400000, 0x410000)):X}")
    _push_args(writer, rng, 2)
    writer.emit("call", "ds:CreateThread")
    writer.emit("mov", "[ebp+hThread]", "eax")
    _api_call(writer, rng, "ReadFile", 4)


@register_motif("pipe_relay")
def pipe_relay(writer: MotifWriter, rng: np.random.Generator) -> None:
    """CreatePipe + two threads relaying between socket and pipe (Ldpinch)."""
    _api_call(writer, rng, "CreatePipe", 4)
    _api_call(writer, rng, "CreateProcessA", 3)
    _api_call(writer, rng, "CreateThread", 3)
    relay = writer.fresh_label("relay")
    done = writer.fresh_label("relay_done")
    writer.label(relay)
    _api_call(writer, rng, "ReadFile", 2)
    _api_call(writer, rng, "send", 2)
    _api_call(writer, rng, "recv", 2)
    _api_call(writer, rng, "WriteFile", 2)
    writer.emit("test", "eax", "eax")
    writer.emit("jz", done)
    writer.emit("jmp", relay)
    writer.label(done)
    writer.emit("xor", "eax", "eax")


@register_motif("registry_persistence")
def registry_persistence(writer: MotifWriter, rng: np.random.Generator) -> None:
    writer.emit("push", "'Software\\\\Microsoft\\\\Windows\\\\CurrentVersion\\\\Run'")
    _api_call(writer, rng, "RegOpenKeyExA", 2)
    _api_call(writer, rng, "RegSetValueExA", 3)
    _api_call(writer, rng, "RegCloseKey", 1)


@register_motif("registry_harvest")
def registry_harvest(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Read stored credentials from registry keys (Ldpinch, Lmir)."""
    loop = writer.fresh_label("harvest")
    done = writer.fresh_label("harvest_done")
    _api_call(writer, rng, "RegOpenKeyExA", 2)
    writer.label(loop)
    _api_call(writer, rng, "RegQueryValueExA", 4)
    writer.emit("test", "eax", "eax")
    writer.emit("jnz", done)
    writer.emit("inc", "ebx")
    writer.emit("cmp", "ebx", str(int(rng.integers(4, 16))))
    writer.emit("jl", loop)
    writer.label(done)
    _api_call(writer, rng, "RegCloseKey", 1)


@register_motif("network_beacon")
def network_beacon(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Backdoor connect/recv command loop (Bifrose, Rbot, Sdbot)."""
    retry = writer.fresh_label("beacon")
    _api_call(writer, rng, "WSAStartup", 2)
    writer.label(retry)
    _api_call(writer, rng, "socket", 3)
    _api_call(writer, rng, "gethostbyname", 1)
    _api_call(writer, rng, "connect", 3)
    writer.emit("test", "eax", "eax")
    writer.emit("jnz", retry)
    _api_call(writer, rng, "recv", 4)


@register_motif("spam_send_loop")
def spam_send_loop(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Mass-mailer SMTP blast (Bagle)."""
    top = writer.fresh_label("spam")
    writer.emit("mov", "edi", str(int(rng.integers(50, 500))))
    writer.label(top)
    _api_call(writer, rng, "gethostbyname", 1)
    _api_call(writer, rng, "socket", 3)
    _api_call(writer, rng, "connect", 3)
    writer.emit("push", "'HELO'")
    _api_call(writer, rng, "send", 3)
    _api_call(writer, rng, "closesocket", 1)
    writer.emit("dec", "edi")
    writer.emit("jnz", top)


@register_motif("http_download")
def http_download(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Downloader: fetch a payload over HTTP and drop it (Swizzor, Zlob)."""
    read = writer.fresh_label("dl")
    done = writer.fresh_label("dl_done")
    _api_call(writer, rng, "InternetOpenA", 2)
    writer.emit("push", "'http://update.example/payload.exe'")
    _api_call(writer, rng, "InternetOpenUrlA", 2)
    writer.label(read)
    _api_call(writer, rng, "InternetReadFile", 4)
    writer.emit("cmp", "eax", "0")
    writer.emit("je", done)
    _api_call(writer, rng, "WriteFile", 4)
    writer.emit("jmp", read)
    writer.label(done)
    _api_call(writer, rng, "WinExec", 2)


@register_motif("process_injection")
def process_injection(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Classic remote-thread injection chain (Hupigon, Zbot)."""
    _api_call(writer, rng, "OpenProcess", 3)
    _api_call(writer, rng, "VirtualAllocEx", 4)
    _api_call(writer, rng, "WriteProcessMemory", 5)
    _api_call(writer, rng, "CreateRemoteThread", 4)


@register_motif("keylogger_poll")
def keylogger_poll(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Poll GetAsyncKeyState across the keyboard (Hupigon, Lmir)."""
    top = writer.fresh_label("keys")
    store = writer.fresh_label("key_store")
    next_key = writer.fresh_label("key_next")
    writer.emit("mov", "esi", "8")
    writer.label(top)
    writer.emit("push", "esi")
    writer.emit("call", "ds:GetAsyncKeyState")
    writer.emit("test", "eax", "8000h")
    writer.emit("jnz", store)
    writer.emit("jmp", next_key)
    writer.label(store)
    writer.emit("mov", "[edi]", "al")
    writer.emit("inc", "edi")
    writer.label(next_key)
    writer.emit("inc", "esi")
    writer.emit("cmp", "esi", "255")
    writer.emit("jl", top)


@register_motif("timing_check")
def timing_check(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Anti-debug timing check (Sdbot's QueryPerformanceCounter pattern)."""
    ok = writer.fresh_label("time_ok")
    writer.emit("call", "ds:QueryPerformanceCounter")
    writer.emit("mov", "eax", "[ebp+var_9C]")
    writer.emit("call", "ds:GetTickCount")
    writer.emit("sub", "eax", "ebx")
    writer.emit("cmp", "eax", _hex_const(rng, 4))
    writer.emit("jl", ok)
    _api_call(writer, rng, "ExitProcess", 1)
    writer.label(ok)
    writer.emit("xor", "eax", "eax")


@register_motif("seh_prolog")
def seh_prolog(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Swizzor's ``call _SEH_prolog; mov eax, dword_...`` preamble."""

    def seh(w: MotifWriter, r: np.random.Generator) -> None:
        w.emit("push", "ebp")
        w.emit("mov", "ebp", "esp")
        w.emit("push", "eax")
        w.emit("pop", "eax")
        w.emit("ret")

    helper = writer.request_helper("_SEH_prolog", seh)
    writer.emit("call", helper)
    writer.emit("mov", "eax", f"dword_{_hex_const(rng, 6)}")
    writer.emit("xor", "eax", "0FFFFFFFFh")


@register_motif("self_replicate")
def self_replicate(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Copy own executable to a system path (worm behaviour)."""
    _api_call(writer, rng, "GetModuleFileNameA", 3)
    _api_call(writer, rng, "GetTempPathA", 2)
    _api_call(writer, rng, "CopyFileA", 3)


@register_motif("dispatch_table")
def dispatch_table(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Bot command dispatcher: cmp/je chain over command ids (Rbot, Sdbot)."""
    handlers = int(rng.integers(3, 7))
    done = writer.fresh_label("dispatch_done")
    labels = [writer.fresh_label(f"cmd{i}") for i in range(handlers)]
    for i, target in enumerate(labels):
        writer.emit("cmp", "eax", str(i + 1))
        writer.emit("je", target)
    writer.emit("jmp", done)
    for target in labels:
        writer.label(target)
        writer.emit("mov", "ebx", str(int(rng.integers(0, 100))))
        writer.emit("jmp", done)
    writer.label(done)
    writer.emit("test", "ebx", "ebx")


@register_motif("format_and_report")
def format_and_report(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Zlob's wsprintfA result manipulation + beacon."""
    writer.emit("call", "ds:wsprintfA")
    writer.emit("mov", "eax", "[ebp+hModule]")
    _api_call(writer, rng, "send", 2)


@register_motif("sleep_jitter")
def sleep_jitter(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Zbot's ``call j_SleepEx; movzx eax, ...`` cadence."""
    writer.emit("push", str(int(rng.integers(1000, 60000))))
    writer.emit("call", "j_SleepEx")
    writer.emit("movzx", "eax", "[ecx]")


@register_motif("service_install")
def service_install(writer: MotifWriter, rng: np.random.Generator) -> None:
    _api_call(writer, rng, "OpenSCManagerA", 3)
    _api_call(writer, rng, "CreateServiceA", 5)
    _api_call(writer, rng, "StartServiceA", 2)


# ---------------------------------------------------------------------------
# benign-leaning motifs
# ---------------------------------------------------------------------------
@register_motif("benign_file_io")
def benign_file_io(writer: MotifWriter, rng: np.random.Generator) -> None:
    """Ordinary open/read/process/write/close file handling."""
    _api_call(writer, rng, "CreateFileA", 3)
    _api_call(writer, rng, "ReadFile", 4)
    writer.emit("add", "eax", "ebx")
    _api_call(writer, rng, "WriteFile", 4)


@register_motif("ui_message")
def ui_message(writer: MotifWriter, rng: np.random.Generator) -> None:
    writer.emit("push", "'Ready'")
    _api_call(writer, rng, "MessageBoxA", 3)
    _api_call(writer, rng, "GetForegroundWindow", 0)
    _api_call(writer, rng, "GetWindowTextA", 3)


@register_motif("checksum_loop")
def checksum_loop(writer: MotifWriter, rng: np.random.Generator) -> None:
    """A benign rolling checksum — arithmetic-heavy but no obfuscation."""
    top = writer.fresh_label("crc")
    writer.emit("xor", "eax", "eax")
    writer.emit("mov", "ecx", str(int(rng.integers(32, 512))))
    writer.label(top)
    writer.emit("movzx", "edx", "[esi]")
    writer.emit("add", "eax", "edx")
    writer.emit("rol", "eax", "3")
    writer.emit("inc", "esi")
    writer.emit("dec", "ecx")
    writer.emit("jnz", top)
