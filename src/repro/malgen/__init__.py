"""Synthetic malware corpus generator (YANCFG dataset substitute).

The paper evaluates on 1056 real CFGs from 11 malware families plus one
benign class.  Offline we cannot ship malware binaries, so this package
generates x86-like programs for the same 12 classes.  Each family mixes
a shared pool of generic motifs (so classes overlap, as real software
does) with family-specific behaviour motifs taken from the paper's own
qualitative analysis (Table V): code manipulation, XOR obfuscation,
semantic-NOP sleds, and characteristic Windows API call chains.

Because the generator records which instruction spans each motif
produced, every basic block carries ground-truth motif tags — which the
paper's real dataset lacks — letting us additionally validate that
explainers surface the planted discriminative blocks.
"""

from repro.malgen.apis import API_GROUPS, api_names
from repro.malgen.corpus import LabeledSample, generate_corpus
from repro.malgen.families import (
    FAMILIES,
    FamilyProfile,
    family_profile,
    generate_program,
)
from repro.malgen.motifs import GENERIC_MOTIFS, MOTIF_LIBRARY, MotifWriter

__all__ = [
    "API_GROUPS",
    "api_names",
    "FAMILIES",
    "FamilyProfile",
    "family_profile",
    "generate_program",
    "LabeledSample",
    "generate_corpus",
    "MotifWriter",
    "MOTIF_LIBRARY",
    "GENERIC_MOTIFS",
]
