"""Windows API vocabulary used by the corpus generators.

Grouped by the behaviours the paper's macro-level analysis (Section V-D)
looks for: process/thread creation, file and pipe I/O, registry access,
network communication, memory manipulation, timing, and UI/keyboard.
"""

from __future__ import annotations

__all__ = ["API_GROUPS", "api_names", "group_of"]

API_GROUPS: dict[str, tuple[str, ...]] = {
    "process": (
        "CreateProcessA",
        "CreateThread",
        "CreateRemoteThread",
        "OpenProcess",
        "TerminateProcess",
        "ExitProcess",
        "GetCurrentProcess",
        "WinExec",
    ),
    "file": (
        "CreateFileA",
        "ReadFile",
        "WriteFile",
        "DeleteFileA",
        "CopyFileA",
        "CreatePipe",
        "GetModuleFileNameA",
        "FindFirstFileA",
        "FindNextFileA",
        "GetTempPathA",
    ),
    "registry": (
        "RegOpenKeyExA",
        "RegSetValueExA",
        "RegQueryValueExA",
        "RegCreateKeyExA",
        "RegCloseKey",
        "RegDeleteValueA",
    ),
    "network": (
        "socket",
        "connect",
        "send",
        "recv",
        "bind",
        "listen",
        "accept",
        "closesocket",
        "WSAStartup",
        "gethostbyname",
        "InternetOpenA",
        "InternetOpenUrlA",
        "InternetReadFile",
        "HttpSendRequestA",
    ),
    "memory": (
        "VirtualAlloc",
        "VirtualAllocEx",
        "VirtualProtect",
        "WriteProcessMemory",
        "ReadProcessMemory",
        "HeapAlloc",
        "GlobalAlloc",
        "LoadLibraryA",
        "GetProcAddress",
    ),
    "timing": (
        "Sleep",
        "SleepEx",
        "GetTickCount",
        "QueryPerformanceCounter",
        "GetSystemTimeAsFileTime",
    ),
    "ui": (
        "GetAsyncKeyState",
        "GetForegroundWindow",
        "GetWindowTextA",
        "SetWindowsHookExA",
        "FindWindowA",
        "MessageBoxA",
        "wsprintfA",
    ),
    "service": (
        "OpenSCManagerA",
        "CreateServiceA",
        "StartServiceA",
        "OpenServiceA",
    ),
}

_GROUP_OF: dict[str, str] = {
    name: group for group, names in API_GROUPS.items() for name in names
}


def api_names(*groups: str) -> tuple[str, ...]:
    """All API names in the given groups (all groups if none specified)."""
    if not groups:
        groups = tuple(API_GROUPS)
    names: list[str] = []
    for group in groups:
        try:
            names.extend(API_GROUPS[group])
        except KeyError:
            raise ValueError(f"unknown API group {group!r}") from None
    return tuple(names)


def group_of(api: str) -> str | None:
    """The behaviour group an API belongs to, or ``None`` if unknown."""
    return _GROUP_OF.get(api)
