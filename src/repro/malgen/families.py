"""Per-family program generators for the 12 ACFG classes of the paper.

Each :class:`FamilyProfile` mixes the shared generic motifs with the
behaviour motifs the paper's Table V attributes to that family.  The
generic pool keeps classes overlapping (every real program pushes
registers and loops); the signature pool makes them separable and gives
explainers something real to find.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disasm.program import Program, ProgramBuilder
from repro.malgen.motifs import GENERIC_MOTIFS, MOTIF_LIBRARY, MotifSpan, MotifWriter

__all__ = ["FamilyProfile", "FAMILIES", "family_profile", "generate_program"]


@dataclass(frozen=True)
class FamilyProfile:
    """Recipe for one ACFG class.

    ``signature_motifs`` maps motif name → sampling weight; these are the
    family's discriminative behaviours.  ``signature_rate`` is the
    probability that any given emitted motif is drawn from the signature
    pool rather than the generic pool.
    """

    name: str
    signature_motifs: dict[str, float]
    signature_rate: float = 0.45
    functions: tuple[int, int] = (3, 7)
    motifs_per_function: tuple[int, int] = (2, 5)

    def __post_init__(self):
        unknown = set(self.signature_motifs) - set(MOTIF_LIBRARY)
        if unknown:
            raise ValueError(f"{self.name}: unknown motifs {sorted(unknown)}")
        if not 0.0 <= self.signature_rate <= 1.0:
            raise ValueError("signature_rate must be in [0, 1]")


# The 11 malware families + benign, in the paper's order.  Signature
# pools follow Table V (micro patterns) and Section V-D (macro behaviour);
# per-family function-count ranges reflect that families also differ
# structurally (bots ship large command loops, droppers stay small),
# which is what lets a GCN on count features reach paper-level accuracy.
_PROFILES: dict[str, FamilyProfile] = {
    profile.name: profile
    for profile in (
        FamilyProfile(
            "Bagle",
            {
                "code_manipulation": 2.0,
                "semantic_nop_sled": 2.0,
                "self_loop_jump": 1.0,
                "spam_send_loop": 2.0,
                "self_replicate": 1.0,
            },
            signature_rate=0.65,
            functions=(2, 4),
        ),
        FamilyProfile(
            "Bifrose",
            {
                "code_manipulation": 2.0,
                "xor_byte_obfuscation": 2.0,
                "network_beacon": 2.0,
                "registry_persistence": 1.0,
            },
            signature_rate=0.65,
            functions=(4, 8),
        ),
        FamilyProfile(
            "Hupigon",
            {
                "xor_byte_obfuscation": 2.5,
                "process_injection": 2.0,
                "keylogger_poll": 1.5,
                "service_install": 1.0,
            },
            signature_rate=0.65,
            functions=(6, 10),
        ),
        FamilyProfile(
            "Ldpinch",
            {
                "code_manipulation": 1.5,
                "thread_spawn_chain": 2.0,
                "pipe_relay": 2.0,
                "registry_harvest": 1.5,
            },
            signature_rate=0.65,
            functions=(3, 5),
        ),
        FamilyProfile(
            "Lmir",
            {
                "code_manipulation": 2.0,
                "xor_decode_loop": 2.0,
                "keylogger_poll": 2.0,
                "registry_harvest": 1.0,
            },
            signature_rate=0.65,
            functions=(5, 9),
        ),
        FamilyProfile(
            "Rbot",
            {
                "code_manipulation": 1.5,
                "dispatch_table": 2.5,
                "network_beacon": 2.0,
                "self_replicate": 1.0,
            },
            signature_rate=0.65,
            functions=(7, 12),
        ),
        FamilyProfile(
            "Sdbot",
            {
                "code_manipulation": 1.5,
                "timing_check": 2.0,
                "dispatch_table": 2.0,
                "network_beacon": 1.5,
            },
            signature_rate=0.60,
            functions=(4, 8),
        ),
        FamilyProfile(
            "Swizzor",
            {
                "seh_prolog": 2.5,
                "code_manipulation": 1.5,
                "http_download": 2.0,
                "timing_check": 1.0,
            },
            signature_rate=0.70,
            functions=(2, 4),
        ),
        FamilyProfile(
            "Vundo",
            {
                "xor_decode_loop": 2.5,
                "semantic_nop_sled": 2.0,
                "self_loop_jump": 1.5,
                "process_injection": 1.0,
            },
            signature_rate=0.70,
            functions=(2, 3),
        ),
        FamilyProfile(
            "Zbot",
            {
                "sleep_jitter": 2.0,
                "xor_decode_loop": 2.0,
                "process_injection": 1.5,
                "http_download": 1.5,
                "registry_harvest": 1.0,
            },
            signature_rate=0.60,
            functions=(5, 8),
        ),
        FamilyProfile(
            "Zlob",
            {
                "format_and_report": 2.5,
                "http_download": 2.0,
                "registry_persistence": 2.0,
                "service_install": 1.0,
            },
            signature_rate=0.65,
            functions=(3, 6),
        ),
        FamilyProfile(
            "Benign",
            {
                "benign_file_io": 2.0,
                "ui_message": 2.0,
                "checksum_loop": 2.0,
            },
            signature_rate=0.40,
            functions=(3, 10),
        ),
    )
}

#: Class names in the paper's order (11 malware + Benign last).
FAMILIES: tuple[str, ...] = (
    "Bagle",
    "Bifrose",
    "Hupigon",
    "Ldpinch",
    "Lmir",
    "Rbot",
    "Sdbot",
    "Swizzor",
    "Vundo",
    "Zbot",
    "Zlob",
    "Benign",
)


def family_profile(name: str) -> FamilyProfile:
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown family {name!r}; expected one of {list(FAMILIES)}"
        ) from None


def _weighted_choice(
    rng: np.random.Generator, pool: dict[str, float]
) -> str | None:
    names = [n for n, w in pool.items() if w > 0]
    weights = np.array([pool[n] for n in names], dtype=float)
    if not names:
        return None
    return str(rng.choice(names, p=weights / weights.sum()))


def generate_program(
    family: str, seed: int, size_multiplier: int = 1
) -> tuple[Program, list[MotifSpan]]:
    """Generate one program of the given family, with its motif spans.

    Programs are a chain of functions; ``main`` calls each in sequence
    and every function is a prologue + sampled motifs + epilogue.  The
    same seed always yields the same program.  ``size_multiplier``
    scales the function count, growing graphs toward the paper's
    hundreds-to-thousands of basic blocks per CFG.
    """
    if size_multiplier < 1:
        raise ValueError("size_multiplier must be >= 1")
    profile = family_profile(family)
    rng = np.random.default_rng(seed)
    writer = MotifWriter(ProgramBuilder(f"{family.lower()}_{seed:05d}"))

    low, high = profile.functions
    function_count = int(
        rng.integers(low * size_multiplier, high * size_multiplier, endpoint=True)
    )
    function_labels = [f"sub_fn{i}" for i in range(function_count)]

    # main: call every function, then exit.
    for label in function_labels:
        writer.emit("call", label)
    writer.emit("push", "0")
    writer.emit("call", "ds:ExitProcess")

    # GENERIC_MOTIFS is a set: its iteration order varies with the
    # per-interpreter hash seed, and the order feeds rng.choice — sort so
    # the same seed yields the same program in *any* process (worker
    # processes rebuild the corpus and must get bit-identical graphs).
    generic_pool = {name: 1.0 for name in sorted(GENERIC_MOTIFS)}
    for label in function_labels:
        writer.label(label)
        writer.emit("push", "ebp")
        writer.emit("mov", "ebp", "esp")
        motif_count = int(rng.integers(*profile.motifs_per_function, endpoint=True))
        for _ in range(motif_count):
            if rng.random() < profile.signature_rate:
                name = _weighted_choice(rng, profile.signature_motifs)
            else:
                name = _weighted_choice(rng, generic_pool)
            if name is not None:
                writer.run_motif(name, rng)
        writer.emit("mov", "esp", "ebp")
        writer.emit("pop", "ebp")
        writer.emit("ret")

    writer.flush_helpers(rng)
    return writer.build(), list(writer.spans)
