"""Corpus assembly: labelled programs with CFGs and block-level motif tags."""

from __future__ import annotations

from dataclasses import dataclass

from repro.disasm.cfg import CFG, build_cfg
from repro.disasm.program import Program
from repro.malgen.families import FAMILIES, generate_program
from repro.malgen.motifs import GENERIC_MOTIFS, MotifSpan
from repro.obs import add_counter
from repro.obs import span as obs_span

__all__ = ["LabeledSample", "generate_corpus", "block_motif_tags"]


@dataclass
class LabeledSample:
    """One corpus entry: the program, its CFG, label, and ground truth."""

    program: Program
    cfg: CFG
    family: str
    label: int
    motif_spans: list[MotifSpan]
    block_tags: list[frozenset[str]]

    @property
    def signature_blocks(self) -> list[int]:
        """Blocks containing at least one non-generic (signature) motif."""
        return [
            index
            for index, tags in enumerate(self.block_tags)
            if any(t not in GENERIC_MOTIFS and not t.startswith("helper:") for t in tags)
        ]


def block_motif_tags(cfg: CFG, spans: list[MotifSpan]) -> list[frozenset[str]]:
    """Motif names overlapping each basic block's instruction range."""
    tags: list[frozenset[str]] = []
    for block in cfg.blocks:
        block_start = block.start
        block_stop = block.start + len(block.instructions)
        overlapping = {
            span.name
            for span in spans
            if span.start < block_stop and block_start < span.stop
        }
        tags.append(frozenset(overlapping))
    return tags


def generate_corpus(
    samples_per_family: int,
    seed: int = 0,
    families: tuple[str, ...] = FAMILIES,
    size_multiplier: int = 1,
) -> list[LabeledSample]:
    """Generate a balanced labelled corpus.

    Seeds are derived as ``seed * 100_000 + label * 1_000 + i`` so corpora
    with different base seeds share no programs.  ``size_multiplier``
    scales per-program function counts (larger graphs, paper-ward).
    """
    if samples_per_family <= 0:
        raise ValueError("samples_per_family must be positive")
    corpus: list[LabeledSample] = []
    with obs_span("corpus.generate"):
        for label, family in enumerate(families):
            for i in range(samples_per_family):
                program_seed = seed * 100_000 + label * 1_000 + i
                program, spans = generate_program(family, program_seed, size_multiplier)
                cfg = build_cfg(program)
                corpus.append(
                    LabeledSample(
                        program=program,
                        cfg=cfg,
                        family=family,
                        label=label,
                        motif_spans=spans,
                        block_tags=block_motif_tags(cfg, spans),
                    )
                )
        add_counter("corpus.graphs", len(corpus))
        add_counter("corpus.blocks", sum(len(s.cfg.blocks) for s in corpus))
    return corpus
