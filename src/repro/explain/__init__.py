"""Common explainer interface, explanation objects, and quality metrics."""

from repro.explain.base import Explainer, RankingExplainer
from repro.explain.explanation import Explanation, SubgraphLevel
from repro.explain.groundtruth import (
    SignatureRecovery,
    mean_signature_recovery,
    signature_recovery,
)
from repro.explain.metrics import (
    accuracy_auc,
    fidelity_minus_acc,
    fidelity_plus_acc,
    sparsity,
    subgraph_accuracy,
    sweep_accuracy_curve,
)

__all__ = [
    "Explanation",
    "SubgraphLevel",
    "Explainer",
    "RankingExplainer",
    "subgraph_accuracy",
    "sweep_accuracy_curve",
    "accuracy_auc",
    "fidelity_minus_acc",
    "fidelity_plus_acc",
    "sparsity",
    "SignatureRecovery",
    "signature_recovery",
    "mean_signature_recovery",
]
