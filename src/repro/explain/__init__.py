"""Common explainer interface, explanation objects, and quality metrics."""

from repro.explain.base import Explainer, RankingExplainer
from repro.explain.counterfactual import CFExplainer, CounterfactualResult
from repro.explain.explanation import Explanation, SubgraphLevel, kept_count
from repro.explain.groundtruth import (
    SignatureRecovery,
    mean_signature_recovery,
    signature_recovery,
)
from repro.explain.metrics import (
    accuracy_auc,
    edit_size,
    fidelity_minus_acc,
    fidelity_plus_acc,
    necessity,
    sparsity,
    subgraph_accuracy,
    sufficiency,
    sweep_accuracy_curve,
)

__all__ = [
    "Explanation",
    "SubgraphLevel",
    "kept_count",
    "Explainer",
    "RankingExplainer",
    "CFExplainer",
    "CounterfactualResult",
    "subgraph_accuracy",
    "sweep_accuracy_curve",
    "accuracy_auc",
    "fidelity_minus_acc",
    "fidelity_plus_acc",
    "sparsity",
    "sufficiency",
    "necessity",
    "edit_size",
    "SignatureRecovery",
    "signature_recovery",
    "mean_signature_recovery",
]
