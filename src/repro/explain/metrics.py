"""Quality metrics for explanations.

``subgraph_accuracy`` and ``accuracy_auc`` are the paper's Section V-B
metrics (Figure 2 / Table III).  ``fidelity_minus_acc`` and
``fidelity_plus_acc`` follow the taxonomy survey [31] the paper cites
for its fidelity discussion, and ``sparsity`` completes that metric set.
"""

from __future__ import annotations

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.explanation import Explanation
from repro.gnn.model import GCNClassifier

__all__ = [
    "subgraph_accuracy",
    "sweep_accuracy_curve",
    "accuracy_auc",
    "fidelity_minus_acc",
    "fidelity_plus_acc",
    "sparsity",
    "sufficiency",
    "necessity",
    "edit_size",
]


def _canonical_percents(fractions) -> list[int]:
    """Ladder fractions as integer percents (the lift-safe canonical form)."""
    return [int(round(100 * float(f))) for f in fractions]


def _target_class(graph: ACFG, model: GCNClassifier, against_prediction: bool) -> int:
    """What counts as 'correct' for a subgraph prediction.

    The paper measures whether the subgraph still yields the malware
    family identified for the full graph; using the GNN's own prediction
    keeps the metric about *explanation faithfulness* rather than model
    accuracy.  ``against_prediction=False`` compares to ground truth.
    """
    return model.predict(graph) if against_prediction else graph.label


def subgraph_accuracy(
    model: GCNClassifier,
    explanations: list[Explanation],
    fraction: float,
    against_prediction: bool = True,
) -> float:
    """Fraction of explanations whose top-``fraction`` subgraph classifies
    to the same class as the original graph."""
    if not explanations:
        raise ValueError("need at least one explanation")
    correct = 0
    for explanation in explanations:
        level = explanation.level_at(fraction)
        predicted = model.predict_subgraph(explanation.graph, level.kept_nodes)
        target = _target_class(explanation.graph, model, against_prediction)
        correct += int(predicted == target)
    return correct / len(explanations)


def sweep_accuracy_curve(
    model: GCNClassifier,
    explanations: list[Explanation],
    against_prediction: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Accuracy at every ladder fraction: the per-family Figure 2 curve.

    Returns ``(fractions, accuracies)`` sorted by fraction.
    """
    if not explanations:
        raise ValueError("need at least one explanation")
    fractions = explanations[0].fractions
    # Compare ladders in canonical integer-percent form: lifted
    # explanations rebuild their fractions via round(100 * f) / 100, so
    # a float-exact != would spuriously split e.g. 0.30000000000000004
    # from 0.3 when lifted and unlifted explanations mix in one sweep.
    canonical = _canonical_percents(fractions)
    if any(_canonical_percents(e.fractions) != canonical for e in explanations):
        raise ValueError("explanations have mismatched ladder fractions")
    accuracies = [
        subgraph_accuracy(model, explanations, fraction, against_prediction)
        for fraction in fractions
    ]
    return np.asarray(fractions), np.asarray(accuracies)


def accuracy_auc(fractions: np.ndarray, accuracies: np.ndarray) -> float:
    """Area under the accuracy-vs-size curve, x normalized to [0, 1].

    The paper anchors the curve at (0, 0) — an empty subgraph classifies
    nothing — so AUC ∈ [0, 1] and larger means smaller subgraphs retain
    more accuracy.
    """
    fractions = np.asarray(fractions, dtype=float)
    accuracies = np.asarray(accuracies, dtype=float)
    if fractions.shape != accuracies.shape or fractions.size == 0:
        raise ValueError("fractions and accuracies must be equal-length, nonempty")
    order = np.argsort(fractions)
    x = np.concatenate([[0.0], fractions[order]])
    y = np.concatenate([[0.0], accuracies[order]])
    return float(np.trapezoid(y, x))


def fidelity_minus_acc(
    model: GCNClassifier, explanations: list[Explanation], fraction: float
) -> float:
    """fidelity-^acc: accuracy drop from keeping ONLY the important part.

    ``full_acc - kept_acc`` — closer to 0 (or negative) is better: the
    explanation alone suffices to reproduce the prediction.
    """
    full = _full_accuracy(model, explanations)
    kept = subgraph_accuracy(model, explanations, fraction, against_prediction=False)
    return full - kept


def fidelity_plus_acc(
    model: GCNClassifier, explanations: list[Explanation], fraction: float
) -> float:
    """fidelity+^acc: accuracy drop from REMOVING the important part.

    ``full_acc - removed_acc`` — larger is better: the explanation is
    necessary for the prediction.
    """
    full = _full_accuracy(model, explanations)
    correct = 0
    for explanation in explanations:
        graph = explanation.graph
        important = set(explanation.top_nodes(fraction).tolist())
        complement = np.array(
            [i for i in range(graph.n_real) if i not in important], dtype=int
        )
        if complement.size == 0:
            # A fully-kept explanation leaves nothing to classify after
            # removal.  It stays in the denominator below and simply
            # never increments ``correct`` — i.e. removal is scored as
            # an incorrect prediction, not dropped from the metric.
            continue
        predicted = model.predict_subgraph(graph, complement)
        correct += int(predicted == graph.label)
    removed = correct / len(explanations)
    return full - removed


def sparsity(explanation: Explanation, fraction: float) -> float:
    """Share of nodes NOT in the explanation (1 - kept / real)."""
    kept = explanation.top_nodes(fraction).size
    return 1.0 - kept / explanation.graph.n_real


def sufficiency(
    model: GCNClassifier, explanations: list[Explanation], fraction: float
) -> float:
    """CFF's factual axis: does the explanation alone KEEP the class?

    Fraction of explanations whose top-``fraction`` subgraph still
    classifies to the explanation's own predicted class.  Higher is
    better — a sufficient explanation carries the evidence for the
    family call by itself.
    """
    if not explanations:
        raise ValueError("need at least one explanation")
    keeps = 0
    for explanation in explanations:
        kept = explanation.top_nodes(fraction)
        predicted = model.predict_subgraph(explanation.graph, kept)
        keeps += int(predicted == explanation.predicted_class)
    return keeps / len(explanations)


def necessity(
    model: GCNClassifier, explanations: list[Explanation], fraction: float
) -> float:
    """CFF's counterfactual axis: does removing the explanation LOSE the class?

    Fraction of explanations whose residual graph — everything except
    the top-``fraction`` nodes — no longer classifies to the predicted
    class.  Higher is better — a necessary explanation cannot be cut out
    without the family call disappearing.  An empty residual (the
    explanation kept every node) counts as lost: with no nodes left
    there is nothing to sustain the prediction.
    """
    if not explanations:
        raise ValueError("need at least one explanation")
    lost = 0
    for explanation in explanations:
        graph = explanation.graph
        important = set(explanation.top_nodes(fraction).tolist())
        complement = np.array(
            [i for i in range(graph.n_real) if i not in important], dtype=int
        )
        if complement.size == 0:
            lost += 1
            continue
        predicted = model.predict_subgraph(graph, complement)
        lost += int(predicted != explanation.predicted_class)
    return lost / len(explanations)


def edit_size(explanations: list[Explanation], fraction: float) -> float:
    """Mean share of undirected edges the ``necessity`` edit deletes.

    Cutting the top-``fraction`` nodes out of a graph severs every edge
    incident to them; this is that cut's size relative to the graph's
    undirected (symmetrized, off-diagonal) real-edge count, averaged
    over the explanations.  Lower is better: a small, surgical edit that
    still flips the prediction is the counterfactual ideal.  Edgeless
    graphs contribute 0.
    """
    if not explanations:
        raise ValueError("need at least one explanation")
    shares = []
    for explanation in explanations:
        graph = explanation.graph
        real = graph.adjacency[: graph.n_real, : graph.n_real]
        sym = np.maximum(real, real.T)
        iu, ju = np.nonzero(np.triu(sym, k=1))
        if iu.size == 0:
            shares.append(0.0)
            continue
        important = set(explanation.top_nodes(fraction).tolist())
        cut = sum(
            1 for i, j in zip(iu, ju) if int(i) in important or int(j) in important
        )
        shares.append(cut / iu.size)
    return float(np.mean(shares))


def _full_accuracy(model: GCNClassifier, explanations: list[Explanation]) -> float:
    if not explanations:
        raise ValueError("need at least one explanation")
    correct = sum(
        1 for e in explanations if model.predict(e.graph) == e.graph.label
    )
    return correct / len(explanations)
