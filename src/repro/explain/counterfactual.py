"""CFExplainer — counterfactual edge-deletion explanations.

The factual explainers answer "which subgraph *keeps* the prediction";
this one answers the dual question from CF-GNNExplainer (Lucic et al.,
2022) and CFF: **which minimal set of control-flow edges, when deleted,
makes the predicted malware family disappear?**

For one classified ACFG, a keep-probability is learned per undirected
edge of the symmetrized real-node adjacency.  Each step samples a
binary-concrete relaxation of the mask (symmetric logistic noise over
symmetric logits, temperature ``tau``), rebuilds the *renormalized*
propagation matrix ``Â = D^{-1/2}(M ⊙ A_sym + I_active)D^{-1/2}``
differentiably — the degree renormalization matters: deleting edges
boosts the survivors' weights, and a relaxation that ignores it
optimizes the wrong model — and descends

    loss = -log(1 - p_original) + l1_weight * (soft deletion mass)

so the mask is pushed until the original class loses probability with
as few deletions as possible.  After every step the mask is hardened at
0.5 and the *actual* edited graph (both edge directions zeroed, Â
recomputed from scratch) is classified; the smallest deletion set that
flips the prediction is kept.  A final greedy pass walks the edges in
ascending keep-probability and takes the shortest flipping prefix,
which both rescues graphs whose mask never crosses the threshold and
shrinks the edit (the relaxation over-deletes; prefixes of its ordering
usually flip much earlier).

The node ranking — what slots this into the ``Explanation`` ladder and
every existing sweep — scores each real node by the *deletion mass of
its incident edges* (1 - keep probability, summed over both incident
directions): nodes whose edges the counterfactual must cut are the
nodes the prediction hinges on.

Failure modes degrade, never raise: an edgeless (or fully disconnected)
graph, an exhausted iteration budget, or a :class:`~repro.nn.guards.
NumericalError` mid-descent all produce a :class:`CounterfactualResult`
with ``flipped=False`` and whatever soft scores were learned — the
fuzzer's "typed result or bust" invariant holds on hostile inputs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.base import RankingExplainer
from repro.gnn.model import GCNClassifier
from repro.gnn.normalize import normalized_adjacency
from repro.nn import Adam, Tensor, no_grad
from repro.nn.guards import NumericalError, clip_grad_norm

__all__ = ["CFExplainer", "CounterfactualResult"]


@dataclass(frozen=True)
class CounterfactualResult:
    """Outcome of one counterfactual search.

    ``deleted_edges`` lists undirected real-node pairs ``(i, j)`` with
    ``i < j``; deleting both directions of exactly these edges changes
    the model's prediction from ``original_class`` to
    ``counterfactual_class``.  When no flip was found inside the budget
    (``flipped=False``) the edit set is empty, ``counterfactual_class``
    is None, and the soft ``node_scores`` still rank nodes by how hard
    the optimizer tried to cut their edges.
    """

    graph_name: str
    flipped: bool
    original_class: int
    counterfactual_class: int | None
    deleted_edges: tuple[tuple[int, int], ...]
    iterations_run: int
    node_scores: np.ndarray

    @property
    def edit_size(self) -> int:
        """Number of undirected edges the counterfactual deletes."""
        return len(self.deleted_edges)


class CFExplainer(RankingExplainer):
    """Counterfactual edge-deletion explainer.

    Parameters
    ----------
    model:
        The frozen, pre-trained GNN classifier to explain.
    iterations:
        Optimization steps per graph.  The default holds a wide margin
        over the ~80 steps the hardest synthetic-corpus graphs need.
    lr:
        Adam learning rate for the mask logits.
    l1_weight:
        Coefficient of the soft deletion-mass penalty (edit sparsity).
    tau:
        Binary-concrete temperature; lower is closer to discrete.
    grad_clip:
        Global-norm gradient clip guarding the descent.
    seed:
        Base seed; each graph derives a private stream from
        ``(seed, crc32(graph.name))`` so results are deterministic and
        independent of explanation order.
    """

    name = "CFExplainer"

    def __init__(
        self,
        model: GCNClassifier,
        iterations: int = 150,
        lr: float = 0.3,
        l1_weight: float = 0.002,
        tau: float = 1.0,
        grad_clip: float = 10.0,
        seed: int = 0,
    ):
        super().__init__(model)
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.iterations = iterations
        self.lr = lr
        self.l1_weight = l1_weight
        self.tau = tau
        self.grad_clip = grad_clip
        self.seed = seed

    # ------------------------------------------------------------------
    # RankingExplainer interface
    # ------------------------------------------------------------------
    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        result = self.counterfactual(graph)
        scores = result.node_scores
        order = np.argsort(-scores, kind="stable")
        return order, scores

    # ------------------------------------------------------------------
    # the counterfactual search
    # ------------------------------------------------------------------
    def counterfactual(self, graph: ACFG) -> CounterfactualResult:
        """Search for the minimal edge-deletion set that flips ``graph``."""
        if graph.n_real == 0:
            raise ValueError("cannot explain a graph with no real nodes")
        n, n_real = graph.n, graph.n_real
        active = np.zeros(n, dtype=bool)
        active[:n_real] = True
        original = self.model.predict(graph)

        sym = np.maximum(graph.adjacency, graph.adjacency.T)
        iu, ju = np.nonzero(np.triu(sym[:n_real, :n_real], k=1))
        if iu.size == 0:
            # Single-node or edgeless graph: there is nothing to delete,
            # so no counterfactual of this form exists.  Degrade.
            return CounterfactualResult(
                graph_name=graph.name,
                flipped=False,
                original_class=original,
                counterfactual_class=None,
                deleted_edges=(),
                iterations_run=0,
                node_scores=np.zeros(n_real),
            )

        support = np.zeros((n, n))
        support[iu, ju] = 1.0
        support[ju, iu] = 1.0
        # Entries of A_sym outside the mask support (self-jump diagonal
        # blocks) plus the active-node self-loops stay constant.
        const = sym * (1.0 - support) + np.diag(active.astype(np.float64))
        # Padded rows have zero degree; +1 keeps D^{-1/2} finite there
        # (their Â rows are all-zero regardless).
        degree_guard = (~active).astype(np.float64)[:, None]

        rng = np.random.default_rng(
            (self.seed, zlib.crc32(graph.name.encode("utf-8")))
        )
        # Start from "keep everything" (sigmoid(3) ≈ 0.95): the search
        # walks from the intact graph toward the decision boundary.
        logits = Tensor(np.full((n, n), 3.0), requires_grad=True)
        sym_t, support_t = Tensor(sym), Tensor(support)
        const_t, guard_t = Tensor(const), Tensor(degree_guard)
        optimizer = Adam([logits], lr=self.lr)

        best: tuple[list[tuple[int, int]], int] | None = None
        iterations_run = 0
        try:
            for _ in range(self.iterations):
                optimizer.zero_grad()
                keep = self._sample_keep(logits, rng, n)
                with_loops = sym_t * keep * support_t + const_t
                degree = with_loops.sum(axis=1, keepdims=True) + guard_t
                inv_sqrt = degree**-0.5
                a_hat = with_loops * inv_sqrt * inv_sqrt.T
                z = self.model.embed_normalized(a_hat, graph.features, active)
                probs = self.model.classify(z)
                p_original = probs.reshape(-1)[original : original + 1]
                flip_loss = -((1.0 - p_original).log(eps=1e-12).sum())
                deletion_mass = ((1.0 - keep) * support_t).sum() * 0.5
                loss = flip_loss + self.l1_weight * deletion_mass
                loss.backward()
                clip_grad_norm([logits], self.grad_clip)
                optimizer.step()
                iterations_run += 1

                pairs = self._thresholded_pairs(logits, iu, ju)
                if pairs and (best is None or len(pairs) < len(best[0])):
                    flipped_to = self._classify_deleted(graph, pairs, active)
                    if flipped_to != original:
                        best = (pairs, flipped_to)
        except NumericalError:
            # A poisoned gradient ends the search; whatever was learned
            # (and found) so far still stands.
            pass

        best = self._greedy_prefix(graph, active, original, logits, iu, ju, best)
        scores = self._deletion_mass_scores(logits, support, n_real)
        if best is None:
            return CounterfactualResult(
                graph_name=graph.name,
                flipped=False,
                original_class=original,
                counterfactual_class=None,
                deleted_edges=(),
                iterations_run=iterations_run,
                node_scores=scores,
            )
        pairs, flipped_to = best
        return CounterfactualResult(
            graph_name=graph.name,
            flipped=True,
            original_class=original,
            counterfactual_class=flipped_to,
            deleted_edges=tuple(sorted(pairs)),
            iterations_run=iterations_run,
            node_scores=scores,
        )

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------
    def _sample_keep(
        self, logits: Tensor, rng: np.random.Generator, n: int
    ) -> Tensor:
        """One symmetric binary-concrete sample of the keep mask."""
        sym_logits = (logits + logits.T) * 0.5
        u = rng.uniform(1e-6, 1.0 - 1e-6, size=(n, n))
        noise = np.log(u) - np.log1p(-u)
        noise = (noise + noise.T) * 0.5
        return ((sym_logits + Tensor(noise)) * (1.0 / self.tau)).sigmoid()

    def _keep_probs(self, logits: Tensor) -> np.ndarray:
        probs = 1.0 / (1.0 + np.exp(-logits.numpy()))
        return (probs + probs.T) * 0.5

    def _thresholded_pairs(
        self, logits: Tensor, iu: np.ndarray, ju: np.ndarray
    ) -> list[tuple[int, int]]:
        keep = self._keep_probs(logits)
        return [
            (int(i), int(j)) for i, j in zip(iu, ju) if keep[i, j] < 0.5
        ]

    def _classify_deleted(
        self, graph: ACFG, pairs: list[tuple[int, int]], active: np.ndarray
    ) -> int:
        """The model's honest prediction after deleting ``pairs``.

        Both directions are zeroed and Â is recomputed from the edited
        adjacency — deliberately bypassing ``model.embed``'s content-
        keyed ÂCache, which must never see these transient edits.
        """
        edited = graph.adjacency.copy()
        for i, j in pairs:
            edited[i, j] = 0.0
            edited[j, i] = 0.0
        a_hat = normalized_adjacency(edited, active)
        with no_grad():
            z = self.model.embed_normalized(Tensor(a_hat), graph.features, active)
            probs = self.model.classify(z)
        return int(np.argmax(probs.numpy()))

    def _greedy_prefix(
        self,
        graph: ACFG,
        active: np.ndarray,
        original: int,
        logits: Tensor,
        iu: np.ndarray,
        ju: np.ndarray,
        best: tuple[list[tuple[int, int]], int] | None,
    ) -> tuple[list[tuple[int, int]], int] | None:
        """Shortest flipping prefix of the ascending-keep edge order."""
        keep = self._keep_probs(logits)
        order = sorted(
            ((int(i), int(j)) for i, j in zip(iu, ju)),
            key=lambda pair: keep[pair[0], pair[1]],
        )
        # Only prefixes strictly smaller than the current best can help.
        limit = len(best[0]) - 1 if best is not None else len(order)
        for k in range(1, limit + 1):
            pairs = order[:k]
            flipped_to = self._classify_deleted(graph, pairs, active)
            if flipped_to != original:
                return pairs, flipped_to
        return best

    @staticmethod
    def _deletion_mass_scores(
        logits: Tensor, support: np.ndarray, n_real: int
    ) -> np.ndarray:
        """Node score = soft deletion mass over incident edge directions."""
        probs = 1.0 / (1.0 + np.exp(-logits.numpy()))
        deletion = (1.0 - (probs + probs.T) * 0.5) * support
        incident = deletion.sum(axis=0) + deletion.sum(axis=1)
        return incident[:n_real].copy()
