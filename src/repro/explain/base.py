"""Abstract explainer interface.

Every explainer — CFGExplainer, the three attribution baselines and the
counterfactual CFExplainer — ultimately produces a node importance
ranking for one classified ACFG; the common machinery here turns a
ranking into the paper's subgraph ladder so the sweep harness and
metrics are written once.

``RankingExplainer`` covers the one-shot explainers (GNNExplainer,
PGExplainer, SubgraphX, CFExplainer and the sanity baselines) that
score nodes once.  CFGExplainer overrides :meth:`explain` with the
iterative re-scoring loop of Algorithm 2.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.explanation import Explanation, SubgraphLevel, kept_count
from repro.gnn.model import GCNClassifier
from repro.obs import span as obs_span

__all__ = ["Explainer", "RankingExplainer", "ladder_from_order", "level_fractions"]


def level_fractions(step_size: int) -> list[float]:
    """Ladder fractions for a percentage step size: step, 2*step, ..., 100."""
    if not 0 < step_size <= 100:
        raise ValueError("step_size must be in (0, 100]")
    if 100 % step_size != 0:
        raise ValueError("step_size must divide 100 (paper's constraint)")
    return [level / 100.0 for level in range(step_size, 101, step_size)]


def ladder_from_order(
    graph: ACFG, node_order: np.ndarray, step_size: int
) -> list[SubgraphLevel]:
    """Build the subgraph ladder for a fixed importance ordering."""
    levels = []
    for fraction in level_fractions(step_size):
        kept = np.asarray(
            node_order[: kept_count(fraction, graph.n_real)], dtype=int
        )
        levels.append(
            SubgraphLevel(
                fraction=fraction,
                kept_nodes=kept,
                adjacency=graph.subgraph_adjacency(kept),
            )
        )
    return levels


class Explainer(abc.ABC):
    """Post-hoc explainer for a pre-trained GNN classifier."""

    #: Human-readable name used in tables and reports.
    name: str = "explainer"

    def __init__(self, model: GCNClassifier):
        self.model = model

    @abc.abstractmethod
    def explain(self, graph: ACFG, step_size: int = 10) -> Explanation:
        """Explain the model's prediction on ``graph``."""

    def explain_lifted(
        self,
        graph: ACFG,
        original: ACFG,
        lift_map,
        step_size: int = 10,
    ) -> Explanation:
        """Explain a *reduced* graph, then project onto the original.

        ``graph`` is what the model was trained on (reduced, padded);
        ``original`` is the unreduced ACFG and ``lift_map`` the
        :class:`repro.reduce.LiftMap` recorded when it was reduced.
        The returned explanation ranks original block indices and its
        ladder slices original structure, so every downstream metric is
        directly comparable with an unreduced run.
        """
        reduced = self.explain(graph, step_size=step_size)
        return lift_map.lift_explanation(reduced, original, step_size=step_size)

    def _empty_graph_explanation(self, graph: ACFG) -> Explanation | None:
        if graph.n_real == 0:
            raise ValueError("cannot explain a graph with no real nodes")
        return None


class RankingExplainer(Explainer):
    """Explainers that produce one static node ranking per graph."""

    @abc.abstractmethod
    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(node_order, node_scores)`` over real nodes.

        ``node_order`` lists real-node indices most-important-first;
        ``node_scores[i]`` is the importance score of real node ``i``
        (aligned with node index, not with the ordering).
        """

    def explain(self, graph: ACFG, step_size: int = 10) -> Explanation:
        self._empty_graph_explanation(graph)
        with obs_span(f"explain.{self.name}") as explain_span:
            node_order, node_scores = self.rank_nodes(graph)
            explain_span.add("explain.graphs", 1)
            return Explanation(
                graph=graph,
                explainer_name=self.name,
                predicted_class=self.model.predict(graph),
                node_order=node_order,
                levels=ladder_from_order(graph, node_order, step_size),
                node_scores=node_scores,
            )
