"""Ground-truth evaluation against the generator's planted motifs.

The real YANCFG dataset has no node-level labels, so the paper can only
measure explanation quality indirectly (subgraph classification
accuracy).  Our synthetic corpus *knows* which basic blocks came from
family-signature motifs, enabling a direct check: does the explainer's
top-k subgraph contain the planted discriminative blocks?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.explain.explanation import Explanation
from repro.malgen.corpus import LabeledSample

__all__ = ["SignatureRecovery", "signature_recovery", "mean_signature_recovery"]


@dataclass(frozen=True)
class SignatureRecovery:
    """Precision/recall of signature blocks within a top-k subgraph."""

    precision: float
    recall: float
    kept: int
    signature_total: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def signature_recovery(
    sample: LabeledSample,
    explanation: Explanation,
    fraction: float = 0.2,
    lift_map=None,
) -> SignatureRecovery:
    """How well the top-``fraction`` nodes cover the planted signature blocks.

    Precision: share of kept nodes that are signature blocks.
    Recall: share of signature blocks that are kept.

    ``lift_map`` (a :class:`repro.reduce.LiftMap`) handles explanations
    computed on a *reduced* graph: the kept set is the top fraction of
    **original** blocks after lifting, so the metric stays comparable
    with unreduced runs — signature blocks are original indices.
    """
    signature = set(sample.signature_blocks)
    if lift_map is not None:
        kept = set(lift_map.lift_top_nodes(explanation, fraction).tolist())
    else:
        kept = set(explanation.top_nodes(fraction).tolist())
    if not kept:
        raise ValueError("explanation kept no nodes")
    hits = len(signature & kept)
    precision = hits / len(kept)
    recall = hits / len(signature) if signature else float("nan")
    return SignatureRecovery(
        precision=precision,
        recall=recall,
        kept=len(kept),
        signature_total=len(signature),
    )


def mean_signature_recovery(
    pairs: list[tuple[LabeledSample, Explanation]],
    fraction: float = 0.2,
    lift_maps: dict | None = None,
) -> SignatureRecovery:
    """Average precision/recall over (sample, explanation) pairs.

    Samples without signature blocks (possible for Benign) are skipped
    for recall but still count toward precision.  ``lift_maps`` (graph
    name → :class:`repro.reduce.LiftMap`) lifts explanations computed
    on reduced graphs back to original block indices first.
    """
    if not pairs:
        raise ValueError("need at least one pair")
    precisions, recalls = [], []
    kept_total = signature_total = 0
    for sample, explanation in pairs:
        lift_map = (
            lift_maps.get(sample.program.name) if lift_maps is not None else None
        )
        result = signature_recovery(sample, explanation, fraction, lift_map=lift_map)
        precisions.append(result.precision)
        if not np.isnan(result.recall):
            recalls.append(result.recall)
        kept_total += result.kept
        signature_total += result.signature_total
    return SignatureRecovery(
        precision=float(np.mean(precisions)),
        recall=float(np.mean(recalls)) if recalls else float("nan"),
        kept=kept_total,
        signature_total=signature_total,
    )
