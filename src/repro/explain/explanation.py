"""Explanation result objects shared by all five explainers.

Mirrors the outputs of the paper's Algorithm 2: a node ordering
(``V_ordered``, most important first) plus a ladder of subgraphs at each
step-size level, smallest first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.acfg.graph import ACFG

__all__ = ["SubgraphLevel", "Explanation", "kept_count"]


def kept_count(fraction: float, n: int) -> int:
    """How many of ``n`` real nodes a ``fraction`` keep retains.

    The single source of truth for every "top k%" computation —
    ``top_nodes``, the subgraph ladder, lifted explanations, stability's
    top-k and Algorithm 2's target sizes all call this, so they can
    never desynchronize.  Semantics are half-up ("top 10%" of 25 nodes
    keeps 3, not Python ``round``'s banker's 2), with a small epsilon so
    float representations of exact halves (0.3 * 5 = 1.4999...98) still
    round up, clamped to [1, n].
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    if n < 1:
        raise ValueError("need at least one real node")
    count = int(math.floor(fraction * n + 0.5 + 1e-9))
    return max(1, min(count, n))


@dataclass(frozen=True)
class SubgraphLevel:
    """One rung of the subgraph ladder.

    ``fraction`` is the kept share of real nodes (0.1 = top 10%);
    ``kept_nodes`` are real-node indices; ``adjacency`` is the full
    [N, N] matrix with pruned rows/columns zeroed (Algorithm 2's shape-
    preserving masking).
    """

    fraction: float
    kept_nodes: np.ndarray
    adjacency: np.ndarray


@dataclass
class Explanation:
    """Everything an explainer says about one classified ACFG."""

    graph: ACFG
    explainer_name: str
    predicted_class: int
    node_order: np.ndarray  # real-node indices, most important first
    levels: list[SubgraphLevel] = field(default_factory=list)
    node_scores: np.ndarray | None = None  # importance score per real node

    def __post_init__(self):
        self.node_order = np.asarray(self.node_order, dtype=int)
        order_set = set(self.node_order.tolist())
        if len(order_set) != len(self.node_order):
            raise ValueError("node_order contains duplicates")
        if order_set != set(range(self.graph.n_real)):
            raise ValueError(
                "node_order must be a permutation of the real node indices"
            )

    def top_nodes(self, fraction: float) -> np.ndarray:
        """The most important ``fraction`` of real nodes (at least one)."""
        return self.node_order[: kept_count(fraction, self.graph.n_real)].copy()

    def level_at(self, fraction: float) -> SubgraphLevel:
        """The ladder rung closest to ``fraction``."""
        if not self.levels:
            raise ValueError("explanation has no subgraph levels")
        return min(self.levels, key=lambda lvl: abs(lvl.fraction - fraction))

    @property
    def fractions(self) -> list[float]:
        return [level.fraction for level in self.levels]
