"""CFGExplainer reproduction (Herath et al., DSN 2022).

Public API re-exports the pieces a downstream user needs: the corpus
generator, ACFG pipeline, GNN classifier, CFGExplainer, the baseline
explainers, metrics, and the evaluation harness.

Quickstart::

    from repro import run_pipeline, sweep_all_families

    artifacts = run_pipeline()
    sweeps = sweep_all_families(
        artifacts.gnn, artifacts.explainers, artifacts.test_set
    )
"""

from repro.acfg import (
    ACFG,
    ACFGDataset,
    FEATURE_NAMES,
    FeatureScaler,
    from_sample,
    train_test_split,
)
from repro.baselines import (
    DegreeExplainer,
    GNNExplainerBaseline,
    PGExplainerBaseline,
    RandomExplainer,
    SubgraphXBaseline,
)
from repro.core import (
    CFGExplainer,
    CFGExplainerModel,
    interpret,
    train_cfgexplainer,
)
from repro.eval import (
    ExperimentConfig,
    PAPER_SCALE_CONFIG,
    PipelineArtifacts,
    run_pipeline,
    sweep_all_families,
)
from repro.exec import RetryPolicy, TaskFailure, run_sweeps, run_timings
from repro.explain import (
    Explanation,
    accuracy_auc,
    fidelity_minus_acc,
    fidelity_plus_acc,
    sparsity,
    subgraph_accuracy,
    sweep_accuracy_curve,
)
from repro.gnn import GCNClassifier, evaluate_accuracy, train_gnn
from repro.malgen import FAMILIES, generate_corpus, generate_program
from repro.staticcheck import (
    CorpusVerification,
    CorpusVerificationError,
    verify_corpus,
    verify_sample,
)

__version__ = "1.0.0"

__all__ = [
    "ACFG",
    "ACFGDataset",
    "FEATURE_NAMES",
    "FeatureScaler",
    "from_sample",
    "train_test_split",
    "GNNExplainerBaseline",
    "PGExplainerBaseline",
    "SubgraphXBaseline",
    "RandomExplainer",
    "DegreeExplainer",
    "CFGExplainer",
    "CFGExplainerModel",
    "interpret",
    "train_cfgexplainer",
    "ExperimentConfig",
    "PAPER_SCALE_CONFIG",
    "PipelineArtifacts",
    "run_pipeline",
    "sweep_all_families",
    "RetryPolicy",
    "TaskFailure",
    "run_sweeps",
    "run_timings",
    "Explanation",
    "subgraph_accuracy",
    "sweep_accuracy_curve",
    "accuracy_auc",
    "fidelity_minus_acc",
    "fidelity_plus_acc",
    "sparsity",
    "GCNClassifier",
    "train_gnn",
    "evaluate_accuracy",
    "FAMILIES",
    "generate_corpus",
    "generate_program",
    "CorpusVerification",
    "CorpusVerificationError",
    "verify_corpus",
    "verify_sample",
    "__version__",
]
