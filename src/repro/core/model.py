"""The CFGExplainer deep-learning model Θ = {Θ_s, Θ_c} (Section IV-A).

Θ_s scores each node embedding into [0, 1] through a 64→32→1 MLP with a
sigmoid output; Θ_c re-classifies the score-weighted embeddings through
a 64→32→16 MLP followed by a softmax output layer.  The two networks
are architecturally connected through ``Z_weighted = Ψ ⊙ Z`` so the
joint NLL training pushes Θ_s to give high scores to the embeddings
that matter for classification — the weights are tied to embeddings,
which is exactly the paper's argument for interpretable scores.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Dense, Module, Tensor

__all__ = ["NodeScorer", "SurrogateClassifier", "CFGExplainerModel"]


class NodeScorer(Module):
    """Θ_s: per-node importance scores Ψ ∈ [0, 1]^N from embeddings Z.

    With ``graph_context=True`` each node is scored from
    ``[z_j ; maxpool(Z)]`` rather than ``z_j`` alone — an ablation knob
    for giving the scorer a view of what the rest of the graph offers.
    Measured on the default corpus it *hurts* (the context feature
    dominates and washes out per-node signal), so the default is the
    paper's purely per-node input.
    """

    def __init__(
        self,
        embedding_size: int,
        hidden: tuple[int, ...] = (64, 32),
        graph_context: bool = False,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        in_features = embedding_size * (2 if graph_context else 1)
        widths = (in_features, *hidden)
        self.layers = [
            Dense(w_in, w_out, activation="relu", rng=rng)
            for w_in, w_out in zip(widths[:-1], widths[1:])
        ]
        self.output = Dense(widths[-1], 1, activation="sigmoid", rng=rng)
        self.embedding_size = embedding_size
        self.graph_context = graph_context

    def _inputs(self, z: Tensor) -> Tensor:
        if not self.graph_context:
            return z
        n = int(z.shape[0])
        context = z.max(axis=0, keepdims=True)  # [1, f]
        tiled = Tensor(np.ones((n, 1))) @ context  # broadcast rows
        return Tensor.concatenate([z, tiled], axis=1)

    def __call__(self, z: Tensor) -> Tensor:
        """Scores of shape [N, 1] for embeddings of shape [N, f]."""
        h = self._inputs(z)
        for layer in self.layers:
            h = layer(h)
        return self.output(h)

    def score_logits(self, z: Tensor) -> Tensor:
        """Pre-sigmoid scores, shape [N, 1].

        Used by the concrete-relaxation faithfulness probe in training,
        which needs to add logistic noise *before* the squashing.
        """
        h = self._inputs(z)
        for layer in self.layers:
            h = layer(h)
        return h @ self.output.weight + self.output.bias


class SurrogateClassifier(Module):
    """Θ_c: classify weighted node embeddings into family probabilities.

    Per-node MLP (64→32→16 by default) followed by masked pooling and a
    final softmax layer, per Section V-A's architecture.  Pooling is
    per-dimension max by default, matching the pooling of the GNN being
    explained so the surrogate's notion of "which nodes carry the
    evidence" lines up with Φ's (``lse`` offers a smooth alternative).
    """

    def __init__(
        self,
        embedding_size: int,
        num_classes: int,
        hidden: tuple[int, ...] = (64, 32, 16),
        pooling: str = "max",
        rng: np.random.Generator | None = None,
    ):
        if pooling not in {"lse", "max", "sum", "mean"}:
            raise ValueError(f"unknown pooling {pooling!r}")
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        widths = (embedding_size, *hidden)
        self.layers = [
            Dense(w_in, w_out, activation="relu", rng=rng)
            for w_in, w_out in zip(widths[:-1], widths[1:])
        ]
        self.output = Dense(widths[-1], num_classes, activation="linear", rng=rng)
        if pooling == "sum":
            self.output.weight.data *= 0.1
        self.pooling = pooling
        self.embedding_size = embedding_size
        self.num_classes = num_classes

    def __call__(self, z_weighted: Tensor, active_mask: np.ndarray) -> Tensor:
        """Class probabilities Y of shape [C].

        ``active_mask`` keeps padded nodes from leaking per-node biases
        into the pooled representation.
        """
        mask = Tensor(
            np.asarray(active_mask, dtype=np.float64).reshape(-1, 1)
        )
        h = z_weighted
        for layer in self.layers:
            h = layer(h)
        h = h * mask
        if self.pooling == "lse":
            # Masked log-sum-exp: only active rows contribute (a plain
            # LSE would let every padded row add exp(0) = 1).
            beta = 4.0
            scaled = h * beta
            shift = float(scaled.numpy().max()) if scaled.size else 0.0
            exp_terms = (scaled - shift).exp() * mask
            pooled = (
                exp_terms.sum(axis=0, keepdims=True).log(eps=1e-300) + shift
            ) * (1.0 / beta)
        elif self.pooling == "max":
            pooled = h.max(axis=0, keepdims=True)
        elif self.pooling == "sum":
            pooled = h.sum(axis=0, keepdims=True)
        else:  # mean
            count = max(float(np.asarray(active_mask).sum()), 1.0)
            pooled = h.sum(axis=0, keepdims=True) * (1.0 / count)
        return self.output(pooled).softmax(axis=-1).reshape(-1)


class CFGExplainerModel(Module):
    """Θ = {Θ_s, Θ_c} plus the weighting connection between them."""

    def __init__(
        self,
        embedding_size: int,
        num_classes: int,
        scorer_hidden: tuple[int, ...] = (64, 32),
        classifier_hidden: tuple[int, ...] = (64, 32, 16),
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        self.scorer = NodeScorer(embedding_size, scorer_hidden, rng=rng)
        self.surrogate = SurrogateClassifier(
            embedding_size, num_classes, classifier_hidden, rng=rng
        )
        self.embedding_size = embedding_size
        self.num_classes = num_classes

    def score(self, z: Tensor) -> Tensor:
        """Node scores Ψ, shape [N, 1]."""
        return self.scorer(z)

    def forward(
        self, z: Tensor, active_mask: np.ndarray
    ) -> tuple[Tensor, Tensor]:
        """(Ψ, Y): scores and surrogate class probabilities.

        Implements lines 8-12 of Algorithm 1: Ψ = Θ_s(Z);
        Z_weighted[j] = Ψ_j · Z[j]; Y = Θ_c(Z_weighted).
        """
        psi = self.scorer(z)
        z_weighted = z * psi  # broadcast [N,1] over [N,f]
        return psi, self.surrogate(z_weighted, active_mask)

    def node_scores(self, z: Tensor, n_real: int) -> np.ndarray:
        """Ψ for the real nodes only, as a flat numpy vector."""
        from repro.nn import no_grad

        with no_grad():
            psi = self.scorer(z)
        return psi.numpy().reshape(-1)[:n_real].copy()


class CFGExplainerEnsemble:
    """Average the scores of several independently trained Θ models.

    Algorithm 2 only consumes ``node_scores``; averaging over seeds
    reduces the variance a single jointly-trained scorer shows on small
    training sets.  Train each member with a different seed and pass
    the ensemble anywhere a :class:`CFGExplainerModel` is accepted for
    interpretation (training still happens per member).
    """

    def __init__(self, members: list[CFGExplainerModel]):
        if not members:
            raise ValueError("ensemble needs at least one member")
        sizes = {m.embedding_size for m in members}
        if len(sizes) != 1:
            raise ValueError(f"members disagree on embedding size: {sizes}")
        self.members = list(members)
        self.embedding_size = members[0].embedding_size
        self.num_classes = members[0].num_classes

    def node_scores(self, z: Tensor, n_real: int) -> np.ndarray:
        stacked = np.stack(
            [member.node_scores(z, n_real) for member in self.members]
        )
        return stacked.mean(axis=0)

    def parameters(self):
        return [p for member in self.members for p in member.parameters()]
