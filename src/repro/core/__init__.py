"""CFGExplainer — the paper's primary contribution.

Θ = {Θ_s, Θ_c}: a node-scoring network and a surrogate classifier,
jointly trained on GNN node embeddings (Algorithm 1), then used as a
surrogate to iteratively prune the ACFG into an importance ordering and
a ladder of explanation subgraphs (Algorithm 2).
"""

from repro.core.interpret import CFGExplainer, interpret
from repro.core.model import (
    CFGExplainerEnsemble,
    CFGExplainerModel,
    NodeScorer,
    SurrogateClassifier,
)
from repro.core.training import ExplainerTrainingHistory, train_cfgexplainer

__all__ = [
    "NodeScorer",
    "SurrogateClassifier",
    "CFGExplainerModel",
    "CFGExplainerEnsemble",
    "train_cfgexplainer",
    "ExplainerTrainingHistory",
    "CFGExplainer",
    "interpret",
]
