"""Algorithm 1 — the initial learning stage of CFGExplainer.

Jointly trains Θ_s and Θ_c with the negative log-likelihood loss
``-1/m Σ log(Y[C_i] + 1e-20)`` over mini-batches of GNN node embeddings,
where ``C_i`` is the class *the GNN predicted* (not the ground truth):
the explainer learns to explain the model, mistakes included.

The GNN Φ is frozen throughout — Algorithm 1 only reads Z = Φ_e(A, X)
and C = Φ_c(Z) — so embeddings are precomputed once per graph instead
of re-running Φ_e every epoch (lines 6-7 hoisted out of the loop; the
result is identical because Φ never changes).  The precomputation runs
through the batched block-diagonal engine and can share a
:class:`repro.gnn.EmbeddingCache` with the rest of the pipeline, so Z
computed during classifier evaluation is never recomputed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.acfg.dataset import ACFGDataset
from repro.core.model import CFGExplainerModel
from repro.gnn.batch import iter_batches
from repro.gnn.cache import EmbeddingCache
from repro.gnn.model import GCNClassifier
from repro.nn import Adam, Tensor, nll_loss_from_probs, no_grad
from repro.obs import add_counter
from repro.obs import span as obs_span

__all__ = ["ExplainerTrainingHistory", "train_cfgexplainer", "precompute_embeddings"]


@dataclass
class ExplainerTrainingHistory:
    """Loss per epoch plus the surrogate's final agreement with the GNN."""

    losses: list[float] = field(default_factory=list)
    surrogate_agreement: float = float("nan")

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


@dataclass(frozen=True)
class _EmbeddedSample:
    """Cached per-graph quantities for one training ACFG.

    ``a_hat`` and ``features`` feed the graph-level faithfulness probe,
    which re-runs Φ_e on masked inputs; they are ``None`` for augmented
    variants (the probe only runs on original graphs).
    """

    embeddings: np.ndarray
    gnn_class: int
    active_mask: np.ndarray
    a_hat: np.ndarray | None = None
    features: np.ndarray | None = None


def _normalized_a_hat(
    model: GCNClassifier, adjacency: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Â via the model's keyed cache, or directly for models without one."""
    cache = getattr(model, "a_hat_cache", None)
    if cache is not None:
        return cache.get(adjacency, mask)
    from repro.gnn.normalize import normalized_adjacency

    return normalized_adjacency(adjacency, mask)


def precompute_embeddings(
    model: GCNClassifier,
    dataset: ACFGDataset,
    augment_prune_fractions: tuple[float, ...] = (),
    seed: int = 0,
    cache_graph_inputs: bool = False,
    embedding_cache: EmbeddingCache | None = None,
    batch_size: int = 32,
) -> list[_EmbeddedSample]:
    """Run the frozen Φ over every graph once (lines 6-7 of Algorithm 1).

    Base graphs are embedded in batched block-diagonal passes; when the
    pipeline passes its shared ``embedding_cache``, graphs already
    embedded during classifier evaluation are served from the cache
    instead of recomputed.

    ``augment_prune_fractions`` adds, per graph and per fraction p, one
    extra training sample whose adjacency has a random p-share of real
    nodes pruned Algorithm-2 style (rows/columns zeroed, features kept)
    before embedding.  The interpretation stage probes Θ_s on exactly
    such partially pruned graphs, so training on them keeps the scorer
    in distribution; the class target stays the *full* graph's
    prediction, because that is what the explanation must preserve.
    """
    rng = np.random.default_rng(seed)
    cache = embedding_cache if embedding_cache is not None else EmbeddingCache(model)
    cache.populate(dataset, batch_size=batch_size)

    per_graph: list[list[_EmbeddedSample]] = []
    variants: list[int] = []  # graph index of each pending pruned variant
    variant_graphs = []
    for graph_index, graph in enumerate(dataset):
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        entry = cache.forward(graph)
        per_graph.append(
            [
                _EmbeddedSample(
                    embeddings=entry.z,
                    gnn_class=entry.predicted_class,
                    active_mask=mask,
                    a_hat=(
                        _normalized_a_hat(model, graph.adjacency, mask)
                        if cache_graph_inputs
                        else None
                    ),
                    features=(
                        np.asarray(graph.features, dtype=np.float64)
                        if cache_graph_inputs
                        else None
                    ),
                )
            ]
        )
        for fraction in augment_prune_fractions:
            prune_count = int(round(fraction * graph.n_real))
            if not 0 < prune_count < graph.n_real:
                continue
            pruned = rng.choice(graph.n_real, size=prune_count, replace=False)
            adjacency = graph.adjacency.copy()
            adjacency[pruned, :] = 0.0
            adjacency[:, pruned] = 0.0
            variant_graphs.append(replace(graph, adjacency=adjacency))
            variants.append(graph_index)

    # Embed the pruned variants in batched passes too, then slot each
    # one in right after its base graph (the order downstream tests and
    # mini-batch sampling see).  Their one-off adjacencies bypass the
    # Â cache so they cannot evict hot entries.
    if variant_graphs and not hasattr(model, "embed_batch"):
        for graph_index, variant in zip(variants, variant_graphs):
            samples = per_graph[graph_index]
            with no_grad():
                z = model.embed(
                    variant.adjacency, variant.features, samples[0].active_mask
                )
            samples.append(
                _EmbeddedSample(
                    embeddings=z.numpy().copy(),
                    gnn_class=samples[0].gnn_class,
                    active_mask=samples[0].active_mask,
                )
            )
    elif variant_graphs:
        offset = 0
        for batch in iter_batches(variant_graphs, batch_size):
            with no_grad():
                z = model.embed_batch(batch)
            z_data = z.numpy()
            for i in range(batch.num_graphs):
                samples = per_graph[variants[offset + i]]
                samples.append(
                    _EmbeddedSample(
                        embeddings=z_data[batch.rows_of(i)].copy(),
                        gnn_class=samples[0].gnn_class,
                        active_mask=samples[0].active_mask,
                    )
                )
            offset += batch.num_graphs
    return [sample for samples in per_graph for sample in samples]


def train_cfgexplainer(
    explainer: CFGExplainerModel,
    gnn: GCNClassifier,
    train_set: ACFGDataset,
    num_epochs: int = 100,
    minibatch_size: int = 16,
    lr: float = 0.001,
    sparsity_weight: float = 0.3,
    entropy_weight: float = 0.0,
    faithfulness_weight: float = 1.0,
    faithfulness_samples: int = 1,
    faithfulness_probe: str = "embedding",
    concrete_temperature: tuple[float, float] = (2.0, 0.2),
    sparsity_target: float | None = None,
    augment_prune_fractions: tuple[float, ...] = (),
    seed: int = 0,
    embedding_cache: EmbeddingCache | None = None,
    verbose: bool = False,
) -> ExplainerTrainingHistory:
    """The initial learning stage (Algorithm 1).

    Parameters mirror the algorithm: ``num_epochs`` iterations, each
    drawing a random mini-batch D' of ``minibatch_size`` samples, with
    Adam adjusting Θ's weights from the batch NLL loss.

    Two documented additions to the paper's bare NLL objective make the
    learned scores well-posed (set all three weights to 0 for the
    literal Algorithm 1):

    * ``sparsity_weight`` (and optional ``entropy_weight``): the bare
      objective has a degenerate optimum where Θ_s outputs Ψ ≈ 1 for
      every node — the surrogate then classifies unweighted embeddings
      and the ordering carries no signal.  A mean-score penalty forces
      Θ_s to spend its score budget only where classification needs it.
    * ``faithfulness_weight``: an auxiliary NLL of the *frozen* GNN
      classification head Φ_c on the same weighted embeddings
      ``Ψ ⊙ Z``.  Θ_c is a different network from Φ_c, so scores that
      merely satisfy Θ_c need not preserve the prediction of the model
      being explained; probing the frozen head ties Ψ to Φ itself, the
      same coupling the mask-based explainers get by construction.  Φ's
      weights receive no updates (the optimizer only holds Θ's).
    """
    if num_epochs <= 0 or minibatch_size <= 0:
        raise ValueError("num_epochs and minibatch_size must be positive")
    if faithfulness_probe not in {"embedding", "graph"}:
        raise ValueError(f"unknown faithfulness_probe {faithfulness_probe!r}")
    if explainer.embedding_size != gnn.embedding_size:
        raise ValueError(
            f"explainer expects embeddings of size {explainer.embedding_size}, "
            f"GNN produces {gnn.embedding_size}"
        )

    rng = np.random.default_rng(seed)
    with obs_span("train.explainer.embed"):
        cached = precompute_embeddings(
            gnn,
            train_set,
            augment_prune_fractions,
            seed=seed,
            cache_graph_inputs=faithfulness_probe == "graph",
            embedding_cache=embedding_cache,
        )
    add_counter("explainer.train.epochs", num_epochs)
    add_counter("explainer.train.samples", len(cached))
    optimizer = Adam(explainer.parameters(), lr=lr)
    history = ExplainerTrainingHistory()

    m = min(minibatch_size, len(cached))
    for epoch in range(num_epochs):
        batch_indices = rng.choice(len(cached), size=m, replace=False)
        optimizer.zero_grad()
        loss = None
        for index in batch_indices:
            sample = cached[int(index)]
            z = Tensor(sample.embeddings)
            psi, probs = explainer.forward(z, sample.active_mask)
            sample_loss = nll_loss_from_probs(probs, sample.gnn_class)
            if faithfulness_weight:
                # Faithfulness probe: sample an approximately discrete
                # keep-mask from the score logits (concrete relaxation:
                # logistic noise + annealed temperature) and require
                # the frozen Φ to still predict its class.
                #
                # ``probe="embedding"`` (default) masks the node
                # embeddings before Φ_c — under the max-pooled head
                # this directly suppresses a node's participation in
                # the pooled evidence, which measured best.
                # ``probe="graph"`` masks the propagation matrix
                # (m·mᵀ) and features (m) and re-runs Φ_e end to end —
                # closest to Algorithm 2's literal pruning, but the
                # quadratic edge dampening biases scores toward degree
                # (kept as an ablation).
                t_start, t_end = concrete_temperature
                tau = t_start * (t_end / t_start) ** (
                    epoch / max(num_epochs - 1, 1)
                )
                score_logits = explainer.scorer.score_logits(z)
                weight = faithfulness_weight / faithfulness_samples
                for _ in range(faithfulness_samples):
                    uniform = rng.uniform(
                        1e-6, 1 - 1e-6, size=score_logits.shape
                    )
                    noise = np.log(uniform) - np.log(1.0 - uniform)
                    keep = (
                        (score_logits + Tensor(noise)) * (1.0 / tau)
                    ).sigmoid()  # [N, 1]
                    if faithfulness_probe == "graph" and sample.a_hat is not None:
                        pair_mask = keep @ keep.T  # [N, N]
                        masked_a_hat = Tensor(sample.a_hat) * pair_mask
                        masked_features = Tensor(sample.features) * keep
                        z_probe = gnn.embed_normalized(
                            masked_a_hat, masked_features, sample.active_mask
                        )
                    else:
                        z_probe = z * keep
                    phi_probs = gnn.classify(z_probe)
                    sample_loss = sample_loss + weight * (
                        nll_loss_from_probs(phi_probs, sample.gnn_class)
                    )
            if sparsity_weight or entropy_weight:
                real = Tensor(
                    sample.active_mask.astype(np.float64).reshape(-1, 1)
                )
                count = max(float(sample.active_mask.sum()), 1.0)
                if sparsity_weight:
                    mean_score = (psi * real).sum() * (1.0 / count)
                    if sparsity_target is None:
                        # Plain shrinkage toward zero.
                        sample_loss = sample_loss + mean_score * sparsity_weight
                    else:
                        # Budget form: aim the mean score at the
                        # evaluation operating point (e.g. 0.2 for
                        # top-20% subgraphs) instead of collapsing it.
                        sample_loss = sample_loss + (
                            (mean_score - sparsity_target) ** 2
                        ) * sparsity_weight
                if entropy_weight:
                    entropy = -(
                        psi * psi.log(eps=1e-12)
                        + (1.0 - psi) * (1.0 - psi).log(eps=1e-12)
                    )
                    sample_loss = sample_loss + (entropy * real).sum() * (
                        entropy_weight / count
                    )
            loss = sample_loss if loss is None else loss + sample_loss
        loss = loss * (1.0 / m)
        loss.backward()
        optimizer.step()
        history.losses.append(loss.item())
        if verbose and (epoch + 1) % 10 == 0:
            print(f"epoch {epoch + 1:4d}  loss={history.losses[-1]:.4f}")

    history.surrogate_agreement = _surrogate_agreement(explainer, cached)
    return history


def _surrogate_agreement(
    explainer: CFGExplainerModel, cached: list[_EmbeddedSample]
) -> float:
    """How often Θ_c's argmax matches the GNN's prediction."""
    agree = 0
    for sample in cached:
        with no_grad():
            _, probs = explainer.forward(Tensor(sample.embeddings), sample.active_mask)
        agree += int(np.argmax(probs.numpy()) == sample.gnn_class)
    return agree / len(cached)
