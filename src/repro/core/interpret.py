"""Algorithm 2 — the interpretation stage of CFGExplainer.

Starting from the full graph, the trained scorer Θ_s is probed
iteratively: at each step the adjacency of the ``step_size`` percent
lowest-scoring remaining nodes is zeroed out (rows and columns), the
embeddings are recomputed through the frozen Φ_e on the pruned
adjacency, and the loop repeats until only ``step_size`` percent of
nodes remain.  The removal order, reversed, is the node importance
ordering ``V_ordered``; the recorded adjacency snapshots, reversed, are
the subgraph ladder.
"""

from __future__ import annotations

import numpy as np

from repro.acfg.graph import ACFG
from repro.core.model import CFGExplainerModel
from repro.explain.base import Explainer, level_fractions
from repro.explain.explanation import Explanation, SubgraphLevel, kept_count
from repro.gnn.cache import EmbeddingCache
from repro.gnn.model import GCNClassifier
from repro.nn import Tensor, no_grad
from repro.obs import span as obs_span

__all__ = ["interpret", "CFGExplainer"]


def interpret(
    explainer: CFGExplainerModel,
    gnn: GCNClassifier,
    graph: ACFG,
    step_size: int = 10,
    mask_features: bool = True,
    embedding_cache: EmbeddingCache | None = None,
) -> Explanation:
    """Run Algorithm 2 on one ACFG.

    Follows the paper with two departures:

    * The paper assumes ``step_size`` divides the graph evenly; here
      per-iteration prune counts come from per-level target sizes
      ``round(level% × N_real)`` so any graph size works and every
      ladder rung holds exactly its advertised share of nodes.
    * With ``mask_features=True`` the features of pruned nodes are
      zeroed alongside their adjacency rows/columns when re-scoring
      (the paper's pseudocode only masks ``A``).  The subgraph the
      evaluation classifies has both masked, so this keeps the
      re-scored embeddings on the distribution the scores are used
      against; pass ``False`` for the literal Algorithm 2.

    ``embedding_cache`` (the pipeline's shared
    :class:`~repro.gnn.EmbeddingCache`) serves the full-graph rung —
    Z of the first iteration and the predicted class — without
    re-running Φ; pruned rungs always recompute, as they must.
    """
    if graph.n_real == 0:
        raise ValueError("cannot interpret a graph with no real nodes")
    fractions = level_fractions(step_size)  # [step%, ..., 100%]
    n_real = graph.n_real

    adjacency = graph.adjacency.copy()
    features = np.asarray(graph.features, dtype=np.float64).copy()
    remaining = list(range(n_real))
    removal_order: list[int] = []
    snapshots: list[np.ndarray] = []

    active_mask = np.zeros(graph.n, dtype=bool)
    active_mask[:n_real] = True

    first_pass_scores: np.ndarray | None = None

    # Walk the ladder top-down: 100%, 100-step, ..., step.
    target_sizes = [kept_count(f, n_real) for f in fractions]
    for next_target in reversed([0] + target_sizes[:-1]):
        snapshots.append(adjacency.copy())
        if next_target >= len(remaining):
            continue
        if embedding_cache is not None and not removal_order:
            # Full-graph rung: adjacency/features are still untouched
            # copies of the input graph, so the shared cache applies.
            z = Tensor(embedding_cache.forward(graph).z)
        else:
            with no_grad():
                z = gnn.embed(adjacency, features, active_mask)
        scores = explainer.node_scores(z, n_real)
        if first_pass_scores is None:
            first_pass_scores = scores.copy()
        if next_target == 0:
            break  # the smallest rung is recorded; no need to prune further
        prune_count = len(remaining) - next_target
        # Lines 8-18: repeatedly drop the lowest-scoring remaining node.
        remaining.sort(key=lambda i: scores[i])
        pruned, remaining = remaining[:prune_count], remaining[prune_count:]
        for node in sorted(pruned, key=lambda i: scores[i]):
            removal_order.append(node)
            adjacency[node, :] = 0.0
            adjacency[:, node] = 0.0
            if mask_features:
                features[node, :] = 0.0

    # Line 19: removal order reversed = importance order (most important
    # first).  Nodes never pruned (the final rung) are the most
    # important of all; order them by their final-pass scores.
    with no_grad():
        z = gnn.embed(adjacency, features, active_mask)
    final_scores = explainer.node_scores(z, n_real)
    survivors = sorted(remaining, key=lambda i: final_scores[i], reverse=True)
    node_order = np.array(survivors + list(reversed(removal_order)), dtype=int)

    # Line 20: snapshots reversed = smallest subgraph first.  Snapshot k
    # (after reversal) corresponds to fraction fractions[k].
    snapshots.reverse()
    levels = [
        SubgraphLevel(
            fraction=fraction,
            kept_nodes=node_order[:size].copy(),
            adjacency=snapshot,
        )
        for fraction, size, snapshot in zip(fractions, target_sizes, snapshots)
    ]

    predicted_class = (
        embedding_cache.forward(graph).predicted_class
        if embedding_cache is not None
        else gnn.predict(graph)
    )
    return Explanation(
        graph=graph,
        explainer_name="CFGExplainer",
        predicted_class=predicted_class,
        node_order=node_order,
        levels=levels,
        node_scores=first_pass_scores,
    )


class CFGExplainer(Explainer):
    """The paper's explainer behind the common :class:`Explainer` API."""

    name = "CFGExplainer"

    def __init__(
        self,
        model: GCNClassifier,
        theta: CFGExplainerModel,
        embedding_cache: EmbeddingCache | None = None,
    ):
        super().__init__(model)
        self.theta = theta
        self.embedding_cache = embedding_cache

    def explain(self, graph: ACFG, step_size: int = 10) -> Explanation:
        with obs_span("explain.CFGExplainer") as explain_span:
            explanation = interpret(
                self.theta,
                self.model,
                graph,
                step_size,
                embedding_cache=self.embedding_cache,
            )
            explain_span.add("explain.graphs", 1)
            # Algorithm 2 re-scores once per ladder rung.
            explain_span.add("explain.iterations", len(explanation.levels))
            return explanation
