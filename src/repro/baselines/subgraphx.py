"""SubgraphX (Yuan et al., 2021) — MCTS + Shapley-value explanations.

A Monte Carlo search tree is grown over subgraphs of the input ACFG:
the root holds all real nodes and each child prunes one node from its
parent.  Rewards are Shapley values of the subgraph-as-player,
approximated by Monte Carlo coalition sampling: the subgraph's average
marginal contribution ``f(S ∪ T) − f(T)`` to the GNN's probability of
the originally predicted class, over random coalitions ``T`` of the
remaining nodes.

A full node ranking (needed for the paper's equisized-subgraph
comparison) is extracted from the principal variation — nodes pruned
early on the most-visited path are least important — with the surviving
nodes ranked by their leave-one-out marginal contribution to the final
subgraph.

Like GNNExplainer this is a *local* method, and by far the most
expensive of the four (the paper measures 127.8 min per explanation on
real ACFGs; the knobs below bound our scaled version).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.base import RankingExplainer
from repro.gnn.model import GCNClassifier

__all__ = ["SubgraphXBaseline", "shapley_score"]


def shapley_score(
    model: GCNClassifier,
    graph: ACFG,
    subgraph_nodes: frozenset[int],
    target: int,
    rng: np.random.Generator,
    samples: int = 8,
) -> float:
    """Monte Carlo Shapley value of ``subgraph_nodes`` as one player.

    Coalitions T are uniform random subsets of the other real nodes;
    the value is the mean of ``f(S ∪ T) − f(T)`` where f is the model's
    probability of ``target``.
    """
    others = np.array(
        [i for i in range(graph.n_real) if i not in subgraph_nodes], dtype=int
    )
    subgraph = np.array(sorted(subgraph_nodes), dtype=int)
    total = 0.0
    for _ in range(samples):
        if others.size:
            coalition_mask = rng.random(others.size) < rng.random()
            coalition = others[coalition_mask]
        else:
            coalition = others
        with_player = np.concatenate([subgraph, coalition])
        prob_with = model.subgraph_proba(graph, with_player)[target]
        if coalition.size:
            prob_without = model.subgraph_proba(graph, coalition)[target]
        else:
            prob_without = 1.0 / model.num_classes  # empty graph: uninformed prior
        total += prob_with - prob_without
    return total / samples


@dataclass
class _TreeNode:
    """One MCTS state: the set of still-kept nodes."""

    kept: frozenset[int]
    parent: "_TreeNode | None" = None
    pruned_node: int | None = None  # action that led here from the parent
    children: list["_TreeNode"] = field(default_factory=list)
    visits: int = 0
    total_reward: float = 0.0
    expanded: bool = False

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0


class SubgraphXBaseline(RankingExplainer):
    """MCTS/Shapley explainer behind the common ranking interface."""

    name = "SubgraphX"

    def __init__(
        self,
        model: GCNClassifier,
        mcts_iterations: int = 40,
        shapley_samples: int = 6,
        expansion_width: int = 5,
        min_size_fraction: float = 0.2,
        exploration: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(model)
        if mcts_iterations <= 0 or shapley_samples <= 0 or expansion_width <= 0:
            raise ValueError("MCTS parameters must be positive")
        self.mcts_iterations = mcts_iterations
        self.shapley_samples = shapley_samples
        self.expansion_width = expansion_width
        self.min_size_fraction = min_size_fraction
        self.exploration = exploration
        self.seed = seed

    # ------------------------------------------------------------------
    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        target = self.model.predict(graph)
        root = _TreeNode(kept=frozenset(range(graph.n_real)))
        min_size = max(1, int(np.ceil(self.min_size_fraction * graph.n_real)))

        reward_cache: dict[frozenset[int], float] = {}

        def reward_of(kept: frozenset[int]) -> float:
            if kept not in reward_cache:
                reward_cache[kept] = shapley_score(
                    self.model, graph, kept, target, rng, self.shapley_samples
                )
            return reward_cache[kept]

        for _ in range(self.mcts_iterations):
            node = self._select(root)
            if len(node.kept) > min_size and not node.expanded:
                self._expand(node, rng)
            if node.children:
                node = rng.choice(node.children)
            reward = reward_of(node.kept)
            self._backpropagate(node, reward)

        return self._extract_ranking(graph, root, target)

    # ------------------------------------------------------------------
    # MCTS phases
    # ------------------------------------------------------------------
    def _select(self, node: _TreeNode) -> _TreeNode:
        while node.expanded and node.children:
            node = max(node.children, key=lambda c: self._ucb(node, c))
        return node

    def _ucb(self, parent: _TreeNode, child: _TreeNode) -> float:
        if child.visits == 0:
            return float("inf")
        exploit = child.mean_reward
        explore = self.exploration * np.sqrt(
            np.log(max(parent.visits, 1)) / child.visits
        )
        return exploit + explore

    def _expand(self, node: _TreeNode, rng: np.random.Generator) -> None:
        """Create children by pruning each of a bounded candidate set."""
        kept = sorted(node.kept)
        if len(kept) <= 1:
            node.expanded = True
            return
        count = min(self.expansion_width, len(kept))
        candidates = rng.choice(kept, size=count, replace=False)
        for candidate in candidates:
            child = _TreeNode(
                kept=node.kept - {int(candidate)},
                parent=node,
                pruned_node=int(candidate),
            )
            node.children.append(child)
        node.expanded = True

    @staticmethod
    def _backpropagate(node: _TreeNode, reward: float) -> None:
        while node is not None:
            node.visits += 1
            node.total_reward += reward
            node = node.parent

    # ------------------------------------------------------------------
    # ranking extraction
    # ------------------------------------------------------------------
    def _extract_ranking(
        self, graph: ACFG, root: _TreeNode, target: int
    ) -> tuple[np.ndarray, np.ndarray]:
        # Principal variation: most-visited child at every level.  Nodes
        # pruned early on this path are the least important.
        pruned_in_order: list[int] = []
        node = root
        while node.children:
            node = max(node.children, key=lambda c: c.visits)
            pruned_in_order.append(node.pruned_node)

        # Survivors of the PV leaf are ranked by their own Monte Carlo
        # Shapley value — the same (noisy) estimator the tree rewards
        # use, which is all the information the algorithm itself has.
        rng = np.random.default_rng(self.seed + 1)
        survivors = sorted(node.kept)
        shapley = {
            candidate: shapley_score(
                self.model,
                graph,
                frozenset({candidate}),
                target,
                rng,
                self.shapley_samples,
            )
            for candidate in survivors
        }
        survivor_order = sorted(survivors, key=lambda i: shapley[i], reverse=True)

        order = np.array(
            survivor_order + list(reversed(pruned_in_order)), dtype=int
        )
        scores = np.zeros(graph.n_real)
        for rank, index in enumerate(order):
            scores[index] = float(len(order) - rank)
        return order, scores
