"""Baseline explainers the paper compares against (Section II-C).

All three are implemented from their original papers' descriptions:

* :class:`GNNExplainerBaseline` — per-graph edge-mask optimization
  maximizing mutual information (Ying et al., NeurIPS 2019).
* :class:`PGExplainerBaseline` — a globally trained generative mask
  predictor over edge embeddings (Luo et al., NeurIPS 2020).
* :class:`SubgraphXBaseline` — Monte Carlo tree search over node-pruned
  subgraphs scored with Shapley values (Yuan et al., ICML 2021).

Plus two sanity baselines (random and degree ordering) used by the
ablation benchmarks, and the cheap gradient-saliency explainer the
serving degradation ladder falls back to.
"""

from repro.baselines.gnnexplainer import GNNExplainerBaseline
from repro.baselines.gradient import GradientExplainer
from repro.baselines.pgexplainer import PGExplainerBaseline
from repro.baselines.simple import DegreeExplainer, RandomExplainer
from repro.baselines.subgraphx import SubgraphXBaseline

__all__ = [
    "GNNExplainerBaseline",
    "PGExplainerBaseline",
    "SubgraphXBaseline",
    "RandomExplainer",
    "DegreeExplainer",
    "GradientExplainer",
]
