"""PGExplainer (Luo et al., 2020) — a globally trained mask predictor.

A small MLP maps each edge's embedding — the concatenation of its two
endpoint node embeddings from the frozen GNN, the paper's ``[N², 2f]``
input construction — to the probability that the edge matters for the
classification.  The predictor is trained *once* over many graphs
(giving it the global view the paper contrasts with GNNExplainer's
local optimization) by sampling approximately-discrete masks from the
concrete distribution with an annealed temperature and minimizing the
NLL of the GNN's prediction on the masked graph plus size/entropy
regularizers.

At explanation time no sampling is needed: the predicted edge
probabilities are used directly, and node importance is the incident
edge mass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acfg.dataset import ACFGDataset
from repro.acfg.graph import ACFG
from repro.baselines.gnnexplainer import edge_mass_node_scores
from repro.explain.base import RankingExplainer
from repro.gnn.cache import EmbeddingCache
from repro.gnn.model import GCNClassifier
from repro.nn import Adam, Dense, Module, Tensor, nll_loss_from_probs, no_grad
from repro.obs import add_counter

__all__ = ["PGExplainerBaseline", "MaskPredictor"]


class MaskPredictor(Module):
    """MLP mapping concatenated endpoint embeddings to an edge logit."""

    def __init__(
        self,
        embedding_size: int,
        hidden: int = 32,
        rng: np.random.Generator | None = None,
    ):
        rng = rng if rng is not None else np.random.default_rng()  # lint: ok (seeded rng is the reproducible path)
        self.hidden = Dense(2 * embedding_size, hidden, activation="relu", rng=rng)
        self.output = Dense(hidden, 1, activation="linear", rng=rng)

    def __call__(self, edge_embeddings: Tensor) -> Tensor:
        """Edge logits, shape [E, 1], from edge embeddings [E, 2f]."""
        return self.output(self.hidden(edge_embeddings))


@dataclass
class PGTrainingHistory:
    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


@dataclass(frozen=True)
class _GraphCache:
    """Frozen per-graph quantities reused across training epochs."""

    a_hat: np.ndarray
    edges: np.ndarray  # [E, 2] endpoint indices where a_hat > 0
    edge_embeddings: np.ndarray  # [E, 2f]
    active: np.ndarray
    target: int
    features: np.ndarray


class PGExplainerBaseline(RankingExplainer):
    """Parameterized explainer with an offline global training stage."""

    name = "PGExplainer"

    def __init__(
        self,
        model: GCNClassifier,
        hidden: int = 32,
        epochs: int = 20,
        lr: float = 0.01,
        size_weight: float = 0.005,
        entropy_weight: float = 0.1,
        temperature: tuple[float, float] = (5.0, 1.0),
        seed: int = 0,
        embedding_cache: EmbeddingCache | None = None,
    ):
        super().__init__(model)
        self.predictor = MaskPredictor(
            model.embedding_size, hidden, rng=np.random.default_rng(seed)
        )
        self.epochs = epochs
        self.lr = lr
        self.size_weight = size_weight
        self.entropy_weight = entropy_weight
        self.temperature = temperature
        self.seed = seed
        #: Shared frozen-GNN forward cache: when set, Z and the target
        #: class come from it instead of per-graph forward passes.
        self.embedding_cache = embedding_cache
        self._trained = False

    # ------------------------------------------------------------------
    # offline training stage
    # ------------------------------------------------------------------
    def fit(self, train_set: ACFGDataset, verbose: bool = False) -> PGTrainingHistory:
        """Train the mask predictor over the whole training set."""
        rng = np.random.default_rng(self.seed)
        cached = [self._cache_graph(graph) for graph in train_set]
        cached = [c for c in cached if c.edges.shape[0] > 0]
        if not cached:
            raise ValueError("no graphs with edges to train on")
        optimizer = Adam(self.predictor.parameters(), lr=self.lr)
        history = PGTrainingHistory()
        t_start, t_end = self.temperature

        for epoch in range(self.epochs):
            # Exponential temperature annealing, as in the original.
            progress = epoch / max(self.epochs - 1, 1)
            tau = t_start * (t_end / t_start) ** progress
            epoch_loss = 0.0
            for cache in cached:
                optimizer.zero_grad()
                loss = self._graph_loss(cache, tau, rng)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
            history.losses.append(epoch_loss / len(cached))
            if verbose:
                print(f"pg epoch {epoch + 1:3d} loss={history.losses[-1]:.4f}")
        self._trained = True
        add_counter("pgexplainer.train.epochs", self.epochs)
        return history

    def _graph_loss(
        self, cache: _GraphCache, tau: float, rng: np.random.Generator
    ) -> Tensor:
        logits = self.predictor(Tensor(cache.edge_embeddings)).reshape(-1)
        # Concrete / binary-Gumbel relaxation of discrete edge sampling.
        uniform = rng.uniform(1e-6, 1.0 - 1e-6, size=logits.shape)
        noise = np.log(uniform) - np.log(1.0 - uniform)
        soft_mask = ((logits + Tensor(noise)) * (1.0 / tau)).sigmoid()

        masked_a_hat = self._apply_edge_mask(cache, soft_mask)
        z = self.model.embed_normalized(
            masked_a_hat, cache.features, cache.active
        )
        probs = self.model.classify(z)
        prediction_loss = nll_loss_from_probs(probs, cache.target, eps=1e-12)
        size_loss = soft_mask.sum() * self.size_weight
        probs_edges = logits.sigmoid()
        entropy = -(
            probs_edges * probs_edges.log(eps=1e-12)
            + (1.0 - probs_edges) * (1.0 - probs_edges).log(eps=1e-12)
        ).mean()
        return prediction_loss + size_loss + entropy * self.entropy_weight

    def _apply_edge_mask(self, cache: _GraphCache, edge_mask: Tensor) -> Tensor:
        """Scatter per-edge mask values into the [N, N] propagation matrix.

        The masked matrix holds ``a_hat[i, j] * m_e`` on edge positions
        and the original ``a_hat`` elsewhere (self-loops stay intact).
        """
        n = cache.a_hat.shape[0]
        rows, cols = cache.edges[:, 0], cache.edges[:, 1]
        off_edges = cache.a_hat.copy()
        off_edges[rows, cols] = 0.0
        edge_weights = Tensor(cache.a_hat[rows, cols]) * edge_mask
        return Tensor(off_edges) + edge_weights.scatter2d((n, n), rows, cols)

    # ------------------------------------------------------------------
    # explanation stage
    # ------------------------------------------------------------------
    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        if not self._trained:
            raise RuntimeError("PGExplainer must be fit() before explaining")
        cache = self._cache_graph(graph)
        n = graph.n
        weights = np.zeros((n, n))
        if cache.edges.shape[0] > 0:
            with no_grad():
                logits = self.predictor(Tensor(cache.edge_embeddings)).numpy()
            probabilities = 1.0 / (1.0 + np.exp(-logits.reshape(-1)))
            weights[cache.edges[:, 0], cache.edges[:, 1]] = probabilities
        scores = edge_mass_node_scores(weights, graph.n_real)
        order = np.argsort(-scores, kind="stable")
        return order, scores

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _cache_graph(self, graph: ACFG) -> "_GraphCache":
        active = np.zeros(graph.n, dtype=bool)
        active[: graph.n_real] = True
        a_hat = self.model.a_hat_cache.get(graph.adjacency, active)
        # Off-diagonal support only: self-loops stay unmasked, as in the
        # original (the explanation concerns edges between blocks).
        support = (a_hat > 0) & ~np.eye(graph.n, dtype=bool)
        edges = np.argwhere(support)
        if self.embedding_cache is not None:
            cached = self.embedding_cache.forward(graph)
            z, target = cached.z, cached.predicted_class
        else:
            with no_grad():
                z = self.model.embed(graph.adjacency, graph.features, active).numpy()
            target = self.model.predict(graph)
        edge_embeddings = (
            np.concatenate([z[edges[:, 0]], z[edges[:, 1]]], axis=1)
            if edges.shape[0]
            else np.zeros((0, 2 * self.model.embedding_size))
        )
        return _GraphCache(
            a_hat=a_hat,
            edges=edges,
            edge_embeddings=edge_embeddings,
            active=active,
            target=target,
            features=graph.features,
        )
