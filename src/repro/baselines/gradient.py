"""Gradient saliency explainer — the serving degradation rung.

One forward + one backward pass through the frozen GCN: nodes are
ranked by the L2 norm of ∂logit_c/∂x_i, the input-feature gradient of
the predicted class's logit (vanilla saliency, Simonyan et al. 2014,
on graph inputs).  Orders of magnitude cheaper than CFGExplainer's
per-graph optimization loop, which is the point: when the serving
deadline is nearly spent or the heavy explainer is faulting, the
resilience ladder falls back here before giving up on explanation
entirely.
"""

from __future__ import annotations

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.base import RankingExplainer
from repro.nn.tensor import Tensor

__all__ = ["GradientExplainer"]


class GradientExplainer(RankingExplainer):
    """Rank nodes by input-gradient saliency of the predicted logit."""

    name = "Gradient"

    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        n_real = graph.n_real
        n = graph.adjacency.shape[0]
        mask = np.arange(n) < n_real
        x = Tensor(np.asarray(graph.features, dtype=np.float64), requires_grad=True)
        z = self.model.embed(
            graph.adjacency, x, active_mask=mask, key=graph.content_key()
        )
        logits = self.model.logits(z)
        target = int(np.argmax(logits.numpy()))
        seed = np.zeros_like(logits.numpy())
        seed[target] = 1.0
        logits.backward(seed)
        if x.grad is None:
            scores = np.zeros(n_real, dtype=np.float64)
        else:
            scores = np.linalg.norm(
                np.asarray(x.grad, dtype=np.float64)[:n_real], axis=1
            )
        order = np.argsort(-scores, kind="stable")
        return order, scores
