"""GNNExplainer (Ying et al., 2019) — per-graph edge-mask optimization.

For every graph to be explained, a soft mask over the existing edges is
optimized so that the masked graph still yields the GNN's original
prediction (maximizing mutual information between the two), with the
standard size and element-entropy regularizers pushing the mask toward
a small, near-discrete explanation.  Node importance is the incident
masked-edge mass, which is how an edge mask converts into the equisized
node subgraphs the paper's evaluation compares.

This is a *local* explainer: the optimization restarts from scratch for
each graph and uses no information from other graphs.
"""

from __future__ import annotations

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.base import RankingExplainer
from repro.gnn.model import GCNClassifier
from repro.gnn.normalize import normalized_adjacency
from repro.nn import Adam, Tensor, nll_loss_from_probs

__all__ = ["GNNExplainerBaseline", "edge_mass_node_scores"]


def edge_mass_node_scores(masked_weights: np.ndarray, n_real: int) -> np.ndarray:
    """Node scores = total mask weight on incident edges (in + out)."""
    incident = masked_weights.sum(axis=0) + masked_weights.sum(axis=1)
    return incident[:n_real].copy()


class GNNExplainerBaseline(RankingExplainer):
    """Edge-mask optimization explainer.

    Parameters
    ----------
    model:
        The frozen, pre-trained GNN classifier to explain.
    epochs:
        Optimization steps per graph (the original uses a few hundred).
    lr:
        Adam learning rate for the mask logits.
    size_weight, entropy_weight:
        Regularizer coefficients from the original objective.
    """

    name = "GNNExplainer"

    def __init__(
        self,
        model: GCNClassifier,
        epochs: int = 100,
        lr: float = 0.1,
        size_weight: float = 0.005,
        entropy_weight: float = 0.1,
        seed: int = 0,
    ):
        super().__init__(model)
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.epochs = epochs
        self.lr = lr
        self.size_weight = size_weight
        self.entropy_weight = entropy_weight
        self.seed = seed

    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        mask_probs = self.optimize_mask(graph)
        scores = edge_mass_node_scores(mask_probs, graph.n_real)
        order = np.argsort(-scores, kind="stable")
        return order, scores

    def optimize_mask(self, graph: ACFG) -> np.ndarray:
        """Learn the [N, N] soft edge mask for one graph.

        Returns the sigmoid mask probabilities restricted to the graph's
        (normalized) edges; entries off the edge support are zero.
        """
        rng = np.random.default_rng(self.seed)
        n = graph.n
        active = np.zeros(n, dtype=bool)
        active[: graph.n_real] = True

        a_hat = normalized_adjacency(graph.adjacency, active)
        support = a_hat > 0
        target = self.model.predict(graph)

        # Mask logits start slightly positive: begin from (almost) the
        # full graph and let the size term prune.
        logits = Tensor(rng.normal(1.0, 0.1, size=(n, n)), requires_grad=True)
        support_tensor = Tensor(support.astype(np.float64))
        a_hat_tensor = Tensor(a_hat)
        optimizer = Adam([logits], lr=self.lr)

        for _ in range(self.epochs):
            optimizer.zero_grad()
            mask = logits.sigmoid() * support_tensor
            masked_a_hat = a_hat_tensor * mask
            z = self.model.embed_normalized(masked_a_hat, graph.features, active)
            probs = self.model.classify(z)
            prediction_loss = nll_loss_from_probs(probs, target, eps=1e-12)
            size_loss = mask.sum() * self.size_weight
            entropy_loss = self._mask_entropy(logits, support_tensor) * self.entropy_weight
            loss = prediction_loss + size_loss + entropy_loss
            loss.backward()
            optimizer.step()

        final = 1.0 / (1.0 + np.exp(-logits.numpy()))
        return final * support

    @staticmethod
    def _mask_entropy(logits: Tensor, support: Tensor) -> Tensor:
        """Mean binary entropy of the mask (pushes entries toward 0/1)."""
        probs = logits.sigmoid()
        entropy = -(
            probs * probs.log(eps=1e-12)
            + (1.0 - probs) * (1.0 - probs).log(eps=1e-12)
        )
        masked = entropy * support
        denominator = max(float(support.numpy().sum()), 1.0)
        return masked.sum() * (1.0 / denominator)
