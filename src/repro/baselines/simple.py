"""Sanity baselines: random and degree-based node orderings.

Not part of the paper's comparison — used by the ablation benches to
show the learned explainers beat trivial heuristics.
"""

from __future__ import annotations

import numpy as np

from repro.acfg.graph import ACFG
from repro.explain.base import RankingExplainer
from repro.gnn.model import GCNClassifier

__all__ = ["RandomExplainer", "DegreeExplainer"]


class RandomExplainer(RankingExplainer):
    """Uniformly random node ordering (the floor any explainer must beat)."""

    name = "Random"

    def __init__(self, model: GCNClassifier, seed: int = 0):
        super().__init__(model)
        self.seed = seed

    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        # Derive a per-graph seed so different graphs get different
        # orders but the explainer stays deterministic overall.
        rng = np.random.default_rng(self.seed + hash(graph.name) % 100_000)
        order = rng.permutation(graph.n_real)
        scores = np.zeros(graph.n_real)
        scores[order] = np.arange(graph.n_real, 0, -1)
        return order, scores


class DegreeExplainer(RankingExplainer):
    """Order nodes by total degree (structural centrality heuristic)."""

    name = "Degree"

    def rank_nodes(self, graph: ACFG) -> tuple[np.ndarray, np.ndarray]:
        real = graph.adjacency[: graph.n_real, : graph.n_real]
        degree = (real > 0).sum(axis=0) + (real > 0).sum(axis=1)
        scores = degree.astype(np.float64)
        order = np.argsort(-scores, kind="stable")
        return order, scores
