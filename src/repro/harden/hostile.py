"""Factories for hostile corpus samples, used by tests and demos.

``inject_hostile`` splices degenerate-but-realistic samples into a
clean corpus at a given rate, simulating what an adversarial feed does
to a production ingestion pipeline.  Every kind here is caught by the
default :class:`~repro.harden.sanitize.GraphSanitizer` policy — fatal
kinds are quarantined, flag kinds are recorded — so a 10%-hostile run
completes end-to-end instead of crashing.
"""

from __future__ import annotations

import numpy as np

from repro.disasm.cfg import CFG, EdgeKind, build_cfg
from repro.disasm.parser import parse_program
from repro.disasm.program import Program
from repro.malgen.corpus import LabeledSample, block_motif_tags
from repro.malgen.families import FAMILIES

__all__ = ["HOSTILE_KINDS", "hostile_sample", "inject_hostile"]


def _sample_from_program(program: Program, cfg: CFG | None = None) -> LabeledSample:
    cfg = cfg if cfg is not None else build_cfg(program)
    return LabeledSample(
        program=program,
        cfg=cfg,
        family=FAMILIES[0],
        label=0,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )


def _empty(name: str) -> LabeledSample:
    """A program with no instructions at all → empty CFG."""
    return _sample_from_program(Program([], {}, name))


def _single_block(name: str) -> LabeledSample:
    """One straight-line block, no control flow."""
    program = parse_program("mov eax, 1\nadd eax, 2\nret", name=name)
    return _sample_from_program(program)


def _spin(name: str) -> LabeledSample:
    """A single block that jumps to itself forever (self-loop)."""
    program = parse_program("spin:\nnop\njmp spin", name=name)
    return _sample_from_program(program)


def _unreachable(name: str) -> LabeledSample:
    """Dead code after ``ret`` nobody jumps to → disconnected component."""
    text = "\n".join(
        [
            "mov eax, 1",
            "cmp eax, 0",
            "je out",
            "inc eax",
            "out:",
            "ret",
            "dead:",
            "mov ebx, 2",
            "ret",
        ]
    )
    return _sample_from_program(parse_program(text, name=name))


def _dangling_edge(name: str) -> LabeledSample:
    """A CFG whose edge list points at a block that does not exist.

    Models a corrupted disassembler export; adjacency-matrix
    construction fails, which ingestion must quarantine as a
    ``construction_error`` rather than crash on.
    """
    program = parse_program("mov eax, 1\nret", name=name)
    cfg = build_cfg(program)
    broken = CFG(cfg.blocks, [(0, 99, EdgeKind.JUMP)], name)
    return _sample_from_program(program, broken)


#: kind -> (factory, fatal-under-default-policy?)
HOSTILE_KINDS = {
    "empty": (_empty, True),
    "single_block": (_single_block, True),
    "spin": (_spin, True),  # single block + self-loop
    "unreachable": (_unreachable, False),  # disconnected: flagged only
    "dangling_edge": (_dangling_edge, True),
}


def hostile_sample(kind: str, name: str | None = None) -> LabeledSample:
    """Build one hostile sample of the named kind."""
    try:
        factory, _ = HOSTILE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown hostile kind {kind!r}; choose from {sorted(HOSTILE_KINDS)}"
        ) from None
    return factory(name or f"hostile_{kind}")


def inject_hostile(
    corpus: list[LabeledSample],
    fraction: float = 0.1,
    seed: int = 0,
    kinds: tuple[str, ...] | None = None,
    fatal_only: bool = True,
) -> tuple[list[LabeledSample], list[str]]:
    """Splice hostile samples into a corpus at ``fraction`` of its size.

    Returns ``(corpus_with_hostiles, hostile_names)``; insertion
    positions and kinds are drawn deterministically from ``seed``.
    ``fatal_only`` restricts injection to kinds the default sanitizer
    policy quarantines, so the injected count equals the quarantined
    count in a default run.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if kinds is None:
        kinds = tuple(
            k for k, (_, fatal) in sorted(HOSTILE_KINDS.items())
            if fatal or not fatal_only
        )
    rng = np.random.default_rng(seed)
    count = int(round(fraction * len(corpus)))
    result = list(corpus)
    names: list[str] = []
    for i in range(count):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        sample = hostile_sample(kind, name=f"hostile_{kind}_{i}")
        position = int(rng.integers(0, len(result) + 1))
        result.insert(position, sample)
        names.append(sample.program.name)
    return result, names
