"""Ingestion quarantine: typed structural/numerical checks on hostile graphs.

CFGExplainer's input domain is adversarial by construction — malware
authors control the binaries that become CFGs — so ingestion treats
every sample as hostile until checked.  A :class:`GraphSanitizer`
inspects corpus samples at two stages (the recovered CFG, then the
built ACFG) and emits typed :class:`QuarantineRecord` findings; the
``on_bad_input`` policy decides whether a fatal finding quarantines the
sample (drop + report) or raises :class:`HostileInputError`.

Findings are split into two severities:

* **fatal** reasons (:data:`DEFAULT_QUARANTINE_REASONS`) mark graphs
  that would corrupt training — empty graphs, NaN/Inf/negative
  features, absurd sizes, invalid adjacency values.  Under
  ``on_bad_input="quarantine"`` these samples are dropped and counted;
  under ``"raise"`` the first one aborts ingestion.
* **flag** reasons (self-loops, disconnected components, duplicate
  CFG edges, single-block graphs can be promoted) occur in legitimate
  code — spin loops, unreachable stubs — so they are recorded and
  counted but do not drop the sample under the default policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acfg.graph import ACFG

__all__ = [
    "DEFAULT_QUARANTINE_REASONS",
    "FLAG_REASONS",
    "GraphSanitizer",
    "HostileInputError",
    "ON_BAD_INPUT_POLICIES",
    "QuarantineRecord",
    "QuarantineReport",
    "sanitize_graphs",
]

#: Accepted values of the ``on_bad_input`` ingestion policy.
ON_BAD_INPUT_POLICIES = (None, "quarantine", "raise")

#: Reasons that drop (or abort on) a sample by default.
DEFAULT_QUARANTINE_REASONS: frozenset[str] = frozenset(
    {
        "empty_graph",
        "single_block",
        "nan_feature",
        "inf_feature",
        "negative_feature",
        "oversized_nodes",
        "oversized_edges",
        "bad_adjacency_value",
        "feature_dim_mismatch",
        "construction_error",
    }
)

#: Reasons recorded but tolerated by default (present in legitimate code).
FLAG_REASONS: frozenset[str] = frozenset(
    {"self_loop", "disconnected", "duplicate_edges"}
)


@dataclass(frozen=True)
class QuarantineRecord:
    """One typed finding about one sample.

    ``stage`` names where the finding surfaced: ``"cfg"`` (recovered
    control flow graph), ``"acfg"`` (built attributed graph), or
    ``"construction"`` (the CFG→ACFG conversion itself failed).
    """

    name: str
    family: str | None
    reason: str
    detail: str
    stage: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "family": self.family,
            "reason": self.reason,
            "detail": self.detail,
            "stage": self.stage,
        }


class HostileInputError(ValueError):
    """A fatal sanitizer finding under the ``on_bad_input="raise"`` policy."""

    def __init__(self, record: QuarantineRecord):
        super().__init__(
            f"hostile input {record.name!r} ({record.stage}): "
            f"{record.reason} — {record.detail}"
        )
        self.record = record


@dataclass
class QuarantineReport:
    """What ingestion saw: every finding, and which samples were dropped."""

    inspected: int = 0
    records: list[QuarantineRecord] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)

    @property
    def flagged(self) -> int:
        """Samples with at least one non-fatal finding."""
        fatal = set(self.quarantined)
        return len({r.name for r in self.records} - fatal)

    def by_reason(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.reason] = counts.get(record.reason, 0) + 1
        return dict(sorted(counts.items()))

    def merged(self, other: "QuarantineReport") -> "QuarantineReport":
        return QuarantineReport(
            inspected=self.inspected + other.inspected,
            records=self.records + other.records,
            quarantined=self.quarantined + other.quarantined,
        )

    def to_dict(self) -> dict:
        return {
            "inspected": self.inspected,
            "quarantined": list(self.quarantined),
            "by_reason": self.by_reason(),
            "records": [r.to_dict() for r in self.records],
        }

    def summary(self) -> str:
        lines = [
            f"inspected {self.inspected} sample(s): "
            f"{len(self.quarantined)} quarantined, {self.flagged} flagged"
        ]
        for reason, count in self.by_reason().items():
            lines.append(f"  {reason:<22} {count}")
        for name in self.quarantined:
            reasons = sorted({r.reason for r in self.records if r.name == name})
            lines.append(f"  - {name}: {', '.join(reasons)}")
        return "\n".join(lines)


def _components(n: int, edges: np.ndarray) -> int:
    """Weakly connected component count via union-find."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in edges:
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[ra] = rb
    return len({find(i) for i in range(n)})


@dataclass(frozen=True)
class GraphSanitizer:
    """Structural and numerical checks with configurable severities."""

    max_nodes: int = 50_000
    max_edges: int = 500_000
    #: Feature width every graph must match (None = don't check).
    expected_features: int | None = None
    #: Reasons treated as fatal; everything else is a flag.
    quarantine_reasons: frozenset[str] = DEFAULT_QUARANTINE_REASONS

    def is_fatal(self, record: QuarantineRecord) -> bool:
        return record.reason in self.quarantine_reasons

    # ------------------------------------------------------------------
    # CFG-level checks (pre-conversion, edge list still available)
    # ------------------------------------------------------------------
    def check_sample(self, sample) -> list[QuarantineRecord]:
        """Inspect a :class:`~repro.malgen.corpus.LabeledSample`'s CFG."""
        cfg = sample.cfg
        name = sample.program.name
        family = sample.family
        records: list[QuarantineRecord] = []

        def note(reason: str, detail: str) -> None:
            records.append(QuarantineRecord(name, family, reason, detail, "cfg"))

        if cfg.node_count == 0:
            note("empty_graph", "CFG has no basic blocks")
            return records
        if cfg.node_count == 1:
            note("single_block", "CFG is a single basic block")
        if cfg.node_count > self.max_nodes:
            note("oversized_nodes", f"{cfg.node_count} blocks > {self.max_nodes}")
        if cfg.edge_count > self.max_edges:
            note("oversized_edges", f"{cfg.edge_count} edges > {self.max_edges}")
        pairs = [(s, t) for s, t, _ in cfg.edges]
        dupes = len(pairs) - len(set(pairs))
        if dupes:
            note("duplicate_edges", f"{dupes} duplicate edge(s) in the edge list")
        self_loops = sum(1 for s, t in pairs if s == t)
        if self_loops:
            note("self_loop", f"{self_loops} self-loop edge(s)")
        if cfg.node_count > 1:
            unique = np.array(sorted(set(pairs)), dtype=int).reshape(-1, 2)
            if _components(cfg.node_count, unique) > 1:
                note("disconnected", "CFG has more than one weak component")
        return records

    # ------------------------------------------------------------------
    # ACFG-level checks (numerical payload)
    # ------------------------------------------------------------------
    def check_acfg(self, graph: ACFG) -> list[QuarantineRecord]:
        records: list[QuarantineRecord] = []

        def note(reason: str, detail: str) -> None:
            records.append(
                QuarantineRecord(graph.name, graph.family, reason, detail, "acfg")
            )

        if graph.n_real == 0:
            note("empty_graph", "ACFG has no real nodes")
            return records
        if graph.n_real == 1:
            note("single_block", "ACFG has a single real node")
        if graph.n_real > self.max_nodes:
            note("oversized_nodes", f"{graph.n_real} nodes > {self.max_nodes}")
        if (
            self.expected_features is not None
            and graph.num_features != self.expected_features
        ):
            note(
                "feature_dim_mismatch",
                f"{graph.num_features} features != {self.expected_features}",
            )
        real = graph.features[: graph.n_real]
        nan_count = int(np.isnan(real).sum())
        if nan_count:
            note("nan_feature", f"{nan_count} NaN feature value(s)")
        inf_count = int(np.isinf(real).sum())
        if inf_count:
            note("inf_feature", f"{inf_count} infinite feature value(s)")
        finite = real[np.isfinite(real)]
        negative = int((finite < 0).sum())
        if negative:
            note("negative_feature", f"{negative} negative feature value(s)")
        adjacency = graph.adjacency[: graph.n_real, : graph.n_real]
        bad_values = set(np.unique(adjacency)) - {0.0, 1.0, 2.0}
        if bad_values:
            note("bad_adjacency_value", f"values {sorted(bad_values)} not in {{0,1,2}}")
        if np.any(np.diag(adjacency) != 0):
            note("self_loop", f"{int((np.diag(adjacency) != 0).sum())} self-loop(s)")
        if graph.n_real > 1:
            sym = (adjacency != 0) | (adjacency.T != 0)
            edges = np.argwhere(sym)
            if _components(graph.n_real, edges) > 1:
                note("disconnected", "ACFG has more than one weak component")
        return records


def sanitize_graphs(
    graphs: list[ACFG],
    on_bad_input: str | None = "quarantine",
    sanitizer: GraphSanitizer | None = None,
) -> tuple[list[ACFG], QuarantineReport]:
    """Apply ACFG-level checks to already-built graphs.

    Returns ``(kept_graphs, report)``.  With ``on_bad_input="raise"``
    the first fatal finding raises :class:`HostileInputError`; with
    ``None`` every graph is kept (the report still records findings).
    """
    if on_bad_input not in ON_BAD_INPUT_POLICIES:
        raise ValueError(
            f"on_bad_input must be one of {ON_BAD_INPUT_POLICIES}, "
            f"got {on_bad_input!r}"
        )
    sanitizer = sanitizer or GraphSanitizer()
    report = QuarantineReport(inspected=len(graphs))
    kept: list[ACFG] = []
    for graph in graphs:
        records = sanitizer.check_acfg(graph)
        report.records.extend(records)
        fatal = [r for r in records if sanitizer.is_fatal(r)]
        if fatal and on_bad_input == "raise":
            raise HostileInputError(fatal[0])
        if fatal and on_bad_input == "quarantine":
            report.quarantined.append(graph.name)
            continue
        kept.append(graph)
    return kept, report
