"""Deterministic structured fuzzer for the ingestion → explanation path.

Seeded mutation of assembly listings and ACFG payloads, driven through
the full stack: parser → CFG recovery → feature extraction → sanitizer
→ reduction → GNN forward → all five explainers.  The invariant under
test is *typed rejection or success, never a crash and never a NaN*:

* hostile text must be rejected with :class:`~repro.disasm.ParseError`
  / :class:`~repro.disasm.CFGBuildError` (or survive parsing cleanly);
* corrupted graph payloads must be caught by the
  :class:`~repro.harden.sanitize.GraphSanitizer` as fatal findings;
* every sanitizer-clean graph must flow through the static reduction
  passes (:func:`repro.reduce.reduce_sample` with every pass enabled)
  either raising a typed error (``ValueError`` /
  :class:`~repro.nn.NumericalError`) or producing finite merged
  features and a valid lift map;
* everything that survives sanitation must flow through the GNN and
  every explainer without raising and without producing non-finite
  scores.

Any other exception — or a corruption the sanitizer misses, or a NaN
downstream — is recorded as a :class:`CrashRepro` with a greedily
minimized reproducer, optionally persisted to disk.  Everything is
driven by one seed, so a crash report's ``(seed, iteration)`` pair
replays exactly.

Run directly::

    python -m repro.harden.fuzz --iterations 500 --seed 0 --out crashes/
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.acfg.dataset import ACFGDataset
from repro.acfg.features import NUM_FEATURES
from repro.acfg.graph import ACFG, from_sample
from repro.baselines.gnnexplainer import GNNExplainerBaseline
from repro.baselines.pgexplainer import PGExplainerBaseline
from repro.baselines.subgraphx import SubgraphXBaseline
from repro.core.interpret import CFGExplainer
from repro.core.model import CFGExplainerModel
from repro.disasm.cfg import CFGBuildError, build_cfg
from repro.disasm.parser import ParseError, parse_program
from repro.explain.counterfactual import CFExplainer
from repro.gnn.model import GCNClassifier
from repro.harden.sanitize import GraphSanitizer, HostileInputError
from repro.malgen.corpus import LabeledSample, block_motif_tags, generate_corpus
from repro.malgen.families import FAMILIES
from repro.nn import NumericalError, no_grad
from repro.reduce import ReduceConfig, reduce_acfg

__all__ = ["CrashRepro", "FuzzConfig", "FuzzReport", "run_fuzz", "main"]

#: Typed, *expected* rejections — anything else that escapes is a crash.
HANDLED_ERRORS = (ParseError, CFGBuildError, HostileInputError, NumericalError)

#: Typed rejections the reduction passes are allowed to raise.
REDUCE_HANDLED_ERRORS = (ValueError, NumericalError)

#: Every reduction pass enabled so the fuzzer exercises them all.
_FUZZ_REDUCE_CONFIG = ReduceConfig(
    prune_dead_stores=True,
    filter_leaves=True,
    leaf_max_in_degree=8,
    max_rounds=8,
)

#: Hostile line fragments the text mutator splices in.
_HOSTILE_LINES = (
    "jmp nowhere_%d",
    "call missing_%d",
    "frobnicate eax, ebx",
    "mov eax, 'unterminated",
    "mov eax, [ebx + 4",
    ":",
    "x" * 300 + ":",
    "mov eax,,, ebx",
    "jmp",
    "; \x00\x01\x02 binary junk",
)

#: Clean built-in seed listings (mutation starting points).
_BUILTIN_SEEDS = (
    "entry:\n    mov eax, 1\n    cmp eax, 0\n    je done\n    inc eax\ndone:\n    ret",
    "start:\n    xor eax, eax\nloop_top:\n    add eax, 1\n    cmp eax, 10\n"
    "    jl loop_top\n    call ds:Sleep\n    ret",
    "f:\n    push ebp\n    mov ebp, esp\n    call g\n    pop ebp\n    ret\n"
    "g:\n    nop\n    ret",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs for one fuzzing campaign (fully determined by ``seed``)."""

    iterations: int = 500
    seed: int = 0
    #: Run the five explainers on every k-th sanitizer-clean graph.
    explain_every: int = 25
    #: Route every k-th sanitizer-clean sample through the serving path
    #: (:meth:`repro.serve.InferenceEngine.submit`) as well.
    serve_every: int = 10
    #: Directory crash repros are persisted to (None = in-memory only).
    out_dir: str | Path | None = None
    #: Extra seed listings (e.g. ``tests/data/hostile``), ``*.asm`` files.
    hostile_dir: str | Path | None = None
    max_instructions: int = 5_000
    max_line_length: int = 2_000
    #: Cap on greedy-minimization reparse attempts per crash.
    minimize_budget: int = 200


@dataclass(frozen=True)
class CrashRepro:
    """One invariant violation, with a minimized reproducer."""

    seed: int
    iteration: int
    stage: str  # parse | cfg | acfg | sanitize | reduce | forward | explain | serve
    error_type: str
    message: str
    text: str  # minimized assembly listing ("" for payload-only crashes)
    mutation: str = ""

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iteration": self.iteration,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "mutation": self.mutation,
            "text": self.text,
        }


@dataclass
class FuzzReport:
    """Campaign outcome: throughput counters plus every crash found."""

    iterations: int = 0
    parsed: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    quarantined: int = 0
    reduced: int = 0
    forwards: int = 0
    explained: int = 0
    served: int = 0
    crashes: list[CrashRepro] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.crashes

    def note_rejection(self, stage: str, error: BaseException) -> None:
        key = f"{stage}:{type(error).__name__}"
        self.rejected[key] = self.rejected.get(key, 0) + 1

    def to_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "parsed": self.parsed,
            "rejected": dict(sorted(self.rejected.items())),
            "quarantined": self.quarantined,
            "reduced": self.reduced,
            "forwards": self.forwards,
            "explained": self.explained,
            "served": self.served,
            "crashes": [c.to_dict() for c in self.crashes],
            "ok": self.ok,
        }

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.iterations} iteration(s) — {self.parsed} parsed, "
            f"{self.quarantined} quarantined, {self.reduced} reduced, "
            f"{self.forwards} forward passes, "
            f"{self.explained} explained, {self.served} served, "
            f"{len(self.crashes)} crash(es)"
        ]
        for key, count in sorted(self.rejected.items()):
            lines.append(f"  rejected {key:<32} {count}")
        for crash in self.crashes:
            lines.append(
                f"  CRASH iter={crash.iteration} stage={crash.stage} "
                f"{crash.error_type}: {crash.message}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# text mutations
# ----------------------------------------------------------------------
def _mutate_text(text: str, rng: np.random.Generator, pool: list[str]) -> str:
    """Apply one random structural mutation to an assembly listing."""
    lines = text.splitlines() or [""]
    op = int(rng.integers(0, 8))
    i = int(rng.integers(0, len(lines)))
    if op == 0:  # drop a line
        del lines[i]
    elif op == 1:  # duplicate a line (duplicate labels, repeated code)
        lines.insert(i, lines[i])
    elif op == 2:  # swap two lines (labels drift away from their code)
        j = int(rng.integers(0, len(lines)))
        lines[i], lines[j] = lines[j], lines[i]
    elif op == 3:  # truncate a line mid-token
        if lines[i]:
            lines[i] = lines[i][: int(rng.integers(0, len(lines[i])))]
    elif op == 4:  # corrupt one character
        if lines[i]:
            j = int(rng.integers(0, len(lines[i])))
            ch = chr(int(rng.integers(33, 127)))
            lines[i] = lines[i][:j] + ch + lines[i][j + 1 :]
    elif op == 5:  # splice in a hostile fragment
        fragment = _HOSTILE_LINES[int(rng.integers(0, len(_HOSTILE_LINES)))]
        lines.insert(i, fragment % rng.integers(0, 100) if "%d" in fragment else fragment)
    elif op == 6:  # splice lines from a different seed
        other = pool[int(rng.integers(0, len(pool)))].splitlines()
        if other:
            k = int(rng.integers(0, len(other)))
            lines[i:i] = other[k : k + int(rng.integers(1, 4))]
    else:  # glue two lines together
        if i + 1 < len(lines):
            lines[i] = lines[i] + " " + lines.pop(i + 1)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# payload mutations (in-memory ACFG corruption)
# ----------------------------------------------------------------------
def _corrupt_payload(graph: ACFG, rng: np.random.Generator) -> str | None:
    """Corrupt a built ACFG in place; returns the mutation name.

    Every mutation here is *fatal* under the default sanitizer policy,
    so ``check_acfg`` must flag the graph — a clean bill of health
    after corruption is an invariant violation (``sanitizer_miss``).
    """
    if graph.n_real == 0 or graph.features.size == 0:
        return None
    kind = ("feat_nan", "feat_inf", "feat_negative", "adj_bad_value")[
        int(rng.integers(0, 4))
    ]
    row = int(rng.integers(0, graph.n_real))
    col = int(rng.integers(0, graph.num_features))
    if kind == "feat_nan":
        graph.features[row, col] = np.nan
    elif kind == "feat_inf":
        graph.features[row, col] = np.inf
    elif kind == "feat_negative":
        graph.features[row, col] = -7.0
    else:
        graph.adjacency[row, int(rng.integers(0, graph.n_real))] = 7.0
    # The payload arrays changed under the graph's feet; stale content
    # digests would let the Â/embedding caches serve pre-corruption
    # results and mask the very bugs this fuzzer hunts.
    graph.invalidate_content_keys()
    return kind


def _minimize(
    text: str, check, budget: int
) -> str:
    """Greedy line removal: drop any line whose removal keeps the crash.

    ``check(candidate)`` returns True when the candidate still triggers
    the same failure.  Bounded by ``budget`` total checks.
    """
    lines = text.splitlines()
    spent = 0
    changed = True
    while changed and spent < budget:
        changed = False
        i = 0
        while i < len(lines) and spent < budget:
            candidate = lines[:i] + lines[i + 1 :]
            spent += 1
            if check("\n".join(candidate)):
                lines = candidate
                changed = True
            else:
                i += 1
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
class _Harness:
    """Tiny untrained-but-functional model stack the fuzzer drives."""

    def __init__(self, seed: int):
        rng = np.random.default_rng(seed)
        num_classes = len(FAMILIES)
        self.model = GCNClassifier(
            in_features=NUM_FEATURES, hidden=(8, 8), num_classes=num_classes, rng=rng
        )
        self.theta = CFGExplainerModel(
            embedding_size=8,
            num_classes=num_classes,
            scorer_hidden=(8,),
            classifier_hidden=(8,),
            rng=rng,
        )
        # PGExplainer needs its offline stage; one epoch on a miniature
        # clean corpus is enough to exercise its explain path.
        clean = generate_corpus(1, seed=seed, families=FAMILIES[:2])
        fit_set = ACFGDataset.from_corpus(clean, families=FAMILIES)
        pg = PGExplainerBaseline(self.model, hidden=8, epochs=1, seed=seed)
        pg.fit(fit_set)
        self.explainers = [
            CFGExplainer(self.model, self.theta),
            GNNExplainerBaseline(self.model, epochs=2, seed=seed),
            pg,
            SubgraphXBaseline(
                self.model,
                mcts_iterations=2,
                shapley_samples=1,
                expansion_width=2,
                seed=seed,
            ),
            CFExplainer(self.model, iterations=4, seed=seed),
        ]
        # The serving front door over the same model stack, so mutated
        # inputs also fuzz sanitize→verify→classify→explain behind
        # InferenceEngine.submit.  Gradient saliency as the default
        # explainer keeps per-submission cost at one forward+backward.
        from repro.acfg import FeatureScaler
        from repro.baselines.gradient import GradientExplainer
        from repro.serve import InferenceEngine

        scaler = FeatureScaler().fit(list(fit_set))
        self.engine = InferenceEngine(
            gnn=self.model,
            scaler=scaler,
            explainers={"Gradient": GradientExplainer(self.model)},
            families=tuple(fit_set.families),
            default_explainer="Gradient",
        )

    def forward(self, graph: ACFG) -> None:
        with no_grad():
            _, probs = self.model.forward_acfg(graph)
        values = probs.numpy()
        if not np.all(np.isfinite(values)):
            raise AssertionError(f"non-finite class probabilities: {values!r}")

    def explain(self, graph: ACFG) -> None:
        for explainer in self.explainers:
            explanation = explainer.explain(graph, step_size=50)
            scores = np.asarray(explanation.node_scores, dtype=float)
            if scores.size and not np.all(np.isfinite(scores)):
                raise AssertionError(
                    f"{explainer.name} produced non-finite node scores"
                )

    def serve(self, sample: LabeledSample) -> None:
        """One submission through the serving path; typed rejection or a
        finite response, never a crash."""
        response = self.engine.submit(sample)
        probabilities = np.asarray(response.probabilities, dtype=float)
        if not np.all(np.isfinite(probabilities)):
            raise AssertionError(
                f"serving produced non-finite probabilities: {probabilities!r}"
            )
        if response.explanation is None:
            raise AssertionError("serving returned no explanation")


def _seed_pool(config: FuzzConfig) -> list[str]:
    pool = list(_BUILTIN_SEEDS)
    # Realistic generated listings widen coverage beyond the toys above.
    for sample in generate_corpus(1, seed=config.seed, families=FAMILIES[:4]):
        pool.append(sample.program.to_text())
    if config.hostile_dir is not None:
        for path in sorted(Path(config.hostile_dir).glob("*.asm")):
            pool.append(path.read_text())
    return pool


def run_fuzz(config: FuzzConfig | None = None, **overrides) -> FuzzReport:
    """Run one deterministic fuzzing campaign and return its report."""
    config = config or FuzzConfig(**overrides)
    rng = np.random.default_rng(config.seed)
    pool = _seed_pool(config)
    harness = _Harness(config.seed)
    sanitizer = GraphSanitizer(expected_features=NUM_FEATURES)
    report = FuzzReport(iterations=config.iterations)

    for iteration in range(config.iterations):
        text = pool[int(rng.integers(0, len(pool)))]
        for _ in range(int(rng.integers(1, 4))):
            text = _mutate_text(text, rng, pool)
        crash = _drive_one(text, iteration, rng, harness, sanitizer, config, report)
        if crash is not None:
            report.crashes.append(crash)

    _persist_crashes(config, report)
    return report


def _drive_one(
    text: str,
    iteration: int,
    rng: np.random.Generator,
    harness: _Harness,
    sanitizer: GraphSanitizer,
    config: FuzzConfig,
    report: FuzzReport,
) -> CrashRepro | None:
    """Push one mutated listing through the stack; returns a crash or None."""

    def crash(stage: str, error: BaseException, mutation: str = "") -> CrashRepro:
        minimized = _minimize(
            text,
            lambda t: _same_failure(t, stage, type(error), config),
            config.minimize_budget,
        ) if stage in ("parse", "cfg", "acfg") else text
        return CrashRepro(
            seed=config.seed,
            iteration=iteration,
            stage=stage,
            error_type=type(error).__name__,
            message=str(error)[:500],
            text=minimized,
            mutation=mutation,
        )

    # 1. parse
    try:
        program = parse_program(
            text,
            name=f"fuzz_{iteration}",
            max_instructions=config.max_instructions,
            max_line_length=config.max_line_length,
        )
    except HANDLED_ERRORS as error:
        report.note_rejection("parse", error)
        return None
    except Exception as error:  # noqa: BLE001 — the invariant under test
        return crash("parse", error)
    report.parsed += 1

    # 2. CFG recovery + 3. feature extraction
    try:
        cfg = build_cfg(program)
    except HANDLED_ERRORS as error:
        report.note_rejection("cfg", error)
        return None
    except Exception as error:  # noqa: BLE001
        return crash("cfg", error)

    sample = LabeledSample(
        program=program,
        cfg=cfg,
        family=FAMILIES[0],
        label=0,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )
    findings = sanitizer.check_sample(sample)
    if any(sanitizer.is_fatal(f) for f in findings):
        report.quarantined += 1
        return None
    try:
        graph = from_sample(sample)
        findings = sanitizer.check_acfg(graph)
    except HANDLED_ERRORS as error:
        report.note_rejection("acfg", error)
        return None
    except Exception as error:  # noqa: BLE001
        return crash("acfg", error)
    if any(sanitizer.is_fatal(f) for f in findings):
        report.quarantined += 1
        return None

    # 4. payload corruption — the sanitizer must catch every one
    if rng.random() < 0.3:
        mutation = _corrupt_payload(graph, rng)
        if mutation is not None:
            try:
                post = sanitizer.check_acfg(graph)
            except Exception as error:  # noqa: BLE001
                return crash("sanitize", error, mutation)
            if not any(sanitizer.is_fatal(f) for f in post):
                return crash(
                    "sanitize",
                    AssertionError("sanitizer missed corrupted payload"),
                    mutation,
                )
            report.quarantined += 1
            return None

    # 5. static reduction — typed rejection or a valid, finite result
    try:
        result = reduce_acfg(graph, cfg=cfg, config=_FUZZ_REDUCE_CONFIG)
    except REDUCE_HANDLED_ERRORS as error:
        report.note_rejection("reduce", error)
        return None
    except Exception as error:  # noqa: BLE001
        return crash("reduce", error)
    if not np.all(np.isfinite(result.graph.features)):
        return crash(
            "reduce", AssertionError("non-finite features after merge")
        )
    order = np.sort(result.lift.lift_order(np.arange(result.graph.n_real)))
    if not np.array_equal(order, np.arange(graph.n_real)):
        return crash(
            "reduce", AssertionError("lift order is not a permutation")
        )
    report.reduced += 1

    # 6. GNN forward, 7. explainers (every k-th clean survivor)
    try:
        harness.forward(graph)
    except Exception as error:  # noqa: BLE001
        return crash("forward", error)
    report.forwards += 1
    if (report.forwards - 1) % config.explain_every == 0:
        try:
            harness.explain(graph)
        except Exception as error:  # noqa: BLE001
            return crash("explain", error)
        report.explained += 1

    # 8. serving path (every k-th clean survivor): the front door must
    # answer with a typed rejection or a finite response.
    if (report.forwards - 1) % config.serve_every == 0:
        from repro.serve import RequestRejected

        try:
            harness.serve(sample)
        except (RequestRejected, *HANDLED_ERRORS) as error:
            report.note_rejection("serve", error)
            return None
        except Exception as error:  # noqa: BLE001
            return crash("serve", error)
        report.served += 1
    return None


def _same_failure(
    text: str, stage: str, error_type: type, config: FuzzConfig
) -> bool:
    """Does ``text`` still reproduce a ``stage`` failure of ``error_type``?"""
    try:
        program = parse_program(
            text,
            name="minimize",
            max_instructions=config.max_instructions,
            max_line_length=config.max_line_length,
        )
    except HANDLED_ERRORS:
        return False
    except Exception as error:  # noqa: BLE001
        return stage == "parse" and isinstance(error, error_type)
    if stage == "parse":
        return False
    try:
        cfg = build_cfg(program)
    except HANDLED_ERRORS:
        return False
    except Exception as error:  # noqa: BLE001
        return stage == "cfg" and isinstance(error, error_type)
    if stage == "cfg":
        return False
    try:
        sample = LabeledSample(
            program=program,
            cfg=cfg,
            family=FAMILIES[0],
            label=0,
            motif_spans=[],
            block_tags=block_motif_tags(cfg, []),
        )
        from_sample(sample)
    except HANDLED_ERRORS:
        return False
    except Exception as error:  # noqa: BLE001
        return stage == "acfg" and isinstance(error, error_type)
    return False


def _persist_crashes(config: FuzzConfig, report: FuzzReport) -> None:
    if config.out_dir is None or not report.crashes:
        return
    out = Path(config.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for k, repro in enumerate(report.crashes):
        (out / f"crash_{k:03d}.json").write_text(
            json.dumps(repro.to_dict(), indent=2)
        )
        if repro.text:
            (out / f"crash_{k:03d}.asm").write_text(repro.text)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harden.fuzz",
        description="Deterministic structured fuzzer for the ingestion path.",
    )
    parser.add_argument("--iterations", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--explain-every", type=int, default=25)
    parser.add_argument("--out", default=None, help="directory for crash repros")
    parser.add_argument(
        "--hostile-dir", default=None, help="extra *.asm seed listings"
    )
    options = parser.parse_args(argv)
    report = run_fuzz(
        FuzzConfig(
            iterations=options.iterations,
            seed=options.seed,
            explain_every=options.explain_every,
            out_dir=options.out,
            hostile_dir=options.hostile_dir,
        )
    )
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
