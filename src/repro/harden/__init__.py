"""Hostile-input hardening: ingestion quarantine + structured fuzzing.

The classifier's input domain is adversarial by construction — malware
authors control the binaries that become CFGs.  This package holds the
defenses: :mod:`repro.harden.sanitize` quarantines degenerate or
corrupted graphs at ingestion (the ``on_bad_input`` policy on
:meth:`repro.acfg.dataset.ACFGDataset.from_corpus` and the eval
pipeline), :mod:`repro.harden.hostile` fabricates hostile corpus
samples for tests and drills, and :mod:`repro.harden.fuzz` is the
deterministic structured fuzzer that drives mutated inputs through
parser → CFG → features → GNN → explainers asserting typed-rejection
/ no-crash / no-NaN invariants.
"""

from repro.harden.fuzz import CrashRepro, FuzzConfig, FuzzReport, run_fuzz
from repro.harden.hostile import HOSTILE_KINDS, hostile_sample, inject_hostile
from repro.harden.sanitize import (
    DEFAULT_QUARANTINE_REASONS,
    FLAG_REASONS,
    GraphSanitizer,
    HostileInputError,
    ON_BAD_INPUT_POLICIES,
    QuarantineRecord,
    QuarantineReport,
    sanitize_graphs,
)

__all__ = [
    "DEFAULT_QUARANTINE_REASONS",
    "FLAG_REASONS",
    "GraphSanitizer",
    "HostileInputError",
    "ON_BAD_INPUT_POLICIES",
    "QuarantineRecord",
    "QuarantineReport",
    "sanitize_graphs",
    "HOSTILE_KINDS",
    "hostile_sample",
    "inject_hostile",
    "CrashRepro",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
]
