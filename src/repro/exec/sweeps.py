"""Sharded, resumable execution of the Figure 2 / Table IV experiments.

:func:`run_sweeps` cuts the full sweep grid into per-(family, explainer)
shards and pushes them through :func:`repro.exec.scheduler.run_tasks`.
With ``num_workers == 1`` the shards run inline in the parent — the
exact serial reference path — while higher worker counts fan out over
spawned processes that rebuild the frozen pipeline from a
:class:`~repro.exec.worker.PipelineWorkerSpec`.  Either way a failed
shard degrades to a :class:`~repro.exec.tasks.TaskFailure` in
``SweepRunResult.failures`` instead of killing the run.

Sharding is also the checkpoint grain: with a ``run_dir``, every
completed shard persists atomically under ``<run_dir>/sweeps/`` the
moment it finishes, and a rerun restores completed shards instead of
recomputing them — a sweep killed mid-run resumes where it stopped.
Per-shard determinism (explainers reseed per ``explain`` call) makes
restored, parallel and serial results bit-identical.
"""

from __future__ import annotations

import pickle
from dataclasses import asdict, dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Callable

from repro.exec.scheduler import run_tasks
from repro.exec.tasks import RetryPolicy, Task, TaskFailure
from repro.exec.worker import (
    PipelineWorkerSpec,
    build_pipeline_context,
    run_sweep_shard,
    run_timing_shard,
)
from repro.obs import add_counter, span as obs_span

__all__ = ["SweepRunResult", "run_sweeps", "run_timings"]


@dataclass
class SweepRunResult:
    """Outcome of a sharded sweep: the Figure 2 grid plus failure records."""

    #: ``sweeps[family][explainer_name]`` — exactly the shape
    #: :func:`repro.eval.sweep.sweep_all_families` returns; shards that
    #: failed are absent.
    sweeps: dict
    failures: list[TaskFailure] = field(default_factory=list)
    #: Shards restored from a ``run_dir`` instead of recomputed.
    restored: int = 0


def _shard_key(family: str, explainer_name: str) -> str:
    return f"{family}--{explainer_name}"


def _shard_path(shard_dir: Path, key: str) -> Path:
    return shard_dir / f"{key}.pkl"


def _retry_policy(config, retry: RetryPolicy | None) -> RetryPolicy:
    if retry is not None:
        return retry
    return RetryPolicy(
        max_retries=config.task_retries,
        backoff_seconds=config.retry_backoff_seconds,
    )


def _models_checkpoint(artifacts, run_dir: Path | None, stack) -> str:
    """A trained-model checkpoint for workers to restore from.

    Under a ``run_dir`` the checkpoint lives at ``<run_dir>/models`` and
    is reused across resumed runs; otherwise it goes to a temporary
    directory cleaned up when the sweep finishes.
    """
    from repro.eval.persistence import checkpoint_complete, save_models

    if run_dir is not None:
        models_dir = run_dir / "models"
        if not checkpoint_complete(models_dir):
            save_models(artifacts, models_dir)
        return str(models_dir)
    tmp = stack.enter_context(TemporaryDirectory(prefix="repro-models-"))
    models_dir = Path(tmp) / "models"
    save_models(artifacts, models_dir)
    return str(models_dir)


def run_sweeps(
    artifacts,
    *,
    step_size: int | None = None,
    num_workers: int | None = None,
    run_dir: str | Path | None = None,
    timeout_seconds: float | None = None,
    retry: RetryPolicy | None = None,
    verbose: bool = False,
    on_shard_complete: Callable[[str, object], None] | None = None,
) -> SweepRunResult:
    """Run the full Figure 2 grid, sharded per (family, explainer).

    Defaults for ``step_size`` / ``num_workers`` / ``timeout_seconds`` /
    ``retry`` come from ``artifacts.config``.  ``on_shard_complete(key,
    sweep)`` fires after each shard's result is recorded (and persisted,
    with a ``run_dir``) — the crash-resume tests use it to interrupt a
    run at an exact shard boundary.
    """
    from contextlib import ExitStack

    config = artifacts.config
    step_size = step_size if step_size is not None else config.step_size
    num_workers = num_workers if num_workers is not None else config.num_workers
    timeout_seconds = (
        timeout_seconds if timeout_seconds is not None else config.task_timeout_seconds
    )
    retry = _retry_policy(config, retry)
    run_dir = Path(run_dir) if run_dir is not None else None
    shard_dir = run_dir / "sweeps" if run_dir is not None else None

    shards: list[tuple[str, str, str]] = []  # (key, family, explainer)
    for family in artifacts.test_set.families:
        if not artifacts.test_set.of_family(family):
            continue
        for name in artifacts.explainers:
            shards.append((_shard_key(family, name), family, name))

    results: dict[str, object] = {}
    restored = 0
    with obs_span("sweep.run") as sweep_span:
        if shard_dir is not None:
            for key, _, _ in shards:
                path = _shard_path(shard_dir, key)
                if not path.is_file():
                    continue
                try:
                    sweep = pickle.loads(path.read_bytes())
                except Exception:
                    continue  # truncated/corrupt shard: recompute it
                results[key] = sweep
                restored += 1
                add_counter("sweep.shards.restored")
                print(f"[resume] sweep shard {key}: restored from {path}")

        pending = [
            Task(key=key, payload={"family": family, "explainer": name, "step_size": step_size})
            for key, family, name in shards
            if key not in results
        ]
        sweep_span.add("sweep.shards.total", len(shards))
        sweep_span.add("sweep.shards.restored", restored)

        failures: list[TaskFailure] = []

        def handle(outcome) -> None:
            if not outcome.ok:
                failures.append(outcome)
                return
            sweep = outcome.value
            results[outcome.key] = sweep
            add_counter("sweep.shards.computed")
            if shard_dir is not None:
                from repro.eval.persistence import atomic_write_bytes

                atomic_write_bytes(_shard_path(shard_dir, outcome.key), pickle.dumps(sweep))
            if verbose:
                print(
                    f"{sweep.family:8s} {sweep.explainer_name:14s} "
                    f"auc={sweep.auc:.3f} "
                    f"acc@10%={sweep.accuracy_at(0.1):.3f} "
                    f"acc@20%={sweep.accuracy_at(0.2):.3f}"
                )
            if on_shard_complete is not None:
                on_shard_complete(outcome.key, sweep)

        if pending:
            with ExitStack() as stack:
                if num_workers <= 1:
                    # Inline: no pickling, the shards close over the live
                    # artifacts — byte-for-byte the serial reference.
                    run_tasks(
                        pending,
                        run_sweep_shard,
                        spec=artifacts,
                        num_workers=1,
                        retry=retry,
                        on_result=handle,
                        verbose=verbose,
                    )
                else:
                    spec = PipelineWorkerSpec(
                        config=asdict(config),
                        models_dir=_models_checkpoint(artifacts, run_dir, stack),
                    )
                    run_tasks(
                        pending,
                        run_sweep_shard,
                        init_fn=build_pipeline_context,
                        spec=spec,
                        num_workers=num_workers,
                        timeout_seconds=timeout_seconds,
                        retry=retry,
                        on_result=handle,
                        verbose=verbose,
                    )

    sweeps: dict = {}
    for key, family, name in shards:
        if key not in results:
            continue
        sweeps.setdefault(family, {})[name] = results[key]
    return SweepRunResult(sweeps=sweeps, failures=failures, restored=restored)


def run_timings(
    artifacts,
    graph_count: int,
    *,
    step_size: int | None = None,
    num_workers: int | None = None,
    timeout_seconds: float | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[list, list[TaskFailure]]:
    """Table IV timings, one shard per explainer.

    Serially this is exactly :func:`repro.eval.timing.measure_timings`
    over the first ``graph_count`` test graphs; with workers each
    explainer is timed in its own process.  (Absolute times then reflect
    contended cores — use serial runs for publishable numbers.)  Returns
    ``(timings, failures)`` in explainer order.
    """
    from contextlib import ExitStack

    config = artifacts.config
    step_size = step_size if step_size is not None else config.step_size
    num_workers = num_workers if num_workers is not None else config.num_workers
    timeout_seconds = (
        timeout_seconds if timeout_seconds is not None else config.task_timeout_seconds
    )
    retry = _retry_policy(config, retry)

    tasks = [
        Task(
            key=f"timing--{name}",
            payload={
                "explainer": name,
                "graph_count": graph_count,
                "step_size": step_size,
            },
        )
        for name in artifacts.explainers
    ]
    with ExitStack() as stack:
        if num_workers <= 1:
            outcomes = run_tasks(
                tasks, run_timing_shard, spec=artifacts, num_workers=1, retry=retry
            )
        else:
            spec = PipelineWorkerSpec(
                config=asdict(config),
                models_dir=_models_checkpoint(artifacts, None, stack),
            )
            outcomes = run_tasks(
                tasks,
                run_timing_shard,
                init_fn=build_pipeline_context,
                spec=spec,
                num_workers=num_workers,
                timeout_seconds=timeout_seconds,
                retry=retry,
            )
    timings = [o.value for o in outcomes if o.ok]
    failures = [o for o in outcomes if not o.ok]
    return timings, failures
