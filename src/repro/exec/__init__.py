"""repro.exec — fault-tolerant parallel execution for the evaluation.

A process-pool scheduler (:func:`run_tasks`) with per-task timeouts,
bounded retry and graceful degradation (a failed task becomes a typed
:class:`TaskFailure` record), plus the pipeline-specific layers on top:
worker specs that rebuild the frozen GNN + explainers in a spawned
process, and sharded, resumable drivers for the Figure 2 sweeps and
Table IV timings.
"""

from repro.exec.scheduler import SchedulerError, WorkerInitError, run_tasks
from repro.exec.sweeps import SweepRunResult, run_sweeps, run_timings
from repro.exec.tasks import (
    FAILURE_KINDS,
    RetryPolicy,
    Task,
    TaskFailure,
    TaskSuccess,
)
from repro.exec.worker import (
    PipelineWorkerSpec,
    build_pipeline_context,
    run_sweep_shard,
    run_timing_shard,
)

__all__ = [
    "FAILURE_KINDS",
    "PipelineWorkerSpec",
    "RetryPolicy",
    "SchedulerError",
    "SweepRunResult",
    "Task",
    "TaskFailure",
    "TaskSuccess",
    "WorkerInitError",
    "build_pipeline_context",
    "run_sweep_shard",
    "run_sweeps",
    "run_tasks",
    "run_timing_shard",
    "run_timings",
]
