"""Typed units of work and outcomes for the :mod:`repro.exec` scheduler.

A :class:`Task` is a keyed, picklable payload; running one yields
either a :class:`TaskSuccess` carrying the worker's return value or a
:class:`TaskFailure` — a *record*, not an exception, so one bad graph
degrades a sweep instead of killing a multi-minute run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "FAILURE_KINDS",
    "RetryPolicy",
    "Task",
    "TaskFailure",
    "TaskSuccess",
]

#: How a task can fail: an exception raised by the task function, a
#: per-task wall-clock timeout, or the death of the worker process
#: running it (segfault, OOM kill, ``os._exit``).
FAILURE_KINDS: tuple[str, ...] = ("exception", "timeout", "crash")


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a unique key plus a picklable payload."""

    key: str
    payload: Any


@dataclass(frozen=True)
class TaskSuccess:
    """A completed task: its value plus attempt/cost accounting."""

    key: str
    value: Any
    attempts: int
    #: Wall-clock seconds of the successful attempt (not prior retries).
    seconds: float
    #: Worker that produced the value; None on the inline serial path.
    worker_id: int | None

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retries — kept in the results, typed.

    ``kind`` is one of :data:`FAILURE_KINDS`; ``seconds`` accumulates
    wall-clock time across every attempt.
    """

    key: str
    kind: str
    message: str
    attempts: int
    seconds: float
    worker_id: int | None = None
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_retries`` counts attempts *beyond* the first; a policy of 1
    means a task runs at most twice.  The base delay before retrying
    attempt ``n+1`` is ``backoff_seconds * backoff_factor ** (n - 1)``;
    with ``jitter`` > 0 the delay is scaled by a factor drawn from
    ``[1 - jitter, 1 + jitter]``.  The draw is a hash of the task key
    and attempt index, not a PRNG, so retry schedules are reproducible
    while still decorrelating concurrent retriers (no thundering herd
    after a shared-dependency blip).
    """

    max_retries: int = 1
    backoff_seconds: float = 0.5
    backoff_factor: float = 2.0
    #: Fractional jitter half-width in [0, 1); 0 keeps exact backoff.
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, failed_attempts: int, key: str | None = None) -> float:
        """Seconds to wait before the next attempt.

        ``key`` feeds the jitter draw; omitted (or with ``jitter=0``)
        the delay is the exact exponential schedule, preserving the
        behaviour existing scheduler callers rely on.
        """
        if failed_attempts <= 0:
            return 0.0
        base = self.backoff_seconds * self.backoff_factor ** (failed_attempts - 1)
        if self.jitter == 0.0 or key is None:
            return base
        import hashlib

        digest = hashlib.sha256(
            f"retry:{key}:{failed_attempts}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 - self.jitter + 2.0 * self.jitter * unit)
