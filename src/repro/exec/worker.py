"""Worker-process context for parallel evaluation runs.

A spawned scheduler worker starts from a clean interpreter; everything
it needs must travel through a small picklable spec.
:class:`PipelineWorkerSpec` is that spec for the evaluation pipeline —
the experiment config (as a plain dict) plus the path of a trained-model
checkpoint — and :func:`build_pipeline_context` turns it back into full
:class:`~repro.eval.pipeline.PipelineArtifacts`: the deterministic parts
(corpus, split, scaler) are rebuilt from the config, the trained parts
(GNN, Θ, PGExplainer's predictor) are restored from the checkpoint via
:func:`repro.eval.persistence.load_models_into`.

The shard functions (:func:`run_sweep_shard`, :func:`run_timing_shard`)
are the ``task_fn`` side: given rebuilt artifacts and a shard payload,
produce exactly what the serial code produces.  Determinism holds
because every explainer reseeds its RNG per ``explain`` call and module
weights round-trip losslessly through ``npz`` — a parallel sweep is
bit-identical to the serial reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "PipelineWorkerSpec",
    "build_pipeline_context",
    "run_sweep_shard",
    "run_timing_shard",
]


@dataclass(frozen=True)
class PipelineWorkerSpec:
    """Everything needed to rebuild the frozen pipeline in a fresh process.

    ``config`` is ``dataclasses.asdict(ExperimentConfig)`` (a dict, not
    the dataclass, so unpickling does not depend on import order);
    ``models_dir`` points at a :func:`repro.eval.persistence.save_models`
    checkpoint.
    """

    config: Mapping[str, Any]
    models_dir: str


def build_pipeline_context(spec: PipelineWorkerSpec):
    """Rebuild trained :class:`PipelineArtifacts` from a worker spec."""
    from repro.eval.persistence import load_models_into
    from repro.eval.pipeline import ExperimentConfig, build_untrained_artifacts

    config = ExperimentConfig(**dict(spec.config))
    artifacts = build_untrained_artifacts(config)
    return load_models_into(artifacts, spec.models_dir)


def run_sweep_shard(artifacts, payload: Mapping[str, Any]):
    """One Figure 2 shard: sweep a single (family, explainer) pair."""
    from repro.eval.sweep import sweep_family

    family = payload["family"]
    explainer_name = payload["explainer"]
    graphs = artifacts.test_set.of_family(family)
    return sweep_family(
        artifacts.gnn,
        artifacts.explainers[explainer_name],
        graphs,
        family,
        payload["step_size"],
    )


def run_timing_shard(artifacts, payload: Mapping[str, Any]):
    """One Table IV shard: time a single explainer over the test graphs."""
    from repro.eval.timing import measure_timings

    explainer_name = payload["explainer"]
    graphs = list(artifacts.test_set)[: payload["graph_count"]]
    return measure_timings(
        {explainer_name: artifacts.explainers[explainer_name]},
        graphs,
        artifacts.offline_training_seconds,
        payload["step_size"],
    )[0]
