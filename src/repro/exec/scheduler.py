"""Fault-tolerant process-pool work scheduler.

:func:`run_tasks` fans a list of :class:`~repro.exec.tasks.Task` out
over ``num_workers`` **spawned** processes.  Spawn (not fork) is used
deliberately: each worker starts from a clean interpreter and rebuilds
its context — for the evaluation pipeline, the frozen GNN and
explainers — from a small serialized spec via a module-level
``init_fn``, so workers never depend on inherited (and possibly
half-mutated) parent memory.

Robustness model, per task:

* an **exception** in the task function is caught in the worker and
  reported back as a typed error (the worker survives);
* a **timeout** (``timeout_seconds``) terminates the worker running
  the task and respawns a replacement;
* a **crash** (segfault, OOM kill, ``os._exit``) is detected by the
  parent via pipe EOF and likewise triggers a respawn.

Each failure mode consumes one attempt under the
:class:`~repro.exec.tasks.RetryPolicy` (bounded retries with
exponential backoff); a task out of attempts becomes a
:class:`~repro.exec.tasks.TaskFailure` record in the results while the
run continues.  Only a worker whose *init* fails aborts the run
(:class:`WorkerInitError`) — nothing could ever complete.

``num_workers <= 1`` executes inline in the parent process with the
same retry/degradation semantics (timeouts cannot be enforced
preemptively without a worker process and are ignored).

The parent instruments the run through :mod:`repro.obs`: an
``exec.run_tasks`` span with ``exec.tasks.dispatched`` / ``completed``
/ ``retried`` / ``failed`` / ``timeouts`` / ``crashes`` counters plus
``exec.workers.spawned`` and ``exec.workers.busy_seconds`` (busy
seconds over ``num_workers ×`` span wall time is worker utilization).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Iterable, Sequence

from repro.exec.tasks import RetryPolicy, Task, TaskFailure, TaskSuccess
from repro.obs import add_counter, span as obs_span

__all__ = ["SchedulerError", "WorkerInitError", "run_tasks"]

#: Upper bound on one poll cycle: bounds how late the parent notices a
#: deadline and guards against a worker dying without closing its pipe.
_MAX_POLL_SECONDS = 0.5
#: Grace period for workers to exit after a "stop" message.
_SHUTDOWN_GRACE_SECONDS = 2.0


class SchedulerError(RuntimeError):
    """The scheduler itself (not an individual task) failed."""


class WorkerInitError(SchedulerError):
    """A worker's ``init_fn`` failed — no task could ever run, so the
    whole run aborts instead of burning retries on every task."""


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _worker_main(
    worker_id: int,
    conn: Connection,
    init_fn: Callable[[Any], Any] | None,
    spec: Any,
    task_fn: Callable[[Any, Any], Any],
) -> None:
    """Worker loop: build context from the spec, then serve tasks.

    Protocol (all messages are ``(kind, key, body)`` tuples):
    parent → worker: ``("task", key, payload)`` | ``("stop", None, None)``;
    worker → parent: ``("ready", ...)`` after init, then per task
    ``("ok", key, (value, seconds))`` or
    ``("error", key, (message, traceback, seconds))``.
    ``("init_error", None, (message, traceback))`` replaces "ready" when
    the context cannot be built.
    """
    try:
        context = init_fn(spec) if init_fn is not None else spec
    except BaseException as error:  # noqa: BLE001 - report, don't die silently
        try:
            conn.send(
                (
                    "init_error",
                    None,
                    (f"{type(error).__name__}: {error}", traceback.format_exc()),
                )
            )
        finally:
            conn.close()
        return
    conn.send(("ready", None, worker_id))
    while True:
        try:
            kind, key, payload = conn.recv()
        except (EOFError, OSError):
            break  # parent is gone
        if kind == "stop":
            break
        started = time.perf_counter()
        try:
            value = task_fn(context, payload)
        except BaseException as error:  # noqa: BLE001 - typed error, worker survives
            conn.send(
                (
                    "error",
                    key,
                    (
                        f"{type(error).__name__}: {error}",
                        traceback.format_exc(),
                        time.perf_counter() - started,
                    ),
                )
            )
            continue
        elapsed = time.perf_counter() - started
        try:
            conn.send(("ok", key, (value, elapsed)))
        except Exception as error:  # unpicklable / oversized result
            conn.send(
                (
                    "error",
                    key,
                    (
                        f"result not transferable: {type(error).__name__}: {error}",
                        traceback.format_exc(),
                        elapsed,
                    ),
                )
            )
    conn.close()


# ----------------------------------------------------------------------
# parent-side bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    id: int
    process: Any
    conn: Connection
    ready: bool = False
    retired: bool = False
    task: Task | None = None
    attempt: int = 0
    deadline: float | None = None
    dispatched_at: float = 0.0


@dataclass
class _RunState:
    tasks: list[Task]
    retry: RetryPolicy
    #: (task, attempt number, monotonic time it becomes eligible)
    pending: deque = field(default_factory=deque)
    outcomes: dict[str, TaskSuccess | TaskFailure] = field(default_factory=dict)
    #: cumulative wall seconds already spent per key (failed attempts)
    spent: dict[str, float] = field(default_factory=dict)

    @property
    def remaining(self) -> int:
        return len(self.tasks) - len(self.outcomes)


def run_tasks(
    tasks: Iterable[Task],
    task_fn: Callable[[Any, Any], Any],
    *,
    init_fn: Callable[[Any], Any] | None = None,
    spec: Any = None,
    num_workers: int = 1,
    timeout_seconds: float | None = None,
    retry: RetryPolicy | None = None,
    on_result: Callable[[TaskSuccess | TaskFailure], None] | None = None,
    verbose: bool = False,
) -> list[TaskSuccess | TaskFailure]:
    """Run every task, returning one outcome per task in input order.

    ``task_fn(context, payload)`` produces a task's value, where
    ``context`` is ``init_fn(spec)`` (or ``spec`` itself without an
    ``init_fn``).  With ``num_workers > 1`` both functions and the spec
    must be picklable (module-level functions) — each spawned worker
    calls ``init_fn`` exactly once.  ``on_result`` fires in the parent
    as each task reaches its final outcome (success or exhausted
    retries), enabling streaming persistence.
    """
    tasks = list(tasks)
    keys = [task.key for task in tasks]
    if len(set(keys)) != len(keys):
        raise ValueError("task keys must be unique")
    if timeout_seconds is not None and timeout_seconds <= 0:
        raise ValueError("timeout_seconds must be positive or None")
    retry = retry if retry is not None else RetryPolicy()

    with obs_span("exec.run_tasks") as sched_span:
        sched_span.add("exec.tasks.total", len(tasks))
        sched_span.add("exec.workers.requested", max(1, num_workers))
        if not tasks:
            return []
        if num_workers <= 1:
            outcomes = _run_inline(tasks, task_fn, init_fn, spec, retry, on_result, verbose)
        else:
            outcomes = _run_pool(
                tasks,
                task_fn,
                init_fn,
                spec,
                num_workers,
                timeout_seconds,
                retry,
                on_result,
                verbose,
            )
    return outcomes


# ----------------------------------------------------------------------
# inline (serial) execution
# ----------------------------------------------------------------------
def _run_inline(
    tasks: Sequence[Task],
    task_fn,
    init_fn,
    spec,
    retry: RetryPolicy,
    on_result,
    verbose: bool,
) -> list[TaskSuccess | TaskFailure]:
    context = init_fn(spec) if init_fn is not None else spec
    outcomes: list[TaskSuccess | TaskFailure] = []
    for task in tasks:
        attempts = 0
        total = 0.0
        while True:
            attempts += 1
            add_counter("exec.tasks.dispatched")
            started = time.perf_counter()
            try:
                value = task_fn(context, task.payload)
            except Exception as error:
                total += time.perf_counter() - started
                if attempts <= retry.max_retries:
                    add_counter("exec.tasks.retried")
                    if verbose:
                        print(f"[exec] {task.key}: attempt {attempts} failed ({error}); retrying")
                    time.sleep(retry.delay(attempts))
                    continue
                outcome: TaskSuccess | TaskFailure = TaskFailure(
                    key=task.key,
                    kind="exception",
                    message=f"{type(error).__name__}: {error}",
                    attempts=attempts,
                    seconds=total,
                    worker_id=None,
                    traceback=traceback.format_exc(),
                )
                add_counter("exec.tasks.failed")
                break
            elapsed = time.perf_counter() - started
            add_counter("exec.tasks.completed")
            add_counter("exec.workers.busy_seconds", elapsed)
            outcome = TaskSuccess(
                key=task.key,
                value=value,
                attempts=attempts,
                seconds=elapsed,
                worker_id=None,
            )
            break
        outcomes.append(outcome)
        if on_result is not None:
            on_result(outcome)
    return outcomes


# ----------------------------------------------------------------------
# process-pool execution
# ----------------------------------------------------------------------
def _run_pool(
    tasks: Sequence[Task],
    task_fn,
    init_fn,
    spec,
    num_workers: int,
    timeout_seconds: float | None,
    retry: RetryPolicy,
    on_result,
    verbose: bool,
) -> list[TaskSuccess | TaskFailure]:
    ctx = mp.get_context("spawn")
    state = _RunState(tasks=list(tasks), retry=retry)
    state.pending.extend((task, 1, 0.0) for task in tasks)
    workers: list[_Worker] = []
    next_id = 0
    init_deaths = 0

    def spawn_worker() -> None:
        nonlocal next_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main,
            args=(next_id, child_conn, init_fn, spec, task_fn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        workers.append(_Worker(id=next_id, process=process, conn=parent_conn))
        add_counter("exec.workers.spawned")
        next_id += 1

    def retire(worker: _Worker, *, kill: bool = False) -> None:
        worker.retired = True
        if kill and worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
        try:
            worker.conn.close()
        except OSError:
            pass

    def finish(outcome: TaskSuccess | TaskFailure) -> None:
        state.outcomes[outcome.key] = outcome
        if on_result is not None:
            on_result(outcome)

    def settle_failure(
        worker: _Worker, task: Task, attempt: int, kind: str, message: str,
        seconds: float, tb: str | None,
    ) -> None:
        """Retry the task or record its final TaskFailure."""
        total = state.spent.get(task.key, 0.0) + seconds
        state.spent[task.key] = total
        if attempt <= retry.max_retries:
            add_counter("exec.tasks.retried")
            if verbose:
                print(f"[exec] {task.key}: attempt {attempt} {kind} ({message}); retrying")
            state.pending.append(
                (task, attempt + 1, time.monotonic() + retry.delay(attempt))
            )
        else:
            add_counter("exec.tasks.failed")
            if verbose:
                print(f"[exec] {task.key}: FAILED ({kind}) after {attempt} attempts")
            finish(
                TaskFailure(
                    key=task.key,
                    kind=kind,
                    message=message,
                    attempts=attempt,
                    seconds=total,
                    worker_id=worker.id,
                    traceback=tb,
                )
            )

    def handle_death(worker: _Worker) -> None:
        """A worker's pipe hit EOF: it crashed (or was killed)."""
        nonlocal init_deaths
        retire(worker)
        exitcode = worker.process.exitcode
        if worker.task is not None:
            add_counter("exec.tasks.crashes")
            settle_failure(
                worker,
                worker.task,
                worker.attempt,
                "crash",
                f"worker {worker.id} died (exit code {exitcode})",
                time.monotonic() - worker.dispatched_at,
                None,
            )
            worker.task = None
            worker.deadline = None
        elif not worker.ready:
            # Died during init without managing to report an init_error
            # (e.g. a segfault while importing).  A couple of these in a
            # row means no worker will ever come up.
            init_deaths += 1
            if init_deaths >= max(2, num_workers) + 1:
                raise WorkerInitError(
                    f"workers keep dying during initialization "
                    f"(last exit code {exitcode})"
                )

    def alive_workers() -> list[_Worker]:
        return [w for w in workers if not w.retired]

    pool_size = min(num_workers, len(tasks))
    for _ in range(pool_size):
        spawn_worker()

    busy_seconds = 0.0
    try:
        while state.remaining > 0:
            now = time.monotonic()
            # keep the pool at strength while useful work remains
            active = alive_workers()
            want = min(pool_size, state.remaining)
            for _ in range(want - len(active)):
                spawn_worker()
            active = alive_workers()

            # dispatch eligible pending tasks to ready, idle workers
            for worker in active:
                if not worker.ready or worker.task is not None:
                    continue
                slot = next(
                    (
                        i
                        for i, (_, _, eligible_at) in enumerate(state.pending)
                        if eligible_at <= now
                    ),
                    None,
                )
                if slot is None:
                    break
                state.pending.rotate(-slot)
                task, attempt, _ = state.pending.popleft()
                state.pending.rotate(slot)
                worker.task = task
                worker.attempt = attempt
                worker.dispatched_at = now
                worker.deadline = (
                    now + timeout_seconds if timeout_seconds is not None else None
                )
                worker.conn.send(("task", task.key, task.payload))
                add_counter("exec.tasks.dispatched")

            # wait for results, deaths, deadlines or backoff expiry
            wake_at = [w.deadline for w in active if w.deadline is not None]
            wake_at.extend(e for (_, _, e) in state.pending if e > now)
            poll = min(
                _MAX_POLL_SECONDS,
                max(0.0, min(wake_at) - now) if wake_at else _MAX_POLL_SECONDS,
            )
            conns = [w.conn for w in active]
            if not conns:
                time.sleep(poll)
                continue
            by_conn = {w.conn: w for w in active}
            for conn in connection_wait(conns, timeout=poll):
                worker = by_conn[conn]
                try:
                    kind, key, body = conn.recv()
                except (EOFError, OSError):
                    handle_death(worker)
                    continue
                if kind == "ready":
                    worker.ready = True
                elif kind == "ok":
                    value, seconds = body
                    busy_seconds += seconds
                    add_counter("exec.workers.busy_seconds", seconds)
                    add_counter("exec.tasks.completed")
                    finish(
                        TaskSuccess(
                            key=key,
                            value=value,
                            attempts=worker.attempt,
                            seconds=seconds,
                            worker_id=worker.id,
                        )
                    )
                    worker.task = None
                    worker.deadline = None
                elif kind == "error":
                    message, tb, seconds = body
                    busy_seconds += seconds
                    add_counter("exec.workers.busy_seconds", seconds)
                    task, attempt = worker.task, worker.attempt
                    worker.task = None
                    worker.deadline = None
                    settle_failure(
                        worker, task, attempt, "exception", message, seconds, tb
                    )
                elif kind == "init_error":
                    message, tb = body
                    raise WorkerInitError(
                        f"worker {worker.id} failed to initialize: {message}\n{tb}"
                    )

            # enforce per-task deadlines
            now = time.monotonic()
            for worker in alive_workers():
                if (
                    worker.task is not None
                    and worker.deadline is not None
                    and now > worker.deadline
                ):
                    add_counter("exec.tasks.timeouts")
                    task, attempt = worker.task, worker.attempt
                    worker.task = None
                    retire(worker, kill=True)
                    settle_failure(
                        worker,
                        task,
                        attempt,
                        "timeout",
                        f"task exceeded {timeout_seconds:.3f}s "
                        f"(worker {worker.id} terminated)",
                        now - worker.dispatched_at,
                        None,
                    )
    finally:
        for worker in alive_workers():
            try:
                worker.conn.send(("stop", None, None))
            except (BrokenPipeError, OSError):
                pass
        for worker in alive_workers():
            retire(worker)

    return [state.outcomes[task.key] for task in tasks]
