"""Terminal and markdown renderings of recorded span trees."""

from __future__ import annotations

from repro.obs.trace import Span, SpanStats

__all__ = ["render_span_tree", "render_span_stats"]


def _format_counters(counters: dict[str, float]) -> str:
    if not counters:
        return ""
    parts = []
    for name, value in sorted(counters.items()):
        if float(value).is_integer():
            parts.append(f"{name}={int(value)}")
        else:
            parts.append(f"{name}={value:.3g}")
    return "  [" + ", ".join(parts) + "]"


def render_span_tree(
    roots: list[Span] | Span,
    markdown: bool = False,
    max_depth: int | None = None,
) -> str:
    """An indented tree of spans with wall/CPU time and counters.

    With ``markdown=True`` the tree is emitted as a fenced code block
    so it pastes cleanly into CI summaries and issues.  ``max_depth``
    truncates the tree (0 = roots only).
    """
    if isinstance(roots, Span):
        roots = [roots]
    lines: list[str] = []

    def visit(node: Span, prefix: str, is_last: bool, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        connector = "" if not prefix and depth == 0 else ("└─ " if is_last else "├─ ")
        flag = "" if node.status == "ok" else f"  !{node.status}"
        lines.append(
            f"{prefix}{connector}{node.name}  "
            f"wall={node.wall_seconds:.3f}s cpu={node.cpu_seconds:.3f}s"
            f"{_format_counters(node.counters)}{flag}"
        )
        child_prefix = prefix + ("" if depth == 0 else ("   " if is_last else "│  "))
        for i, child in enumerate(node.children):
            visit(child, child_prefix, i == len(node.children) - 1, depth + 1)

    for root in roots:
        visit(root, "", True, 0)
    body = "\n".join(lines)
    return f"```\n{body}\n```" if markdown else body


def render_span_stats(
    stats: dict[str, SpanStats], markdown: bool = False
) -> str:
    """Aggregated per-name statistics, sorted by total wall time."""
    ordered = sorted(stats.values(), key=lambda s: s.wall_seconds, reverse=True)
    header = f"{'span':<36} {'count':>6} {'total s':>9} {'mean s':>9} {'cpu s':>9}"
    rule = "-" * len(header)
    rows = [header, rule]
    for entry in ordered:
        rows.append(
            f"{entry.name:<36} {entry.count:>6} {entry.wall_seconds:>9.3f} "
            f"{entry.mean_wall_seconds:>9.4f} {entry.cpu_seconds:>9.3f}"
        )
    body = "\n".join(rows)
    return f"```\n{body}\n```" if markdown else body
