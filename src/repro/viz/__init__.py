"""Rendering explanations for human analysts (DOT export, text views)."""

from repro.viz.dot import cfg_to_dot, explanation_to_dot
from repro.viz.text import render_block_listing, render_importance_bars

__all__ = [
    "explanation_to_dot",
    "cfg_to_dot",
    "render_block_listing",
    "render_importance_bars",
]
