"""Rendering explanations and traces for human analysts."""

from repro.viz.dot import cfg_to_dot, explanation_to_dot
from repro.viz.spans import render_span_stats, render_span_tree
from repro.viz.text import render_block_listing, render_importance_bars

__all__ = [
    "explanation_to_dot",
    "cfg_to_dot",
    "render_block_listing",
    "render_importance_bars",
    "render_span_stats",
    "render_span_tree",
]
