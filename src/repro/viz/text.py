"""Terminal renderings of explanations."""

from __future__ import annotations

from repro.disasm.cfg import CFG
from repro.explain.explanation import Explanation

__all__ = ["render_block_listing", "render_importance_bars"]


def render_block_listing(
    cfg: CFG, explanation: Explanation, top_k: int = 5, max_instructions: int = 6
) -> str:
    """The ``top_k`` most important blocks with their disassembly."""
    lines = []
    for rank, node in enumerate(explanation.node_order[:top_k], start=1):
        block = cfg.blocks[int(node)]
        score = ""
        if explanation.node_scores is not None:
            score = f"  (score {explanation.node_scores[int(node)]:.3f})"
        header = ", ".join(block.labels) if block.labels else f"block {node}"
        lines.append(f"#{rank} {header}{score}")
        for instruction in block.instructions[:max_instructions]:
            lines.append(f"    {instruction}")
        if len(block.instructions) > max_instructions:
            lines.append(f"    ... ({len(block.instructions)} instructions total)")
    return "\n".join(lines)


def render_importance_bars(
    explanation: Explanation, width: int = 40, top_k: int = 15
) -> str:
    """Horizontal bar chart of node importance scores."""
    if explanation.node_scores is None:
        raise ValueError("explanation carries no scores")
    scores = explanation.node_scores
    peak = float(scores.max()) or 1.0
    lines = []
    for node in explanation.node_order[:top_k]:
        value = float(scores[int(node)])
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"block {int(node):4d} |{bar:<{width}s}| {value:.3f}")
    return "\n".join(lines)
