"""Graphviz DOT export of CFGs and explanations.

The paper positions CFGExplainer as a companion to IDA Pro / Ghidra:
an analyst zooms in on the important blocks.  These exporters produce
DOT files where node shading encodes importance and the top-k subgraph
is outlined, ready for ``dot -Tsvg``.
"""

from __future__ import annotations

from repro.disasm.cfg import CFG, EdgeKind
from repro.explain.explanation import Explanation

__all__ = ["cfg_to_dot", "explanation_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _block_label(cfg: CFG, index: int, max_lines: int = 4) -> str:
    block = cfg.blocks[index]
    lines = [f"block {index}"]
    lines.extend(str(i) for i in block.instructions[:max_lines])
    if len(block.instructions) > max_lines:
        lines.append("...")
    return _escape("\\l".join(lines) + "\\l")


def cfg_to_dot(cfg: CFG, name: str = "cfg") -> str:
    """Plain CFG rendering: one record node per basic block."""
    lines = [f'digraph "{_escape(name)}" {{', "  node [shape=box, fontname=monospace];"]
    for block in cfg.blocks:
        lines.append(f'  n{block.index} [label="{_block_label(cfg, block.index)}"];')
    for source, target, kind in cfg.edges:
        style = "dashed" if kind is EdgeKind.CALL else "solid"
        lines.append(f"  n{source} -> n{target} [style={style}];")
    lines.append("}")
    return "\n".join(lines)


def explanation_to_dot(
    cfg: CFG, explanation: Explanation, fraction: float = 0.2, name: str = "explanation"
) -> str:
    """CFG with importance shading and the top-``fraction`` nodes outlined.

    Importance uses the explanation's node ordering (rank-based shading
    works even for explainers that emit no calibrated scores).
    """
    top = set(explanation.top_nodes(fraction).tolist())
    n_real = explanation.graph.n_real
    rank_of = {int(node): rank for rank, node in enumerate(explanation.node_order)}

    lines = [
        f'digraph "{_escape(name)}" {{',
        "  node [shape=box, style=filled, fontname=monospace];",
    ]
    for block in cfg.blocks:
        rank = rank_of.get(block.index, n_real)
        # Most important = darkest; grayscale 0.55..1.0 keeps text legible.
        intensity = 0.55 + 0.45 * (rank / max(n_real - 1, 1))
        color = f"{intensity:.3f} {intensity:.3f} {intensity:.3f}"
        outline = ', color=red, penwidth=3' if block.index in top else ""
        lines.append(
            f'  n{block.index} [label="{_block_label(cfg, block.index)}", '
            f'fillcolor="{color}"{outline}];'
        )
    for source, target, kind in cfg.edges:
        style = "dashed" if kind is EdgeKind.CALL else "solid"
        lines.append(f"  n{source} -> n{target} [style={style}];")
    lines.append("}")
    return "\n".join(lines)
