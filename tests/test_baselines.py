"""Tests for the baseline explainers."""

import numpy as np
import pytest

from repro.baselines import (
    GNNExplainerBaseline,
    GradientExplainer,
    PGExplainerBaseline,
    SubgraphXBaseline,
)
from repro.baselines.gnnexplainer import edge_mass_node_scores
from repro.baselines.subgraphx import shapley_score


class TestGNNExplainer:
    def test_mask_on_edge_support_only(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        explainer = GNNExplainerBaseline(trained_gnn, epochs=10)
        mask = explainer.optimize_mask(graph)
        from repro.gnn import normalized_adjacency

        active = np.zeros(graph.n, dtype=bool)
        active[: graph.n_real] = True
        support = normalized_adjacency(graph.adjacency, active) > 0
        assert (mask[~support] == 0).all()
        assert (mask >= 0).all() and (mask <= 1).all()

    def test_explanation_is_valid(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[1]
        explainer = GNNExplainerBaseline(trained_gnn, epochs=10)
        explanation = explainer.explain(graph)
        assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))
        assert explanation.explainer_name == "GNNExplainer"

    def test_size_regularizer_shrinks_mask(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[2]
        light = GNNExplainerBaseline(trained_gnn, epochs=25, size_weight=0.0)
        heavy = GNNExplainerBaseline(trained_gnn, epochs=25, size_weight=0.5)
        assert heavy.optimize_mask(graph).sum() < light.optimize_mask(graph).sum()

    def test_invalid_epochs_raise(self, trained_gnn):
        with pytest.raises(ValueError):
            GNNExplainerBaseline(trained_gnn, epochs=0)

    def test_edge_mass_scores(self):
        weights = np.zeros((4, 4))
        weights[0, 1] = 0.9
        weights[2, 1] = 0.4
        scores = edge_mass_node_scores(weights, n_real=3)
        np.testing.assert_allclose(scores, [0.9, 1.3, 0.4])


class TestPGExplainer:
    @pytest.fixture(scope="class")
    def fitted(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        explainer = PGExplainerBaseline(trained_gnn, epochs=4, seed=3)
        history = explainer.fit(train_set)
        return explainer, history

    def test_training_loss_finite_and_recorded(self, fitted):
        _, history = fitted
        assert len(history.losses) == 4
        assert np.isfinite(history.final_loss)

    def test_unfitted_explainer_raises(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        explainer = PGExplainerBaseline(trained_gnn)
        with pytest.raises(RuntimeError, match="fit"):
            explainer.explain(test_set.graphs[0])

    def test_explanation_is_valid(self, fitted, small_dataset):
        explainer, _ = fitted
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        explanation = explainer.explain(graph)
        assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))

    def test_global_model_shared_across_graphs(self, fitted, small_dataset):
        """Unlike GNNExplainer, explaining must not mutate the predictor."""
        explainer, _ = fitted
        _, test_set = small_dataset
        before = [p.data.copy() for p in explainer.predictor.parameters()]
        explainer.explain(test_set.graphs[0])
        explainer.explain(test_set.graphs[1])
        after = [p.data for p in explainer.predictor.parameters()]
        for b, a in zip(before, after):
            np.testing.assert_array_equal(b, a)

    def test_deterministic_explanations(self, fitted, small_dataset):
        explainer, _ = fitted
        _, test_set = small_dataset
        graph = test_set.graphs[2]
        order1, _ = explainer.rank_nodes(graph)
        order2, _ = explainer.rank_nodes(graph)
        np.testing.assert_array_equal(order1, order2)


class TestGradient:
    """Vanilla saliency: one forward+backward, the serving fallback rung."""

    def test_explanation_is_valid(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        explanation = GradientExplainer(trained_gnn).explain(graph)
        assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))
        assert explanation.explainer_name == "Gradient"

    def test_scores_finite_and_nonnegative(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[1]
        order, scores = GradientExplainer(trained_gnn).rank_nodes(graph)
        assert scores.shape == (graph.n_real,)
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0)  # gradient L2 norms
        # The ranking is the stable descending sort of the scores.
        np.testing.assert_array_equal(
            scores[order], np.sort(scores)[::-1]
        )

    def test_deterministic(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[2]
        explainer = GradientExplainer(trained_gnn)
        first_order, first_scores = explainer.rank_nodes(graph)
        second_order, second_scores = explainer.rank_nodes(graph)
        np.testing.assert_array_equal(first_order, second_order)
        np.testing.assert_array_equal(first_scores, second_scores)

    def test_does_not_mutate_model(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        before = [p.data.copy() for p in trained_gnn.parameters()]
        GradientExplainer(trained_gnn).explain(graph)
        for b, a in zip(before, trained_gnn.parameters()):
            np.testing.assert_array_equal(b, a.data)


class TestSubgraphX:
    def test_shapley_of_everything_is_high_for_target(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        target = trained_gnn.predict(graph)
        rng = np.random.default_rng(0)
        full = frozenset(range(graph.n_real))
        score = shapley_score(trained_gnn, graph, full, target, rng, samples=4)
        # The whole graph's marginal over the empty coalition must be
        # positive: it contains all the evidence for the prediction.
        assert score > 0

    def test_explanation_is_valid(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[1]
        explainer = SubgraphXBaseline(
            trained_gnn, mcts_iterations=10, shapley_samples=3, seed=1
        )
        explanation = explainer.explain(graph)
        assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))
        assert explanation.explainer_name == "SubgraphX"

    def test_invalid_params_raise(self, trained_gnn):
        with pytest.raises(ValueError):
            SubgraphXBaseline(trained_gnn, mcts_iterations=0)

    def test_deterministic_per_seed(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[2]
        first = SubgraphXBaseline(trained_gnn, mcts_iterations=8, shapley_samples=2, seed=9)
        second = SubgraphXBaseline(trained_gnn, mcts_iterations=8, shapley_samples=2, seed=9)
        np.testing.assert_array_equal(
            first.rank_nodes(graph)[0], second.rank_nodes(graph)[0]
        )

    def test_mcts_explores_tree(self, trained_gnn, small_dataset):
        """More iterations must visit more distinct subgraph states."""
        _, test_set = small_dataset
        graph = test_set.graphs[3]
        explainer = SubgraphXBaseline(
            trained_gnn, mcts_iterations=12, shapley_samples=2, seed=0
        )
        # Instrument via the reward cache: each cached key is a distinct
        # evaluated subgraph.
        import repro.baselines.subgraphx as sx

        original = sx.shapley_score
        seen = set()

        def spy(model, g, kept, target, rng, samples):
            seen.add(kept)
            return original(model, g, kept, target, rng, samples)

        sx.shapley_score = spy
        try:
            explainer.rank_nodes(graph)
        finally:
            sx.shapley_score = original
        assert len(seen) > 3
