"""Edge cases and failure injection across all explainers."""

import numpy as np
import pytest

from repro.acfg import ACFG, ACFGDataset
from repro.baselines import (
    DegreeExplainer,
    GNNExplainerBaseline,
    PGExplainerBaseline,
    RandomExplainer,
    SubgraphXBaseline,
)
from repro.core import CFGExplainer, interpret
from repro.explain import CFExplainer


def edgeless_graph(n=6, n_real=3):
    features = np.zeros((n, 12))
    features[:n_real] = 0.5
    return ACFG(np.zeros((n, n)), features, label=0, family="Bagle", n_real=n_real)


def single_node_graph(n=4):
    features = np.zeros((n, 12))
    features[0] = 1.0
    return ACFG(np.zeros((n, n)), features, label=0, family="Bagle", n_real=1)


@pytest.fixture()
def all_ranking_explainers(trained_gnn):
    return [
        GNNExplainerBaseline(trained_gnn, epochs=3),
        SubgraphXBaseline(trained_gnn, mcts_iterations=3, shapley_samples=2),
        RandomExplainer(trained_gnn),
        DegreeExplainer(trained_gnn),
        CFExplainer(trained_gnn, iterations=5),
    ]


class TestEdgelessGraphs:
    def test_ranking_explainers_handle_no_edges(self, all_ranking_explainers):
        graph = edgeless_graph()
        for explainer in all_ranking_explainers:
            explanation = explainer.explain(graph, step_size=50)
            assert sorted(explanation.node_order.tolist()) == [0, 1, 2], explainer.name

    def test_cfgexplainer_handles_no_edges(self, trained_gnn, trained_theta):
        explanation = interpret(trained_theta, trained_gnn, edgeless_graph())
        assert sorted(explanation.node_order.tolist()) == [0, 1, 2]

    def test_pgexplainer_ranks_edgeless_graph_after_fit(
        self, trained_gnn, small_dataset
    ):
        train_set, _ = small_dataset
        explainer = PGExplainerBaseline(trained_gnn, epochs=1)
        explainer.fit(train_set)
        explanation = explainer.explain(edgeless_graph())
        # No edges -> zero scores everywhere, but still a valid permutation.
        assert sorted(explanation.node_order.tolist()) == [0, 1, 2]


class TestSingleNodeGraphs:
    def test_all_explainers_single_node(self, all_ranking_explainers):
        graph = single_node_graph()
        for explainer in all_ranking_explainers:
            explanation = explainer.explain(graph, step_size=50)
            assert explanation.node_order.tolist() == [0], explainer.name
            for level in explanation.levels:
                assert level.kept_nodes.tolist() == [0]

    def test_cfgexplainer_single_node(self, trained_gnn, trained_theta):
        explanation = interpret(trained_theta, trained_gnn, single_node_graph())
        assert explanation.node_order.tolist() == [0]


class TestZeroRealNodes:
    def test_everything_rejects_empty_graph(
        self, trained_gnn, trained_theta, all_ranking_explainers
    ):
        graph = ACFG(np.zeros((3, 3)), np.zeros((3, 12)), 0, "Bagle", n_real=0)
        with pytest.raises(ValueError):
            interpret(trained_theta, trained_gnn, graph)
        for explainer in all_ranking_explainers:
            with pytest.raises(ValueError):
                explainer.explain(graph)


def disconnected_graph(n=8, n_real=5):
    """Three weak components: chain 0→1, chain 2→3, isolated node 4."""
    adjacency = np.zeros((n, n))
    adjacency[0, 1] = 1.0
    adjacency[2, 3] = 2.0
    features = np.zeros((n, 12))
    features[:n_real] = np.linspace(0.1, 1.0, n_real)[:, None]
    return ACFG(adjacency, features, label=0, family="Bagle", n_real=n_real)


class TestDisconnectedGraphs:
    """Multiple weak components must not crash or corrupt any explainer."""

    def test_ranking_explainers_handle_disconnection(self, all_ranking_explainers):
        graph = disconnected_graph()
        for explainer in all_ranking_explainers:
            explanation = explainer.explain(graph, step_size=50)
            assert sorted(explanation.node_order.tolist()) == list(range(5)), (
                explainer.name
            )
            scores = np.asarray(explanation.node_scores, dtype=float)
            assert np.all(np.isfinite(scores)), explainer.name

    def test_cfgexplainer_handles_disconnection(self, trained_gnn, trained_theta):
        explanation = interpret(trained_theta, trained_gnn, disconnected_graph())
        assert sorted(explanation.node_order.tolist()) == list(range(5))
        assert np.all(np.isfinite(np.asarray(explanation.node_scores, dtype=float)))

    def test_pgexplainer_handles_disconnection(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        explainer = PGExplainerBaseline(trained_gnn, epochs=1)
        explainer.fit(train_set)
        explanation = explainer.explain(disconnected_graph())
        assert sorted(explanation.node_order.tolist()) == list(range(5))

    def test_sanitizer_flags_but_does_not_drop(self):
        from repro.harden import GraphSanitizer

        sanitizer = GraphSanitizer()
        records = sanitizer.check_acfg(disconnected_graph())
        reasons = {r.reason for r in records}
        assert "disconnected" in reasons
        assert not any(sanitizer.is_fatal(r) for r in records)


class TestDatasetEdgeCases:
    def test_dataset_rejects_mixed_padding(self):
        g1 = edgeless_graph(n=6)
        g2 = edgeless_graph(n=8)
        with pytest.raises(ValueError, match="padded size"):
            ACFGDataset([g1, g2])

    def test_dataset_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ACFGDataset([])


class TestExplainerDissentingPredictions:
    def test_explainer_explains_the_prediction_not_the_label(
        self, trained_gnn, trained_theta, small_dataset
    ):
        """Explanations must target the GNN's class, right or wrong."""
        _, test_set = small_dataset
        explainer = CFGExplainer(trained_gnn, trained_theta)
        for graph in test_set.graphs[:6]:
            explanation = explainer.explain(graph, step_size=50)
            assert explanation.predicted_class == trained_gnn.predict(graph)
