"""Tests for the scatter2d and logsumexp tensor ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn.tensor import stack_rows


class TestStackRows:
    def test_stacks_vectors_into_matrix(self):
        rows = [Tensor(np.array([1.0, 2.0])), Tensor(np.array([3.0, 4.0]))]
        out = stack_rows(rows)
        np.testing.assert_array_equal(out.numpy(), [[1.0, 2.0], [3.0, 4.0]])

    def test_gradient_routes_to_each_row(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (stack_rows([a, b]) * Tensor(np.array([[1.0, 0.0], [0.0, 2.0]]))).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 0.0])
        np.testing.assert_array_equal(b.grad, [0.0, 2.0])


class TestScatter2d:
    def test_forward_places_values(self):
        values = Tensor(np.array([1.0, 2.0, 3.0]))
        out = values.scatter2d((3, 3), np.array([0, 1, 2]), np.array([2, 0, 1]))
        expected = np.zeros((3, 3))
        expected[0, 2], expected[1, 0], expected[2, 1] = 1.0, 2.0, 3.0
        np.testing.assert_array_equal(out.numpy(), expected)

    def test_gradient_gathers(self):
        values = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = values.scatter2d((2, 2), np.array([0, 1]), np.array([1, 0]))
        (out * Tensor(np.array([[0.0, 3.0], [5.0, 0.0]]))).sum().backward()
        np.testing.assert_array_equal(values.grad, [3.0, 5.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            Tensor(np.array([1.0])).scatter2d((2, 2), np.array([0, 1]), np.array([0, 1]))

    def test_empty_scatter(self):
        out = Tensor(np.zeros(0)).scatter2d((2, 2), np.zeros(0, int), np.zeros(0, int))
        np.testing.assert_array_equal(out.numpy(), np.zeros((2, 2)))


class TestLogSumExp:
    def test_matches_numpy_reference(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        out = Tensor(x).logsumexp(axis=0).numpy()
        reference = np.log(np.exp(x).sum(axis=0))
        np.testing.assert_allclose(out, reference, atol=1e-10)

    def test_beta_sharpens_toward_max(self):
        x = np.array([[0.0], [1.0], [3.0]])
        soft = Tensor(x).logsumexp(axis=0, beta=1.0).numpy()
        sharp = Tensor(x).logsumexp(axis=0, beta=50.0).numpy()
        assert abs(sharp[0] - 3.0) < abs(soft[0] - 3.0)
        assert sharp[0] >= 3.0  # LSE upper-bounds the max

    def test_numerically_stable_for_large_values(self):
        x = Tensor(np.array([1000.0, 1001.0]))
        out = x.logsumexp(axis=0, beta=1.0).numpy()
        assert np.isfinite(out).all()
        assert out == pytest.approx(1001.0 + np.log(1 + np.exp(-1)), abs=1e-6)

    def test_gradient_is_softmax(self):
        x = Tensor(np.array([0.5, 1.5, -1.0]), requires_grad=True)
        x.logsumexp(axis=0, beta=2.0).backward()
        expected = np.exp(2.0 * x.data) / np.exp(2.0 * x.data).sum()
        np.testing.assert_allclose(x.grad, expected, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), beta=st.floats(0.5, 8.0))
def test_property_lse_bounds_max(seed, beta):
    """max(x) <= LSE_beta(x) <= max(x) + log(n)/beta."""
    rng = np.random.default_rng(seed)
    x = np.asarray(rng.normal(size=6))
    value = float(Tensor(x).logsumexp(axis=0, beta=beta).numpy())
    assert value >= x.max() - 1e-9
    assert value <= x.max() + np.log(len(x)) / beta + 1e-9
