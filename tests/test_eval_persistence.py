"""Tests for pipeline model persistence."""

import json

import numpy as np
import pytest

from repro.eval import ExperimentConfig, run_pipeline
from repro.eval.persistence import (
    MANIFEST_NAME,
    CheckpointError,
    load_models_into,
    save_models,
)
from repro.eval.pipeline import build_untrained_artifacts

TINY = ExperimentConfig(
    samples_per_family=2,
    gnn_hidden=(8, 4),
    gnn_epochs=3,
    explainer_epochs=5,
    gnnexplainer_epochs=2,
    pgexplainer_epochs=1,
    subgraphx_iterations=2,
    subgraphx_shapley_samples=1,
)


@pytest.fixture(scope="module")
def tiny_artifacts():
    return run_pipeline(TINY)


class TestPersistence:
    def test_roundtrip_restores_predictions(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "models")

        fresh = run_pipeline(TINY)
        # Perturb fresh weights so restoration is observable.
        for param in fresh.gnn.parameters():
            param.data += 1.0
        load_models_into(fresh, tmp_path / "models")

        graph = tiny_artifacts.test_set.graphs[0]
        np.testing.assert_allclose(
            fresh.gnn.predict_proba(graph),
            tiny_artifacts.gnn.predict_proba(graph),
            atol=1e-12,
        )

    def test_restores_scaler_and_offline_times(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "m")
        fresh = run_pipeline(TINY)
        fresh.scaler.scale = np.zeros_like(fresh.scaler.scale)
        load_models_into(fresh, tmp_path / "m")
        np.testing.assert_array_equal(
            fresh.scaler.scale, tiny_artifacts.scaler.scale
        )
        assert fresh.offline_training_seconds["CFGExplainer"] > 0

    def test_config_mismatch_raises(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "m")
        other = run_pipeline(
            ExperimentConfig(
                samples_per_family=2,
                gnn_hidden=(6, 4),
                gnn_epochs=2,
                explainer_epochs=3,
                pgexplainer_epochs=1,
                subgraphx_iterations=2,
            )
        )
        with pytest.raises(ValueError, match="GNN shape"):
            load_models_into(other, tmp_path / "m")

    def test_theta_restored(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "m")
        fresh = run_pipeline(TINY)
        load_models_into(fresh, tmp_path / "m")
        original = tiny_artifacts.explainers["CFGExplainer"].theta
        restored = fresh.explainers["CFGExplainer"].theta
        for a, b in zip(original.parameters(), restored.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_gnn_hidden_list_coerced_to_tuple(self):
        config = ExperimentConfig(gnn_hidden=[8, 4])
        assert config.gnn_hidden == (8, 4)
        assert isinstance(config.gnn_hidden, tuple)
        # and equality with the tuple-built config holds (JSON round-trip)
        assert config == ExperimentConfig(gnn_hidden=(8, 4))

    def test_missing_manifest_refuses_without_mutation(
        self, tiny_artifacts, tmp_path
    ):
        save_models(tiny_artifacts, tmp_path / "m")
        (tmp_path / "m" / MANIFEST_NAME).unlink()
        fresh = build_untrained_artifacts(TINY)
        before = [p.data.copy() for p in fresh.gnn.parameters()]
        with pytest.raises(CheckpointError, match="MANIFEST"):
            load_models_into(fresh, tmp_path / "m")
        for param, prior in zip(fresh.gnn.parameters(), before):
            np.testing.assert_array_equal(param.data, prior)

    def test_full_config_validated_not_just_gnn_shape(
        self, tiny_artifacts, tmp_path
    ):
        save_models(tiny_artifacts, tmp_path / "m")
        stored = json.loads((tmp_path / "m" / "config.json").read_text())
        stored["samples_per_family"] = 3  # same architecture, different corpus
        (tmp_path / "m" / "config.json").write_text(json.dumps(stored))
        fresh = build_untrained_artifacts(TINY)
        with pytest.raises(ValueError, match="samples_per_family"):
            load_models_into(fresh, tmp_path / "m")

    def test_execution_fields_may_differ(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "m")
        from dataclasses import replace

        fresh = build_untrained_artifacts(replace(TINY, num_workers=4))
        load_models_into(fresh, tmp_path / "m")  # must not raise

    def test_corrupt_scaler_rejected_before_mutation(
        self, tiny_artifacts, tmp_path
    ):
        save_models(tiny_artifacts, tmp_path / "m")
        scale = np.load(tmp_path / "m" / "scaler.npy")
        np.save(tmp_path / "m" / "scaler.npy", np.zeros_like(scale))
        fresh = build_untrained_artifacts(TINY)
        good_scale = fresh.scaler.scale.copy()
        with pytest.raises(CheckpointError, match="non-positive"):
            load_models_into(fresh, tmp_path / "m")
        np.testing.assert_array_equal(fresh.scaler.scale, good_scale)

    def test_interrupted_save_preserves_previous_checkpoint(
        self, tiny_artifacts, tmp_path, monkeypatch
    ):
        save_models(tiny_artifacts, tmp_path / "m")

        import repro.eval.persistence as persistence

        real_save_module = persistence.save_module
        calls = {"n": 0}

        def dying_save_module(module, path):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise KeyboardInterrupt("killed mid-save")
            real_save_module(module, path)

        monkeypatch.setattr(persistence, "save_module", dying_save_module)
        with pytest.raises(KeyboardInterrupt):
            save_models(tiny_artifacts, tmp_path / "m")
        monkeypatch.setattr(persistence, "save_module", real_save_module)

        # no stray temp dirs, and the prior checkpoint still loads
        stray = [p for p in (tmp_path).iterdir() if p.name.startswith(".m.")]
        assert stray == []
        fresh = build_untrained_artifacts(TINY)
        load_models_into(fresh, tmp_path / "m")
        graph = tiny_artifacts.test_set.graphs[0]
        np.testing.assert_allclose(
            fresh.gnn.predict_proba(graph),
            tiny_artifacts.gnn.predict_proba(graph),
            atol=1e-12,
        )

    def test_embedding_cache_repopulated_after_load(
        self, tiny_artifacts, tmp_path
    ):
        save_models(tiny_artifacts, tmp_path / "m")
        fresh = build_untrained_artifacts(TINY)
        assert len(fresh.embedding_cache) == 0
        load_models_into(fresh, tmp_path / "m")
        expected = len(fresh.train_set) + len(fresh.test_set)
        assert len(fresh.embedding_cache) == expected
        graph = fresh.test_set.graphs[0]
        cached = fresh.embedding_cache.forward(graph)
        np.testing.assert_allclose(
            cached.probs, tiny_artifacts.gnn.predict_proba(graph), atol=1e-12
        )
