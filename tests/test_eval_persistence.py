"""Tests for pipeline model persistence."""

import numpy as np
import pytest

from repro.eval import ExperimentConfig, run_pipeline
from repro.eval.persistence import load_models_into, save_models

TINY = ExperimentConfig(
    samples_per_family=2,
    gnn_hidden=(8, 4),
    gnn_epochs=3,
    explainer_epochs=5,
    gnnexplainer_epochs=2,
    pgexplainer_epochs=1,
    subgraphx_iterations=2,
    subgraphx_shapley_samples=1,
)


@pytest.fixture(scope="module")
def tiny_artifacts():
    return run_pipeline(TINY)


class TestPersistence:
    def test_roundtrip_restores_predictions(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "models")

        fresh = run_pipeline(TINY)
        # Perturb fresh weights so restoration is observable.
        for param in fresh.gnn.parameters():
            param.data += 1.0
        load_models_into(fresh, tmp_path / "models")

        graph = tiny_artifacts.test_set.graphs[0]
        np.testing.assert_allclose(
            fresh.gnn.predict_proba(graph),
            tiny_artifacts.gnn.predict_proba(graph),
            atol=1e-12,
        )

    def test_restores_scaler_and_offline_times(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "m")
        fresh = run_pipeline(TINY)
        fresh.scaler.scale = np.zeros_like(fresh.scaler.scale)
        load_models_into(fresh, tmp_path / "m")
        np.testing.assert_array_equal(
            fresh.scaler.scale, tiny_artifacts.scaler.scale
        )
        assert fresh.offline_training_seconds["CFGExplainer"] > 0

    def test_config_mismatch_raises(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "m")
        other = run_pipeline(
            ExperimentConfig(
                samples_per_family=2,
                gnn_hidden=(6, 4),
                gnn_epochs=2,
                explainer_epochs=3,
                pgexplainer_epochs=1,
                subgraphx_iterations=2,
            )
        )
        with pytest.raises(ValueError, match="GNN shape"):
            load_models_into(other, tmp_path / "m")

    def test_theta_restored(self, tiny_artifacts, tmp_path):
        save_models(tiny_artifacts, tmp_path / "m")
        fresh = run_pipeline(TINY)
        load_models_into(fresh, tmp_path / "m")
        original = tiny_artifacts.explainers["CFGExplainer"].theta
        restored = fresh.explainers["CFGExplainer"].theta
        for a, b in zip(original.parameters(), restored.parameters()):
            np.testing.assert_array_equal(a.data, b.data)
