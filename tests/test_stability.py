"""Explanation-stability benchmark: perturbations, metrics, reporting."""

import json

import numpy as np
import pytest

from repro.acfg import ACFGDataset, FeatureScaler
from repro.baselines import DegreeExplainer
from repro.disasm import build_cfg, parse_program
from repro.eval import stability as stab
from repro.eval.stability import (
    PERTURBATIONS,
    StabilityConfig,
    StabilityRow,
    format_stability_table,
    perturb_edge_dropout,
    perturb_feature_noise,
    perturb_semantic_nop,
    run_stability,
    stability_bench_payload,
    write_stability_bench,
)
from repro.gnn import GCNClassifier
from repro.malgen import generate_corpus
from repro.malgen.corpus import LabeledSample, block_motif_tags


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(2, seed=0, families=("Bagle", "Bifrose"))


@pytest.fixture(scope="module")
def artifacts(corpus):
    """Minimal stand-in for PipelineArtifacts: just what run_stability uses."""
    dataset = ACFGDataset.from_corpus(corpus)
    scaler = FeatureScaler().fit(list(dataset))
    test_set = dataset.scaled(scaler)
    model = GCNClassifier(hidden=(8,), rng=np.random.default_rng(0))
    samples = {sample.program.name: sample for sample in corpus}

    class _Artifacts:
        def __init__(self):
            self.test_set = test_set
            self.scaler = scaler
            self.explainers = {"Degree": DegreeExplainer(model)}

        def sample_for(self, name):
            return samples[name]

    return _Artifacts()


class TestConfig:
    def test_unknown_perturbation_rejected(self):
        with pytest.raises(ValueError, match="unknown perturbations"):
            StabilityConfig(perturbations=("edge_dropout", "bitflip"))

    def test_positive_counts_required(self):
        with pytest.raises(ValueError):
            StabilityConfig(trials=0)
        with pytest.raises(ValueError):
            StabilityConfig(graphs_per_family=0)

    def test_top_fraction_bounds(self):
        with pytest.raises(ValueError, match="top_fraction"):
            StabilityConfig(top_fraction=0.0)
        with pytest.raises(ValueError, match="top_fraction"):
            StabilityConfig(top_fraction=1.5)


class TestEdgeDropout:
    def test_edges_only_removed_never_added(self, artifacts):
        graph = artifacts.test_set[0]
        rng = np.random.default_rng(0)
        variant = perturb_edge_dropout(graph, rng, rate=0.5)
        assert variant.n == graph.n and variant.n_real == graph.n_real
        added = (variant.adjacency != 0) & (graph.adjacency == 0)
        assert not added.any()
        assert (variant.adjacency != 0).sum() <= (graph.adjacency != 0).sum()

    def test_at_least_one_edge_survives(self, artifacts):
        graph = artifacts.test_set[0]
        variant = perturb_edge_dropout(graph, np.random.default_rng(0), rate=1.0)
        assert (variant.adjacency != 0).sum() == 1

    def test_input_graph_not_mutated(self, artifacts):
        graph = artifacts.test_set[0]
        before = graph.adjacency.copy()
        perturb_edge_dropout(graph, np.random.default_rng(0), rate=1.0)
        assert np.array_equal(graph.adjacency, before)


class TestFeatureNoise:
    def test_features_stay_nonnegative_and_padding_zero(self, artifacts):
        graph = artifacts.test_set[0]
        rng = np.random.default_rng(0)
        variant = perturb_feature_noise(graph, rng, scale=5.0)
        assert np.all(variant.features >= 0)
        assert np.array_equal(
            variant.features[graph.n_real :], graph.features[graph.n_real :]
        )
        assert np.array_equal(variant.adjacency, graph.adjacency)

    def test_noise_actually_perturbs(self, artifacts):
        graph = artifacts.test_set[0]
        variant = perturb_feature_noise(graph, np.random.default_rng(0), scale=0.1)
        assert not np.array_equal(
            variant.features[: graph.n_real], graph.features[: graph.n_real]
        )


class TestSemanticNop:
    def test_block_count_and_labels_preserved(self, corpus):
        sample = corpus[0]
        rng = np.random.default_rng(0)
        perturbed = perturb_semantic_nop(sample, rng, insertions=3)
        assert perturbed is not None
        assert perturbed.cfg.node_count == sample.cfg.node_count
        assert (
            len(perturbed.program.instructions)
            == len(sample.program.instructions) + 3
        )
        # Every label must still point at the same-indexed block start.
        assert set(perturbed.program.labels) == set(sample.program.labels)

    def test_no_insertion_point_returns_none(self):
        program = parse_program("entry:\nret", name="tiny")
        sample = LabeledSample(
            program=program,
            cfg=build_cfg(program),
            family="Bagle",
            label=0,
            motif_spans=[],
            block_tags=block_motif_tags(build_cfg(program), []),
        )
        assert perturb_semantic_nop(sample, np.random.default_rng(0), 1) is None

    def test_deterministic_under_seed(self, corpus):
        sample = corpus[0]
        a = perturb_semantic_nop(sample, np.random.default_rng(7), insertions=2)
        b = perturb_semantic_nop(sample, np.random.default_rng(7), insertions=2)
        assert a.program.to_text() == b.program.to_text()


class TestMetrics:
    def test_spearman_perfect_and_inverted(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert stab._spearman(a, a * 10) == pytest.approx(1.0)
        assert stab._spearman(a, -a) == pytest.approx(-1.0)

    def test_spearman_with_ties(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([1.0, 1.0, 2.0, 3.0])
        assert stab._spearman(a, b) == pytest.approx(1.0)

    def test_spearman_degenerate_vectors(self):
        constant = np.zeros(4)
        varied = np.array([1.0, 2.0, 3.0, 4.0])
        assert stab._spearman(constant, constant) == 1.0
        assert stab._spearman(constant, varied) == 0.0

    def test_spearman_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            stab._spearman(np.zeros(3), np.zeros(4))

    def test_jaccard_top_k(self):
        a = np.array([0, 1, 2, 3])
        b = np.array([3, 2, 1, 0])
        assert stab._jaccard_top_k(a, a, k=2) == 1.0
        assert stab._jaccard_top_k(a, b, k=2) == 0.0
        assert stab._jaccard_top_k(a, np.array([1, 3, 0, 2]), k=2) == pytest.approx(
            1 / 3
        )

    def test_average_ranks_ties(self):
        ranks = stab._average_ranks(np.array([10.0, 10.0, 5.0]))
        assert ranks.tolist() == [1.5, 1.5, 0.0]


class TestRunStability:
    def test_rows_cover_every_cell_and_are_deterministic(self, artifacts):
        config = StabilityConfig(trials=2, seed=0)
        rows = run_stability(artifacts, config)
        again = run_stability(artifacts, config)
        assert rows == again
        families = {g.family for g in artifacts.test_set}
        cells = {(r.explainer, r.family, r.perturbation) for r in rows}
        assert cells == {
            ("Degree", fam, p) for fam in families for p in PERTURBATIONS
        }
        for row in rows:
            assert row.trials + row.skipped == 2

    def test_degree_explainer_invariants(self, artifacts):
        """Degree only sees adjacency: feature noise cannot move it, and
        semantic NOPs never change CFG edges."""
        rows = run_stability(artifacts, StabilityConfig(trials=2, seed=0))
        for row in rows:
            if row.perturbation in ("feature_noise", "semantic_nop") and row.trials:
                assert row.jaccard == pytest.approx(1.0), row
                assert row.spearman == pytest.approx(1.0), row

    def test_bench_payload_and_writer(self, artifacts, tmp_path):
        rows = run_stability(artifacts, StabilityConfig(trials=2, seed=0))
        payload = stability_bench_payload(rows)
        assert set(payload) == {"Degree"}
        assert set(payload["Degree"]) == set(PERTURBATIONS)
        for cell in payload["Degree"].values():
            assert set(cell) == {"jaccard", "spearman", "trials"}
        path = write_stability_bench(rows, tmp_path / "BENCH_stability.json")
        assert json.loads(path.read_text()) == payload

    def test_format_table(self, artifacts):
        rows = run_stability(artifacts, StabilityConfig(trials=1, seed=0))
        table = format_stability_table(rows)
        assert "Jaccard@k" in table and "Degree" in table


class TestBenchGatePolicies:
    def test_stability_metrics_gated_absolutely(self):
        from repro.tools.bench_compare import DEFAULT_POLICIES

        modes = {
            p.pattern: p.mode for p in DEFAULT_POLICIES
            if p.pattern in ("*.jaccard", "*.spearman")
        }
        assert modes == {"*.jaccard": "absolute", "*.spearman": "absolute"}

    def test_absolute_drop_triggers_regression(self):
        from repro.tools.bench_compare import compare_benchmarks

        baseline = {"Degree": {"edge_dropout": {"jaccard": 0.9, "trials": 4}}}
        dropped = {"Degree": {"edge_dropout": {"jaccard": 0.6, "trials": 4}}}
        verdicts = {
            d.path: d.status for d in compare_benchmarks(baseline, dropped)
        }
        # 0.9 → 0.6 is a 0.3 absolute drop, past the 0.15 gate; trial
        # counts are informational, never gated.
        assert verdicts["Degree.edge_dropout.jaccard"] == "regressed"
        assert verdicts["Degree.edge_dropout.trials"] == "info"
        ok = {"Degree": {"edge_dropout": {"jaccard": 0.85, "trials": 4}}}
        verdicts = {d.path: d.status for d in compare_benchmarks(baseline, ok)}
        assert verdicts["Degree.edge_dropout.jaccard"] == "ok"

    def test_relative_gate_unaffected_by_absolute_mode(self):
        from repro.tools.bench_compare import compare_benchmarks

        baseline = {"training": {"graphs_per_sec": 100.0}}
        slower = {"training": {"graphs_per_sec": 50.0}}
        verdicts = {
            d.path: d.status for d in compare_benchmarks(baseline, slower)
        }
        assert verdicts["training.graphs_per_sec"] == "regressed"


class TestStabilityRowAggregation:
    def test_empty_cell_reports_nan(self):
        row = StabilityRow(
            explainer="X", family="F", perturbation="semantic_nop",
            jaccard=float("nan"), spearman=float("nan"), trials=0, skipped=2,
        )
        table = format_stability_table([row])
        assert "nan" in table
        payload = stability_bench_payload([row])
        assert np.isnan(payload["X"]["semantic_nop"]["jaccard"])
