"""Tests for sharded sweep execution: parallel parity, degradation, resume."""

import copy

import numpy as np
import pytest

from repro.eval import ExperimentConfig, run_pipeline
from repro.exec import RetryPolicy, run_sweeps, run_timings

TINY = ExperimentConfig(
    samples_per_family=2,
    gnn_hidden=(8, 4),
    gnn_epochs=3,
    explainer_epochs=5,
    gnnexplainer_epochs=2,
    pgexplainer_epochs=1,
    subgraphx_iterations=2,
    subgraphx_shapley_samples=1,
    cfexplainer_iterations=8,
    step_size=20,
)

NO_RETRY = RetryPolicy(max_retries=0)


@pytest.fixture(scope="module")
def artifacts():
    return run_pipeline(TINY)


@pytest.fixture(scope="module")
def serial_result(artifacts):
    return run_sweeps(artifacts, num_workers=1)


def assert_sweeps_identical(a, b):
    assert set(a) == set(b)
    for family in a:
        assert set(a[family]) == set(b[family])
        for name in a[family]:
            sa, sb = a[family][name], b[family][name]
            np.testing.assert_array_equal(sa.fractions, sb.fractions)
            np.testing.assert_allclose(sa.accuracies, sb.accuracies, atol=1e-8)
            assert len(sa.explanations) == len(sb.explanations)
            for ea, eb in zip(sa.explanations, sb.explanations):
                np.testing.assert_array_equal(ea.node_order, eb.node_order)


class _ExplodingExplainer:
    name = "Exploding"

    def explain(self, graph, step_size=10):
        raise RuntimeError("this explainer always fails")


class TestSerial:
    def test_matches_legacy_loop(self, artifacts, serial_result):
        from repro.eval.sweep import sweep_all_families

        legacy = sweep_all_families(
            artifacts.gnn,
            artifacts.explainers,
            artifacts.test_set,
            step_size=TINY.step_size,
        )
        assert not serial_result.failures
        assert_sweeps_identical(serial_result.sweeps, legacy)

    def test_failed_shard_degrades(self, artifacts):
        broken = copy.copy(artifacts)
        broken.explainers = dict(artifacts.explainers)
        broken.explainers["Exploding"] = _ExplodingExplainer()
        result = run_sweeps(broken, num_workers=1, retry=NO_RETRY)
        families = list(broken.test_set.families)
        assert len(result.failures) == len(families)
        assert all(f.kind == "exception" for f in result.failures)
        # every other explainer still produced its full grid
        for family in result.sweeps:
            assert set(result.sweeps[family]) == set(artifacts.explainers)


class TestParallel:
    def test_identical_to_serial(self, artifacts, serial_result):
        parallel = run_sweeps(artifacts, num_workers=2)
        assert not parallel.failures
        assert_sweeps_identical(serial_result.sweeps, parallel.sweeps)


class TestShardResume:
    def test_interrupted_sweep_resumes_identically(
        self, artifacts, serial_result, tmp_path
    ):
        run_dir = tmp_path / "run"
        seen = []

        def interrupt_after_two(key, sweep):
            seen.append(key)
            if len(seen) == 2:
                raise KeyboardInterrupt("simulated kill")

        with pytest.raises(KeyboardInterrupt):
            run_sweeps(
                artifacts,
                num_workers=1,
                run_dir=run_dir,
                on_shard_complete=interrupt_after_two,
            )
        persisted = sorted(p.name for p in (run_dir / "sweeps").glob("*.pkl"))
        assert len(persisted) == 2

        resumed = run_sweeps(artifacts, num_workers=1, run_dir=run_dir)
        assert resumed.restored == 2
        assert not resumed.failures
        assert_sweeps_identical(resumed.sweeps, serial_result.sweeps)

    def test_corrupt_shard_recomputed(self, artifacts, serial_result, tmp_path):
        run_dir = tmp_path / "run"
        (run_dir / "sweeps").mkdir(parents=True)
        family = artifacts.test_set.families[0]
        (run_dir / "sweeps" / f"{family}--CFGExplainer.pkl").write_bytes(
            b"not a pickle"
        )
        result = run_sweeps(artifacts, num_workers=1, run_dir=run_dir)
        assert result.restored == 0
        assert_sweeps_identical(result.sweeps, serial_result.sweeps)


class TestTimings:
    def test_serial_timings_cover_every_explainer(self, artifacts):
        timings, failures = run_timings(artifacts, graph_count=2)
        assert not failures
        assert [t.explainer_name for t in timings] == list(artifacts.explainers)
        assert all(t.samples == 2 and t.mean_seconds > 0 for t in timings)
