"""Tests for CFGExplainer: the Θ model, Algorithm 1, and Algorithm 2."""

import numpy as np
import pytest

from repro.core import (
    CFGExplainer,
    CFGExplainerModel,
    interpret,
    train_cfgexplainer,
)
from repro.core.model import NodeScorer, SurrogateClassifier
from repro.explain.explanation import kept_count
from repro.nn import Tensor


class TestThetaModel:
    def test_scorer_outputs_in_unit_interval(self):
        scorer = NodeScorer(16, rng=np.random.default_rng(0))
        z = Tensor(np.random.default_rng(1).normal(size=(20, 16)))
        psi = scorer(z)
        assert psi.shape == (20, 1)
        assert (psi.numpy() >= 0).all() and (psi.numpy() <= 1).all()

    def test_surrogate_probabilities_sum_to_one(self):
        surrogate = SurrogateClassifier(16, 12, rng=np.random.default_rng(0))
        z = Tensor(np.abs(np.random.default_rng(1).normal(size=(20, 16))))
        probs = surrogate(z, np.ones(20, dtype=bool))
        assert probs.shape == (12,)
        np.testing.assert_allclose(probs.numpy().sum(), 1.0, atol=1e-9)

    def test_surrogate_ignores_masked_nodes(self):
        surrogate = SurrogateClassifier(8, 5, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        z_real = np.abs(rng.normal(size=(4, 8)))
        z_padded = np.vstack([z_real, rng.normal(size=(3, 8))])
        mask_full = np.ones(4, dtype=bool)
        mask_padded = np.array([True] * 4 + [False] * 3)
        probs_real = surrogate(Tensor(z_real), mask_full).numpy()
        probs_padded = surrogate(Tensor(z_padded), mask_padded).numpy()
        np.testing.assert_allclose(probs_real, probs_padded, atol=1e-12)

    def test_forward_weighted_connection(self):
        """Zero scores must zero the surrogate's node contributions."""
        model = CFGExplainerModel(8, 5, rng=np.random.default_rng(0))
        z = np.abs(np.random.default_rng(1).normal(size=(6, 8)))
        mask = np.ones(6, dtype=bool)
        psi, probs = model.forward(Tensor(z), mask)
        assert psi.shape == (6, 1)
        # Force all scores to zero by feeding zero embeddings: weighted
        # embeddings are zero regardless of psi, so Y is score-independent.
        _, probs_zero = model.forward(Tensor(np.zeros((6, 8))), mask)
        np.testing.assert_allclose(probs_zero.numpy().sum(), 1.0, atol=1e-9)

    def test_gradients_flow_to_both_components(self):
        model = CFGExplainerModel(8, 5, rng=np.random.default_rng(0))
        z = Tensor(np.abs(np.random.default_rng(1).normal(size=(6, 8))))
        _, probs = model.forward(z, np.ones(6, dtype=bool))
        loss = -(probs[0:1].log(eps=1e-20).sum())
        loss.backward()
        scorer_grads = [p.grad for p in model.scorer.parameters()]
        surrogate_grads = [p.grad for p in model.surrogate.parameters()]
        assert all(g is not None for g in scorer_grads)
        assert all(g is not None for g in surrogate_grads)
        assert any(np.abs(g).sum() > 0 for g in scorer_grads)

    def test_node_scores_real_only(self):
        model = CFGExplainerModel(8, 5, rng=np.random.default_rng(0))
        z = Tensor(np.random.default_rng(2).normal(size=(10, 8)))
        scores = model.node_scores(z, n_real=6)
        assert scores.shape == (6,)


class TestAlgorithm1:
    def test_loss_decreases(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        theta = CFGExplainerModel(
            trained_gnn.embedding_size, 12, rng=np.random.default_rng(5)
        )
        history = train_cfgexplainer(
            theta, trained_gnn, train_set, num_epochs=40, minibatch_size=16, seed=0
        )
        early = np.mean(history.losses[:5])
        late = np.mean(history.losses[-5:])
        assert late < early

    def test_surrogate_agreement_reported(self, trained_theta):
        # conftest trains theta for 80 epochs; agreement must beat chance.
        pass  # existence checked via fixture; agreement checked below

    def test_surrogate_agrees_with_gnn(self, trained_gnn, small_dataset, trained_theta):
        from repro.core.training import precompute_embeddings, _surrogate_agreement

        train_set, _ = small_dataset
        cached = precompute_embeddings(trained_gnn, train_set)
        agreement = _surrogate_agreement(trained_theta, cached)
        assert agreement > 0.5

    def test_embedding_size_mismatch_raises(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        theta = CFGExplainerModel(trained_gnn.embedding_size + 1, 12)
        with pytest.raises(ValueError, match="embedding"):
            train_cfgexplainer(theta, trained_gnn, train_set, num_epochs=1)

    def test_invalid_epochs_raise(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        theta = CFGExplainerModel(trained_gnn.embedding_size, 12)
        with pytest.raises(ValueError):
            train_cfgexplainer(theta, trained_gnn, train_set, num_epochs=0)


class TestAlgorithm2:
    @pytest.fixture()
    def explained(self, trained_gnn, trained_theta, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        return graph, interpret(trained_theta, trained_gnn, graph, step_size=10)

    def test_node_order_is_permutation(self, explained):
        graph, explanation = explained
        assert sorted(explanation.node_order.tolist()) == list(range(graph.n_real))

    def test_ladder_has_all_levels(self, explained):
        _, explanation = explained
        assert explanation.fractions == [i / 10 for i in range(1, 11)]

    def test_ladder_nested_and_sized(self, explained):
        graph, explanation = explained
        previous = set()
        for level in explanation.levels:
            kept = set(level.kept_nodes.tolist())
            assert previous <= kept
            expected = kept_count(level.fraction, graph.n_real)
            assert len(kept) == expected
            previous = kept

    def test_snapshot_matches_kept_nodes(self, explained):
        """Each rung's adjacency must have edges only among kept nodes."""
        _, explanation = explained
        for level in explanation.levels:
            adjacency = level.adjacency
            rows_with_edges = set(np.nonzero(adjacency.sum(axis=1))[0].tolist())
            cols_with_edges = set(np.nonzero(adjacency.sum(axis=0))[0].tolist())
            kept = set(level.kept_nodes.tolist())
            assert rows_with_edges <= kept
            assert cols_with_edges <= kept

    def test_full_graph_rung_is_original(self, explained):
        graph, explanation = explained
        np.testing.assert_array_equal(
            explanation.levels[-1].adjacency, graph.adjacency
        )

    def test_scores_recorded_for_real_nodes(self, explained):
        graph, explanation = explained
        assert explanation.node_scores is not None
        assert explanation.node_scores.shape == (graph.n_real,)
        assert (explanation.node_scores >= 0).all()
        assert (explanation.node_scores <= 1).all()

    def test_step_size_25(self, trained_gnn, trained_theta, small_dataset):
        _, test_set = small_dataset
        explanation = interpret(
            trained_theta, trained_gnn, test_set.graphs[1], step_size=25
        )
        assert explanation.fractions == [0.25, 0.5, 0.75, 1.0]

    def test_explainer_class_wraps_interpret(self, trained_gnn, trained_theta, small_dataset):
        _, test_set = small_dataset
        explainer = CFGExplainer(trained_gnn, trained_theta)
        explanation = explainer.explain(test_set.graphs[2], step_size=20)
        assert explanation.explainer_name == "CFGExplainer"
        assert len(explanation.levels) == 5

    def test_deterministic(self, trained_gnn, trained_theta, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[3]
        first = interpret(trained_theta, trained_gnn, graph)
        second = interpret(trained_theta, trained_gnn, graph)
        np.testing.assert_array_equal(first.node_order, second.node_order)

    def test_tiny_graph_single_node(self, trained_gnn, trained_theta):
        from repro.acfg import ACFG

        graph = ACFG(
            np.zeros((4, 4)),
            np.ones((4, 12)) * 0.5,
            label=0,
            family="Bagle",
            n_real=1,
        )
        explanation = interpret(trained_theta, trained_gnn, graph, step_size=50)
        assert explanation.node_order.tolist() == [0]
        assert all(level.kept_nodes.tolist() == [0] for level in explanation.levels)
