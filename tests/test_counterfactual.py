"""CFExplainer counterfactual search, CFF metrics and keep-count fixes."""

import numpy as np
import pytest

from repro.acfg import ACFG
from repro.explain import (
    CFExplainer,
    CounterfactualResult,
    edit_size,
    kept_count,
    necessity,
    sufficiency,
)
from repro.explain.explanation import Explanation, SubgraphLevel
from repro.explain.metrics import fidelity_plus_acc, sweep_accuracy_curve


def edgeless_graph(n=6, n_real=3):
    features = np.zeros((n, 12))
    features[:n_real] = 0.5
    return ACFG(np.zeros((n, n)), features, label=0, family="Bagle", n_real=n_real)


def single_node_graph(n=4):
    features = np.zeros((n, 12))
    features[0] = 1.0
    return ACFG(np.zeros((n, n)), features, label=0, family="Bagle", n_real=1)


def disconnected_graph(n=8, n_real=5):
    """Three weak components: chain 0→1, chain 2→3, isolated node 4."""
    adjacency = np.zeros((n, n))
    adjacency[0, 1] = 1.0
    adjacency[2, 3] = 2.0
    features = np.zeros((n, 12))
    features[:n_real] = np.linspace(0.1, 1.0, n_real)[:, None]
    return ACFG(adjacency, features, label=0, family="Bagle", n_real=n_real)


# ----------------------------------------------------------------------
# the counterfactual search
# ----------------------------------------------------------------------
class TestCounterfactualSearch:
    def test_flips_at_least_90_percent_of_eval_split(
        self, trained_gnn, small_dataset
    ):
        """The acceptance bar: ≥90% prediction flips at default budget,
        verified honestly on the actually-edited adjacency."""
        _, test_set = small_dataset
        explainer = CFExplainer(trained_gnn)
        results = [explainer.counterfactual(g) for g in test_set.graphs]
        flipped = [r for r in results if r.flipped]
        assert len(flipped) / len(results) >= 0.9

        for graph, result in zip(test_set.graphs, results):
            assert isinstance(result, CounterfactualResult)
            assert result.original_class == trained_gnn.predict(graph)
            if not result.flipped:
                continue
            assert result.counterfactual_class != result.original_class
            assert result.edit_size >= 1
            edited = graph.adjacency.copy()
            for i, j in result.deleted_edges:
                assert 0 <= i < j < graph.n_real
                edited[i, j] = 0.0
                edited[j, i] = 0.0
            rebuilt = ACFG(
                edited,
                graph.features.copy(),
                label=graph.label,
                family=graph.family,
                n_real=graph.n_real,
            )
            assert trained_gnn.predict(rebuilt) == result.counterfactual_class

    def test_deterministic_across_calls(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        explainer = CFExplainer(trained_gnn)
        first = explainer.counterfactual(graph)
        second = explainer.counterfactual(graph)
        assert first.deleted_edges == second.deleted_edges
        assert first.flipped == second.flipped
        np.testing.assert_array_equal(first.node_scores, second.node_scores)

    def test_ranking_matches_deletion_scores(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        explainer = CFExplainer(trained_gnn, iterations=10)
        explanation = explainer.explain(test_set.graphs[0], step_size=20)
        scores = np.asarray(explanation.node_scores, dtype=float)
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0.0)
        ranked = scores[explanation.node_order]
        assert np.all(np.diff(ranked) <= 1e-12)


class TestCounterfactualFailureModes:
    def test_edgeless_graph_degrades_without_raising(self, trained_gnn):
        result = CFExplainer(trained_gnn).counterfactual(edgeless_graph())
        assert isinstance(result, CounterfactualResult)
        assert result.flipped is False
        assert result.counterfactual_class is None
        assert result.deleted_edges == ()
        assert result.edit_size == 0
        assert result.iterations_run == 0
        np.testing.assert_array_equal(result.node_scores, np.zeros(3))

    def test_single_node_graph_degrades(self, trained_gnn):
        result = CFExplainer(trained_gnn).counterfactual(single_node_graph())
        assert result.flipped is False
        assert result.node_scores.shape == (1,)

    def test_tiny_budget_returns_typed_result(self, trained_gnn, small_dataset):
        """An exhausted budget is a degraded result, never an exception."""
        _, test_set = small_dataset
        explainer = CFExplainer(trained_gnn, iterations=1, lr=0.0)
        for graph in test_set.graphs[:3]:
            result = explainer.counterfactual(graph)
            assert isinstance(result, CounterfactualResult)
            assert result.iterations_run == 1
            if not result.flipped:
                assert result.counterfactual_class is None
                assert result.deleted_edges == ()

    def test_disconnected_graph(self, trained_gnn):
        graph = disconnected_graph()
        explanation = CFExplainer(trained_gnn, iterations=5).explain(
            graph, step_size=50
        )
        assert sorted(explanation.node_order.tolist()) == list(range(5))
        assert np.all(np.isfinite(np.asarray(explanation.node_scores)))

    def test_empty_graph_rejected(self, trained_gnn):
        graph = ACFG(np.zeros((3, 3)), np.zeros((3, 12)), 0, "Bagle", n_real=0)
        with pytest.raises(ValueError):
            CFExplainer(trained_gnn).counterfactual(graph)

    def test_invalid_hyperparameters_rejected(self, trained_gnn):
        with pytest.raises(ValueError):
            CFExplainer(trained_gnn, iterations=0)
        with pytest.raises(ValueError):
            CFExplainer(trained_gnn, tau=0.0)


# ----------------------------------------------------------------------
# kept_count — the one keep-count formula
# ----------------------------------------------------------------------
class TestKeptCount:
    def test_half_up_not_bankers(self):
        # round() would give 2 for both of these (banker's rounding).
        assert kept_count(0.1, 25) == 3
        assert kept_count(0.5, 5) == 3

    def test_float_representation_of_half(self):
        # 0.3 * 5 == 1.4999999999999998: the epsilon must rescue it.
        assert kept_count(0.3, 5) == 2

    def test_exact_and_boundary_values(self):
        assert kept_count(0.2, 25) == 5
        assert kept_count(1.0, 7) == 7
        assert kept_count(0.01, 5) == 1  # clamps up to one node
        assert kept_count(0.999, 3) == 3  # clamps down to n

    def test_validation(self):
        with pytest.raises(ValueError):
            kept_count(0.0, 5)
        with pytest.raises(ValueError):
            kept_count(1.5, 5)
        with pytest.raises(ValueError):
            kept_count(0.2, 0)

    def test_every_ladder_site_agrees(self, trained_gnn, small_dataset):
        """top_nodes and the ladder rungs must use the same counts."""
        _, test_set = small_dataset
        explainer = CFExplainer(trained_gnn, iterations=2)
        explanation = explainer.explain(test_set.graphs[0], step_size=20)
        for level in explanation.levels:
            expected = kept_count(level.fraction, explanation.graph.n_real)
            assert level.kept_nodes.size == expected
            assert (
                explanation.top_nodes(level.fraction).size == expected
            )


# ----------------------------------------------------------------------
# ladder-mismatch guard + fidelity denominator
# ----------------------------------------------------------------------
def _explanation_with_fractions(graph, fractions):
    order = np.arange(graph.n_real)
    levels = [
        SubgraphLevel(
            fraction=f,
            kept_nodes=order[: kept_count(f, graph.n_real)],
            adjacency=graph.adjacency.copy(),
        )
        for f in fractions
    ]
    return Explanation(
        graph=graph,
        explainer_name="synthetic",
        predicted_class=0,
        node_order=order,
        levels=levels,
    )


class TestLadderGuard:
    def test_float_drift_between_lifted_and_unlifted_accepted(
        self, trained_gnn, small_dataset
    ):
        """Lifted explanations rebuild fractions with float drift
        (0.1 + 0.2 != 0.3 exactly); the guard must compare canonically."""
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        exact = _explanation_with_fractions(graph, [0.1, 0.2, 0.3])
        drifted = _explanation_with_fractions(graph, [0.1, 0.2, 0.1 + 0.2])
        assert drifted.fractions != exact.fractions  # the old guard's trap
        fractions, accuracies = sweep_accuracy_curve(
            trained_gnn, [exact, drifted]
        )
        assert fractions.shape == accuracies.shape == (3,)

    def test_true_mismatch_still_rejected(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        a = _explanation_with_fractions(graph, [0.1, 0.2])
        b = _explanation_with_fractions(graph, [0.1, 0.3])
        with pytest.raises(ValueError, match="mismatched ladder"):
            sweep_accuracy_curve(trained_gnn, [a, b])


class TestFidelityPlusDenominator:
    def test_fully_kept_explanation_scores_removal_as_incorrect(
        self, trained_gnn, small_dataset
    ):
        """At fraction=1.0 the complement is empty: the explanation must
        stay in the denominator with removal counted incorrect, so
        fidelity+ equals the full-graph accuracy exactly."""
        _, test_set = small_dataset
        graph = test_set.graphs[0]
        explanation = _explanation_with_fractions(graph, [1.0])
        full = float(trained_gnn.predict(graph) == graph.label)
        assert fidelity_plus_acc(
            trained_gnn, [explanation], 1.0
        ) == pytest.approx(full)


# ----------------------------------------------------------------------
# sufficiency / necessity / edit size
# ----------------------------------------------------------------------
class TestCounterfactualMetrics:
    @pytest.fixture()
    def explanations(self, trained_gnn, small_dataset):
        _, test_set = small_dataset
        explainer = CFExplainer(trained_gnn, iterations=10)
        return [
            explainer.explain(graph, step_size=20)
            for graph in test_set.graphs[:6]
        ]

    def test_bounded_rates(self, trained_gnn, explanations):
        for value in (
            sufficiency(trained_gnn, explanations, 0.2),
            necessity(trained_gnn, explanations, 0.2),
            edit_size(explanations, 0.2),
        ):
            assert 0.0 <= value <= 1.0

    def test_full_keep_is_sufficient_and_necessary(
        self, trained_gnn, explanations
    ):
        # Keeping every node reproduces the prediction (sufficiency 1)
        # and leaves an empty residual, which counts as lost.
        assert sufficiency(trained_gnn, explanations, 1.0) == 1.0
        assert necessity(trained_gnn, explanations, 1.0) == 1.0
        assert edit_size(explanations, 1.0) == pytest.approx(1.0)

    def test_edgeless_graph_contributes_zero_edit(self):
        explanation = _explanation_with_fractions(edgeless_graph(), [0.5])
        assert edit_size([explanation], 0.5) == 0.0

    def test_empty_list_rejected(self, trained_gnn):
        with pytest.raises(ValueError):
            sufficiency(trained_gnn, [], 0.2)
        with pytest.raises(ValueError):
            necessity(trained_gnn, [], 0.2)
        with pytest.raises(ValueError):
            edit_size([], 0.2)


# ----------------------------------------------------------------------
# the eval-report counterfactual table
# ----------------------------------------------------------------------
class TestCounterfactualTable:
    def test_build_and_format(self, trained_gnn, small_dataset):
        from repro.eval.sweep import FamilySweep
        from repro.eval.tables import (
            build_counterfactual_table,
            format_counterfactual_table,
        )

        _, test_set = small_dataset
        graph = test_set.graphs[0]
        explanation = _explanation_with_fractions(graph, [0.2, 0.4])
        sweeps = {
            graph.family: {
                "CFExplainer": FamilySweep(
                    family=graph.family,
                    explainer_name="CFExplainer",
                    fractions=np.array([0.2, 0.4]),
                    accuracies=np.array([1.0, 1.0]),
                    explanations=[explanation],
                )
            }
        }
        rows = build_counterfactual_table(trained_gnn, sweeps, fraction=0.2)
        assert [r.explainer for r in rows] == ["CFExplainer"]
        assert 0.0 <= rows[0].sufficiency <= 1.0
        assert 0.0 <= rows[0].necessity <= 1.0
        assert 0.0 <= rows[0].edit_size <= 1.0
        text = format_counterfactual_table(rows, fraction=0.2)
        assert "CFExplainer" in text
        assert "Sufficiency@20%" in text


# ----------------------------------------------------------------------
# the bench payload the robustness drill commits
# ----------------------------------------------------------------------
class TestCounterfactualBenchPayload:
    def test_payload_shape(self, trained_gnn, small_dataset, tmp_path):
        from types import SimpleNamespace

        from repro.eval.robustness import (
            counterfactual_bench_payload,
            write_counterfactual_bench,
        )

        _, test_set = small_dataset
        artifacts = SimpleNamespace(
            gnn=trained_gnn,
            test_set=test_set,
            explainers={"CFExplainer": CFExplainer(trained_gnn, iterations=5)},
        )
        payload = counterfactual_bench_payload(
            artifacts, graphs_per_family=1, step_size=20
        )
        cell = payload["CFExplainer"]
        for key in (
            "sufficiency",
            "necessity",
            "edit_size",
            "flip_rate",
            "mean_deleted_edges",
        ):
            assert key in cell, key
        assert 0.0 <= cell["flip_rate"] <= 1.0

        path = write_counterfactual_bench(
            payload, tmp_path / "BENCH_counterfactual.json"
        )
        import json

        assert json.loads(path.read_text()) == payload
