"""The AST determinism lint: planted hazards must be caught, idioms not.

The acceptance contract: the lint is purely syntactic (never guesses
from names), catches a planted unsorted-set iteration, and the real
``src/`` tree is clean under it.
"""

from pathlib import Path

import pytest

from repro.tools.lint import lint_paths, lint_source, main

SRC = Path(__file__).parent.parent / "src"


def rules(source: str) -> list[str]:
    return [f.rule for f in lint_source(source)]


class TestSetIteration:
    def test_planted_unsorted_set_iteration_is_caught(self):
        source = "for x in {3, 1, 2}:\n    print(x)\n"
        assert rules(source) == ["set-iteration"]

    def test_set_call_iteration_is_caught(self):
        assert rules("for x in set(items):\n    use(x)\n") == ["set-iteration"]

    def test_set_algebra_is_caught(self):
        source = "for x in {1} | other:\n    use(x)\n"
        assert rules(source) == ["set-iteration"]

    def test_comprehension_over_set_is_caught(self):
        assert rules("out = [f(x) for x in {1, 2}]\n") == ["set-iteration"]

    def test_sorted_set_is_fine(self):
        assert rules("for x in sorted({3, 1, 2}):\n    print(x)\n") == []

    def test_order_insensitive_consumer_is_fine(self):
        assert rules("total = sum(f(x) for x in {1, 2})\n") == []
        assert rules("ok = any(p(x) for x in set(items))\n") == []
        assert rules("seen.update(x.name for x in {a, b})\n") == []

    def test_list_iteration_is_never_flagged(self):
        # Purely syntactic: a name that *might* hold a set is not proof.
        assert rules("for x in maybe_a_set:\n    print(x)\n") == []


class TestDictValues:
    def test_values_iteration_is_caught(self):
        source = "for v in mapping.values():\n    use(v)\n"
        assert rules(source) == ["dict-values-iteration"]

    def test_sorted_keys_is_fine(self):
        assert rules("for k in sorted(mapping):\n    use(mapping[k])\n") == []

    def test_values_into_sum_is_fine(self):
        assert rules("total = sum(v for v in mapping.values())\n") == []


class TestUnseededRandom:
    def test_global_random_is_caught(self):
        assert rules("import random\nx = random.random()\n") == [
            "unseeded-random"
        ]

    def test_numpy_legacy_global_is_caught(self):
        assert rules("import numpy as np\nx = np.random.rand(3)\n") == [
            "unseeded-random"
        ]

    def test_bare_default_rng_is_caught(self):
        assert rules("rng = default_rng()\n") == ["unseeded-random"]

    def test_seeded_default_rng_is_fine(self):
        assert rules("rng = np.random.default_rng(0)\n") == []
        assert rules("rng = default_rng(seed)\n") == []

    def test_instance_methods_are_fine(self):
        # rng.random() is a Generator method, not the global state.
        assert rules("x = rng.random()\n") == []


class TestWallClockSeed:
    def test_clock_as_seed_keyword_is_caught(self):
        source = "import time\nrun(seed=time.time())\n"
        assert rules(source) == ["wall-clock-seed"]

    def test_clock_into_rng_call_is_caught(self):
        source = "rng = make_rng(time.time_ns())\n"
        assert rules(source) == ["wall-clock-seed"]

    def test_clock_for_timing_is_fine(self):
        assert rules("start = time.time()\n") == []
        assert rules("log(elapsed=time.time() - start)\n") == []


class TestSuppression:
    def test_same_line_marker_suppresses(self):
        source = "for x in {1, 2}:  # lint: ok (singleton at runtime)\n    use(x)\n"
        assert rules(source) == []

    def test_comment_line_above_suppresses(self):
        source = "# lint: ok (order irrelevant here)\nfor x in {1, 2}:\n    use(x)\n"
        assert rules(source) == []

    def test_non_comment_line_above_does_not_suppress(self):
        source = "text = 'lint: ok'\nfor x in {1, 2}:\n    use(x)\n"
        assert rules(source) == ["set-iteration"]


class TestGate:
    def test_src_tree_is_clean(self):
        findings = lint_paths([SRC])
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("for x in sorted({1, 2}):\n    print(x)\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("for x in {1, 2}:\n    print(x)\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "set-iteration" in out

    def test_directory_target_recurses(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "mod.py").write_text("for v in d.values():\n    go(v)\n")
        findings = lint_paths([tmp_path])
        assert [f.rule for f in findings] == ["dict-values-iteration"]


@pytest.mark.parametrize(
    "source",
    [
        "x = {k: v for k, v in pairs}\n",  # dict comp over a list
        "s = {x for x in items}\n",  # building a set is fine
        "n = len({1, 2, 3})\n",
        "frozenset(x for x in {1, 2})\n",
    ],
)
def test_benign_idioms_pass(source):
    assert lint_source(source) == []
