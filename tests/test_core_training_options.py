"""Tests for Algorithm 1's training options (regularizers, probes)."""

import numpy as np
import pytest

from repro.core import CFGExplainerModel, train_cfgexplainer
from repro.core.training import precompute_embeddings
from repro.nn import Tensor


class TestPrecomputeEmbeddings:
    def test_one_sample_per_graph_by_default(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        cached = precompute_embeddings(trained_gnn, train_set)
        assert len(cached) == len(train_set)

    def test_augmentation_adds_variants(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        cached = precompute_embeddings(
            trained_gnn, train_set, augment_prune_fractions=(0.3, 0.6)
        )
        assert len(cached) == 3 * len(train_set)

    def test_variant_targets_match_full_graph(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        cached = precompute_embeddings(
            trained_gnn, train_set, augment_prune_fractions=(0.5,)
        )
        # Entries come in (full, variant) pairs per graph.
        for i in range(0, len(cached), 2):
            assert cached[i].gnn_class == cached[i + 1].gnn_class

    def test_variant_embeddings_differ_from_full(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        cached = precompute_embeddings(
            trained_gnn, train_set, augment_prune_fractions=(0.5,)
        )
        assert not np.allclose(cached[0].embeddings, cached[1].embeddings)

    def test_degenerate_fraction_skipped(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        cached = precompute_embeddings(
            trained_gnn, train_set, augment_prune_fractions=(0.0,)
        )
        assert len(cached) == len(train_set)


class TestTrainingOptions:
    def _train(self, gnn, train_set, **kwargs):
        theta = CFGExplainerModel(
            gnn.embedding_size, 12, rng=np.random.default_rng(3)
        )
        history = train_cfgexplainer(
            theta, gnn, train_set, num_epochs=10, minibatch_size=8, seed=0, **kwargs
        )
        return theta, history

    def test_literal_algorithm1_runs(self, trained_gnn, small_dataset):
        """All extensions off = the paper's bare loss; must still train."""
        train_set, _ = small_dataset
        _, history = self._train(
            trained_gnn,
            train_set,
            sparsity_weight=0.0,
            entropy_weight=0.0,
            faithfulness_weight=0.0,
        )
        assert len(history.losses) == 10
        assert all(np.isfinite(history.losses))

    def test_faithfulness_does_not_update_gnn(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        before = [p.data.copy() for p in trained_gnn.parameters()]
        self._train(trained_gnn, train_set, faithfulness_weight=1.0)
        for original, after in zip(before, trained_gnn.parameters()):
            np.testing.assert_array_equal(original, after.data)

    def test_multi_sample_probe(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        _, history = self._train(
            trained_gnn, train_set, faithfulness_samples=3
        )
        assert all(np.isfinite(history.losses))

    def test_budget_sparsity_keeps_scores_above_plain_sparsity(
        self, trained_gnn, small_dataset
    ):
        """A target budget must hold scores higher than plain shrinkage."""
        train_set, _ = small_dataset
        theta_budget, _ = self._train(
            trained_gnn,
            train_set,
            sparsity_weight=2.0,
            sparsity_target=0.3,
            faithfulness_weight=0.0,
        )
        theta_plain, _ = self._train(
            trained_gnn,
            train_set,
            sparsity_weight=2.0,
            sparsity_target=None,
            faithfulness_weight=0.0,
        )
        graph = train_set[0]
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        from repro.nn import no_grad

        with no_grad():
            z = trained_gnn.embed(graph.adjacency, graph.features, mask)
        budget_mean = theta_budget.node_scores(z, graph.n_real).mean()
        plain_mean = theta_plain.node_scores(z, graph.n_real).mean()
        assert budget_mean > plain_mean

    def test_sparsity_pushes_scores_down(self, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        theta_free, _ = self._train(
            trained_gnn, train_set, sparsity_weight=0.0, faithfulness_weight=0.0
        )
        theta_sparse, _ = self._train(
            trained_gnn, train_set, sparsity_weight=5.0, faithfulness_weight=0.0
        )
        graph = train_set[0]
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        from repro.nn import no_grad

        with no_grad():
            z = trained_gnn.embed(graph.adjacency, graph.features, mask)
        free = theta_free.node_scores(z, graph.n_real).mean()
        sparse = theta_sparse.node_scores(z, graph.n_real).mean()
        assert sparse < free

    def test_score_logits_match_sigmoid_scores(self, trained_theta, trained_gnn, small_dataset):
        train_set, _ = small_dataset
        graph = train_set[0]
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        from repro.nn import no_grad

        with no_grad():
            z = trained_gnn.embed(graph.adjacency, graph.features, mask)
            logits = trained_theta.scorer.score_logits(z).numpy()
            scores = trained_theta.scorer(z).numpy()
        np.testing.assert_allclose(1 / (1 + np.exp(-logits)), scores, atol=1e-10)
