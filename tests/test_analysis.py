"""Tests for the micro/macro qualitative analysis (Table V machinery)."""

import pytest

from repro.analysis import (
    build_family_reports,
    detect_code_manipulation,
    detect_self_loop,
    detect_semantic_nop_obfuscation,
    detect_xor_obfuscation,
    macro_analysis,
    micro_analysis,
)
from repro.analysis.macro import api_group_profile, called_apis
from repro.analysis.report import analyze_sample, format_table_v
from repro.disasm import ProgramBuilder, build_cfg
from repro.malgen import generate_corpus


def cfg_of(emit):
    builder = ProgramBuilder("probe")
    emit(builder)
    builder.emit("ret")
    return build_cfg(builder.build())


class TestCodeManipulation:
    def test_call_pop_eax_detected(self):
        cfg = cfg_of(lambda b: [b.emit("call", "ds:GetTickCount"), b.emit("pop", "eax")])
        findings = detect_code_manipulation(cfg.blocks[0])
        assert len(findings) == 1
        assert findings[0].pattern == "code_manipulation"
        assert "pop eax" in findings[0].evidence[1]

    def test_call_mov_eax_detected(self):
        cfg = cfg_of(
            lambda b: [b.emit("call", "ds:Sleep"), b.emit("mov", "eax", "[ebp+var_EC]")]
        )
        assert detect_code_manipulation(cfg.blocks[0])

    def test_call_movzx_detected(self):
        cfg = cfg_of(
            lambda b: [b.emit("call", "j_SleepEx"), b.emit("movzx", "eax", "[ecx]")]
        )
        assert detect_code_manipulation(cfg.blocks[0])

    def test_unrelated_mov_not_flagged(self):
        cfg = cfg_of(
            lambda b: [b.emit("call", "ds:Sleep"), b.emit("mov", "ebx", "ecx")]
        )
        assert not detect_code_manipulation(cfg.blocks[0])

    def test_no_call_no_finding(self):
        cfg = cfg_of(lambda b: [b.emit("mov", "eax", "1"), b.emit("pop", "eax")])
        assert not detect_code_manipulation(cfg.blocks[0])


class TestXorObfuscation:
    def test_xor_with_key_detected(self):
        cfg = cfg_of(lambda b: b.emit("xor", "edx", "87BDC1D7h"))
        findings = detect_xor_obfuscation(cfg.blocks[0])
        assert len(findings) == 1

    def test_xor_two_registers_detected(self):
        cfg = cfg_of(lambda b: b.emit("xor", "eax", "ecx"))
        assert detect_xor_obfuscation(cfg.blocks[0])

    def test_xor_memory_detected(self):
        cfg = cfg_of(lambda b: b.emit("xor", "[ecx]", "al"))
        assert detect_xor_obfuscation(cfg.blocks[0])

    def test_self_zeroing_xor_not_flagged(self):
        cfg = cfg_of(lambda b: b.emit("xor", "eax", "eax"))
        assert not detect_xor_obfuscation(cfg.blocks[0])


class TestSemanticNop:
    def test_sled_detected(self):
        def emit(b):
            for _ in range(4):
                b.emit("nop")

        cfg = cfg_of(emit)
        findings = detect_semantic_nop_obfuscation(cfg.blocks[0])
        assert len(findings) == 1
        assert len(findings[0].evidence) == 4

    def test_alias_sled_detected(self):
        def emit(b):
            b.emit("mov", "edx", "edx")
            b.emit("mov", "esi", "esi")
            b.emit("xchg", "dl", "dl")

        cfg = cfg_of(emit)
        assert detect_semantic_nop_obfuscation(cfg.blocks[0])

    def test_short_run_ignored(self):
        cfg = cfg_of(lambda b: [b.emit("nop"), b.emit("nop")])
        assert not detect_semantic_nop_obfuscation(cfg.blocks[0])

    def test_interrupted_run_ignored(self):
        def emit(b):
            b.emit("nop")
            b.emit("nop")
            b.emit("add", "eax", "1")
            b.emit("nop")
            b.emit("nop")

        cfg = cfg_of(emit)
        assert not detect_semantic_nop_obfuscation(cfg.blocks[0])


class TestXorLivenessSuppression:
    """Regression: dead self-zeroing / junk XORs are not obfuscation.

    The syntactic detector used to count any non-trivial XOR; the
    liveness pass from ``repro.staticcheck`` now suppresses XORs whose
    result is overwritten before any read.
    """

    def dead_xor_cfg(self):
        builder = ProgramBuilder("junk")
        builder.emit("xor", "eax", "5h")  # result immediately overwritten
        builder.emit("mov", "eax", "ebx")
        builder.emit("mov", "[ecx]", "eax")
        builder.emit("ret")
        return build_cfg(builder.build())

    def test_dead_xor_suppressed_by_micro_analysis(self):
        cfg = self.dead_xor_cfg()
        patterns = {f.pattern for f in micro_analysis(cfg)}
        assert "xor_obfuscation" not in patterns

    def test_syntactic_mode_still_reports_it(self):
        cfg = self.dead_xor_cfg()
        patterns = {f.pattern for f in micro_analysis(cfg, use_liveness=False)}
        assert "xor_obfuscation" in patterns
        # The bare detector (no liveness info) is unchanged too.
        assert detect_xor_obfuscation(cfg.blocks[0])

    def test_live_xor_still_detected(self):
        builder = ProgramBuilder("mangler")
        builder.emit("xor", "eax", "5h")
        builder.emit("mov", "[ecx]", "eax")  # result is consumed
        builder.emit("ret")
        cfg = build_cfg(builder.build())
        patterns = {f.pattern for f in micro_analysis(cfg)}
        assert "xor_obfuscation" in patterns

    def test_dead_self_zeroing_not_flagged_either_way(self):
        builder = ProgramBuilder("zero")
        builder.emit("xor", "eax", "eax")  # overwritten before any read
        builder.emit("mov", "eax", "ebx")
        builder.emit("mov", "[ecx]", "eax")
        builder.emit("ret")
        cfg = build_cfg(builder.build())
        for use_liveness in (True, False):
            patterns = {
                f.pattern
                for f in micro_analysis(cfg, use_liveness=use_liveness)
            }
            assert "xor_obfuscation" not in patterns

    def test_decode_loop_xor_survives_liveness(self):
        """A real XOR-decode loop stays detected: its result is stored."""
        builder = ProgramBuilder("decode")
        builder.emit("mov", "ecx", "16")
        builder.label("top")
        builder.emit("mov", "edx", "[esi]")
        builder.emit("xor", "edx", "87BDC1D7h")
        builder.emit("mov", "[esi]", "edx")
        builder.emit("dec", "ecx")
        builder.emit("jnz", "top")
        builder.emit("ret")
        cfg = build_cfg(builder.build())
        patterns = {f.pattern for f in micro_analysis(cfg)}
        assert "xor_obfuscation" in patterns


class TestSelfLoop:
    def test_self_loop_detected(self):
        builder = ProgramBuilder("spin")
        builder.label("top")
        builder.emit("nop")
        builder.emit("jmp", "top")
        cfg = build_cfg(builder.build())
        loop_block = cfg.blocks[0]
        assert detect_self_loop(cfg, loop_block)

    def test_forward_jump_not_flagged(self):
        builder = ProgramBuilder("fwd")
        builder.emit("jmp", "end")
        builder.label("end")
        builder.emit("ret")
        cfg = build_cfg(builder.build())
        assert not detect_self_loop(cfg, cfg.blocks[0])


class TestMacroAnalysis:
    def make_ldpinch_like(self):
        def emit(b):
            b.emit("push", "offset_sub_401000")
            b.emit("call", "ds:CreateThread")
            b.emit("call", "ds:ReadFile")
            b.emit("call", "ds:send")
            b.emit("call", "ds:recv")
            b.emit("call", "ds:WriteFile")

        return cfg_of(emit)

    def test_called_apis_collected_in_order(self):
        cfg = self.make_ldpinch_like()
        apis = called_apis(cfg)
        assert apis == ["CreateThread", "ReadFile", "send", "recv", "WriteFile"]

    def test_thread_relay_hypothesis_fires(self):
        cfg = self.make_ldpinch_like()
        behaviors = {h.behavior for h in macro_analysis(cfg)}
        assert "thread_relay" in behaviors

    def test_injection_signature(self):
        def emit(b):
            b.emit("call", "ds:OpenProcess")
            b.emit("call", "ds:WriteProcessMemory")
            b.emit("call", "ds:CreateRemoteThread")

        behaviors = {h.behavior for h in macro_analysis(cfg_of(emit))}
        assert "process_injection" in behaviors

    def test_benign_code_fires_nothing(self):
        cfg = cfg_of(lambda b: [b.emit("add", "eax", "1"), b.emit("mov", "ebx", "2")])
        assert macro_analysis(cfg) == []

    def test_block_restriction(self):
        cfg = self.make_ldpinch_like()
        # Restricting to no blocks yields no APIs.
        assert called_apis(cfg, []) == []

    def test_api_group_profile(self):
        cfg = self.make_ldpinch_like()
        profile = api_group_profile(cfg)
        assert profile["process"] == 1
        assert profile["file"] == 2  # ReadFile, WriteFile
        assert profile["network"] == 2  # send, recv


class TestFamilyReports:
    @pytest.fixture(scope="class")
    def pairs(self, trained_gnn, trained_theta):
        from repro.acfg import from_sample, FeatureScaler
        from repro.core import CFGExplainer

        corpus = generate_corpus(2, seed=77)
        graphs = [from_sample(s) for s in corpus]
        pad = max(g.n for g in graphs)
        scaler = FeatureScaler().fit(graphs)
        explainer = CFGExplainer(trained_gnn, trained_theta)
        pairs = []
        for sample, graph in zip(corpus[:8], graphs[:8]):
            padded = scaler.transform(graph).padded(pad)
            pairs.append((sample, explainer.explain(padded, step_size=20)))
        return pairs

    def test_reports_cover_families(self, pairs):
        reports = build_family_reports(pairs)
        assert set(reports) == {sample.family for sample, _ in pairs}
        for report in reports.values():
            assert report.samples_analyzed >= 1

    def test_analyze_sample_returns_both_kinds(self, pairs):
        sample, explanation = pairs[0]
        findings, behaviors = analyze_sample(sample, explanation, fraction=1.0)
        assert isinstance(findings, list)
        assert isinstance(behaviors, list)

    def test_format_table_v_renders(self, pairs):
        reports = build_family_reports(pairs)
        text = format_table_v(reports)
        assert "Family" in text
        for family in reports:
            assert family in text

    def test_full_graph_analysis_finds_planted_patterns(self):
        """Analyzing ALL blocks of malware samples must surface the
        generator's planted obfuscation patterns."""
        corpus = generate_corpus(3, seed=5)
        bagle = [s for s in corpus if s.family == "Bagle"]
        patterns = set()
        for sample in bagle:
            for finding in micro_analysis(sample.cfg):
                patterns.add(finding.pattern)
        assert "code_manipulation" in patterns or "semantic_nop" in patterns
