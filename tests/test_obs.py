"""Observability layer: spans, metrics, manifests, bench_compare."""

import json
from dataclasses import replace

import pytest

from repro.obs import (
    MetricsRegistry,
    RunManifest,
    add_counter,
    current_span,
    get_tracer,
    iter_spans,
    metrics_registry,
    span,
    tracing,
)
from repro.tools.bench_compare import (
    DEFAULT_POLICIES,
    MetricPolicy,
    compare_benchmarks,
    compare_directories,
    default_bench_dir,
    extract_metrics,
    format_delta_table,
)
from repro.viz import render_span_stats, render_span_tree


# ----------------------------------------------------------------------
# tracing core
# ----------------------------------------------------------------------
def test_span_nesting_records_tree():
    with tracing() as tracer:
        with span("root"):
            with span("child.a"):
                with span("grand"):
                    pass
            with span("child.b"):
                pass
    assert [r.name for r in tracer.roots] == ["root"]
    root = tracer.roots[0]
    assert [c.name for c in root.children] == ["child.a", "child.b"]
    assert root.children[0].children[0].name == "grand"
    assert root.children[0].depth == 1
    assert all(s.status == "ok" for s in iter_spans(tracer.roots))
    # Wall clocks nest: a parent covers at least its children.
    assert root.wall_seconds >= sum(c.wall_seconds for c in root.children)


def test_span_exception_safety():
    with tracing() as tracer:
        with pytest.raises(ValueError, match="boom"):
            with span("outer"):
                with span("inner"):
                    raise ValueError("boom")
        # The stack unwound fully; the tracer is still usable.
        assert tracer.current() is None
        with span("after"):
            pass
    names = {s.name: s for s in iter_spans(tracer.roots)}
    assert names["inner"].status == "error"
    assert "ValueError: boom" in names["inner"].error
    assert names["outer"].status == "error"
    assert names["after"].status == "ok"


def test_span_noop_without_tracer():
    assert get_tracer() is None
    assert current_span() is None
    noop = span("anything")
    with noop as handle:
        handle.add("counter", 1)  # must not raise
    # The shared null span is reused — no allocation per call site.
    assert span("other") is noop


def test_nested_tracing_rejected():
    with tracing():
        with pytest.raises(RuntimeError, match="already active"):
            with tracing():
                pass


def test_counter_aggregation_and_metrics_delta():
    registry = MetricsRegistry()
    with tracing(metrics=registry) as tracer:
        with span("work") as outer:
            outer.add("items", 2)
            with span("work"):
                add_counter("hits", 3)
            with span("other"):
                add_counter("hits", 1)
    stats = tracer.aggregate()
    assert stats["work"].count == 2
    assert stats["work"].counters["items"] == 2
    assert stats["work"].counters["hits"] == 3  # credited to the inner span
    assert stats["other"].counters["hits"] == 1
    assert tracer.metrics_delta() == {"hits": 4.0}


def test_add_counter_without_tracer_hits_global_registry():
    before = metrics_registry().get("test_obs.global")
    add_counter("test_obs.global", 5)
    assert metrics_registry().get("test_obs.global") == before + 5


def test_jsonl_sink(tmp_path):
    sink = tmp_path / "trace.jsonl"
    with tracing(sink=sink, metrics=MetricsRegistry()):
        with span("a"):
            with span("b") as inner:
                inner.add("n", 1)
    events = [json.loads(line) for line in sink.read_text().splitlines()]
    assert [e["type"] for e in events] == ["span", "span", "metrics"]
    # Spans are emitted on close: innermost first.
    assert [e["name"] for e in events[:2]] == ["b", "a"]
    assert events[0]["counters"] == {"n": 1}
    assert all("children" not in e for e in events)


def test_render_span_tree_and_stats():
    with tracing() as tracer:
        with span("run"):
            with span("stage") as stage:
                stage.add("graphs", 7)
    tree = render_span_tree(tracer.roots)
    assert "run" in tree and "stage" in tree and "graphs=7" in tree
    assert "wall=" in tree and "cpu=" in tree
    md = render_span_tree(tracer.roots, markdown=True)
    assert md.startswith("```") and md.endswith("```")
    stats = render_span_stats(tracer.aggregate())
    assert "run" in stats and "count" in stats


# ----------------------------------------------------------------------
# run manifests
# ----------------------------------------------------------------------
def _config(seed=0):
    from repro.eval import ExperimentConfig

    return ExperimentConfig(samples_per_family=2, seed=seed)


def test_manifest_determinism_fixed_seed():
    a = RunManifest.capture(config=_config(seed=3))
    b = RunManifest.capture(config=_config(seed=3))
    assert a.seed == 3  # picked up from the config snapshot
    assert a.fingerprint() == b.fingerprint()
    c = RunManifest.capture(config=_config(seed=4))
    assert a.fingerprint() != c.fingerprint()


def test_manifest_fingerprint_ignores_timings():
    manifest = RunManifest.capture(config=_config())
    before = manifest.fingerprint()
    with tracing(metrics=MetricsRegistry()) as tracer:
        with span("run"):
            pass
    manifest.finalize(tracer)
    assert manifest.fingerprint() == before


def test_manifest_finalize_consistent_with_root(tmp_path):
    with tracing(metrics=MetricsRegistry()) as tracer:
        with span("run"):
            with span("stage.a"):
                pass
            with span("stage.b"):
                pass
    manifest = RunManifest.capture(config=_config()).finalize(tracer)
    assert manifest.total_wall_seconds == tracer.roots[0].wall_seconds
    children_wall = sum(
        c["wall_seconds"] for c in manifest.span_tree[0]["children"]
    )
    assert children_wall <= manifest.total_wall_seconds
    assert set(manifest.span_stats) == {"run", "stage.a", "stage.b"}

    path = manifest.write(tmp_path / "RUN_MANIFEST.json")
    data = json.loads(path.read_text())
    assert data["fingerprint"] == manifest.fingerprint()
    loaded = RunManifest.load(path)
    assert loaded.fingerprint() == manifest.fingerprint()
    assert loaded.span_stats == manifest.span_stats


def test_manifest_captures_identity():
    manifest = RunManifest.capture(config=_config())
    assert manifest.platform["python"]
    assert "numpy" in manifest.packages
    assert manifest.config["samples_per_family"] == 2


# ----------------------------------------------------------------------
# bench_compare
# ----------------------------------------------------------------------
BASELINE = {
    "training": {
        "batched": {"graphs_per_sec": 300.0, "seconds": 2.0},
        "speedup": 4.0,
    },
    "accuracy": 0.5,
}


def test_extract_metrics_flattens():
    metrics = extract_metrics(BASELINE)
    assert metrics["training.batched.graphs_per_sec"] == 300.0
    assert metrics["training.speedup"] == 4.0
    assert metrics["accuracy"] == 0.5


def test_compare_ok_and_info():
    current = json.loads(json.dumps(BASELINE))
    current["training"]["batched"]["seconds"] = 10.0  # ungated: info only
    deltas = compare_benchmarks(BASELINE, current)
    by_path = {d.path: d for d in deltas}
    assert by_path["training.batched.graphs_per_sec"].status == "ok"
    assert by_path["training.speedup"].status == "ok"
    assert by_path["training.batched.seconds"].status == "info"
    assert all(d.status != "regressed" for d in deltas)


def test_compare_detects_regression_and_improvement():
    current = json.loads(json.dumps(BASELINE))
    current["training"]["batched"]["graphs_per_sec"] = 150.0  # -50%
    current["training"]["speedup"] = 8.0  # improvement: fine
    deltas = compare_benchmarks(BASELINE, current)
    by_path = {d.path: d for d in deltas}
    assert by_path["training.batched.graphs_per_sec"].status == "regressed"
    assert by_path["training.speedup"].status == "ok"
    table = format_delta_table(deltas)
    assert "REGRESSED" in table and "-50.0%" in table


def test_compare_threshold_boundary():
    current = json.loads(json.dumps(BASELINE))
    current["training"]["batched"]["graphs_per_sec"] = 300.0 * 0.71  # -29%
    deltas = compare_benchmarks(BASELINE, current)
    by_path = {d.path: d for d in deltas}
    assert by_path["training.batched.graphs_per_sec"].status == "ok"
    tight = tuple(
        MetricPolicy(p.pattern, p.direction, 0.10) for p in DEFAULT_POLICIES
    )
    deltas = compare_benchmarks(BASELINE, current, policies=tight)
    by_path = {d.path: d for d in deltas}
    assert by_path["training.batched.graphs_per_sec"].status == "regressed"


SERVING_BASELINE = {
    "serving": {
        "concurrency_4": {
            "latency_p50_ms": 40.0,
            "latency_p99_ms": 90.0,
            "graphs_per_sec": 25.0,
        }
    }
}


def test_latency_policies_are_lower_is_better():
    current = json.loads(json.dumps(SERVING_BASELINE))
    # 2.5x p50 (past the 2x gate), p99 halved (an improvement).
    current["serving"]["concurrency_4"]["latency_p50_ms"] = 100.0
    current["serving"]["concurrency_4"]["latency_p99_ms"] = 45.0
    deltas = compare_benchmarks(SERVING_BASELINE, current)
    by_path = {d.path: d for d in deltas}
    assert by_path["serving.concurrency_4.latency_p50_ms"].status == "regressed"
    assert by_path["serving.concurrency_4.latency_p99_ms"].status == "ok"
    # Serving throughput rides the existing higher-is-better gate.
    assert by_path["serving.concurrency_4.graphs_per_sec"].status == "ok"


def test_latency_policy_thresholds_p50_vs_p99():
    # The tail gate is looser: a uniform 2.5x slowdown trips p50
    # (tolerance 2x) but not p99 (tolerance 3x).
    current = json.loads(json.dumps(SERVING_BASELINE))
    current["serving"]["concurrency_4"]["latency_p50_ms"] = 40.0 * 2.5
    current["serving"]["concurrency_4"]["latency_p99_ms"] = 90.0 * 2.5
    deltas = compare_benchmarks(SERVING_BASELINE, current)
    by_path = {d.path: d for d in deltas}
    assert by_path["serving.concurrency_4.latency_p50_ms"].status == "regressed"
    assert by_path["serving.concurrency_4.latency_p99_ms"].status == "ok"


def test_latency_regression_fails_directory_gate(tmp_path):
    baselines = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    baselines.mkdir()
    current_dir.mkdir()
    (baselines / "BENCH_serving.json").write_text(json.dumps(SERVING_BASELINE))
    slow = json.loads(json.dumps(SERVING_BASELINE))
    slow["serving"]["concurrency_4"]["latency_p99_ms"] = 900.0
    (current_dir / "BENCH_serving.json").write_text(json.dumps(slow))
    deltas, ok = compare_directories(baselines, current_dir)
    assert not ok
    assert any(
        d.path.endswith("latency_p99_ms") and d.status == "regressed"
        for d in deltas
    )


def test_threshold_override_preserves_mode(tmp_path):
    """--threshold replaces every gate's number but not its mode: an
    absolute-mode policy (*.jaccard) must stay absolute, or a small
    bounded-metric drop would read as a huge relative one."""
    from repro.tools.bench_compare import main as bench_main

    baselines = tmp_path / "baselines"
    current_dir = tmp_path / "current"
    baselines.mkdir()
    current_dir.mkdir()
    (baselines / "BENCH_s.json").write_text(json.dumps({"s": {"jaccard": 0.5}}))
    # Drop of 0.2: fine absolutely (< 0.25) but -40% relatively.
    (current_dir / "BENCH_s.json").write_text(json.dumps({"s": {"jaccard": 0.3}}))
    code = bench_main(
        ["--baselines", str(baselines), "--current", str(current_dir),
         "--threshold", "0.25"]
    )
    assert code == 0


def test_compare_directories_pass_fail_missing(tmp_path):
    baselines = tmp_path / "baselines"
    current = tmp_path / "current"
    baselines.mkdir()
    current.mkdir()
    (baselines / "BENCH_x.json").write_text(json.dumps(BASELINE))

    # identical current → ok
    (current / "BENCH_x.json").write_text(json.dumps(BASELINE))
    deltas, ok = compare_directories(baselines, current)
    assert ok and deltas

    # synthetic regression → fail
    bad = json.loads(json.dumps(BASELINE))
    bad["training"]["speedup"] = 1.0
    (current / "BENCH_x.json").write_text(json.dumps(bad))
    _, ok = compare_directories(baselines, current)
    assert not ok

    # missing current artifact → fail unless allowed
    (current / "BENCH_x.json").unlink()
    deltas, ok = compare_directories(baselines, current)
    assert not ok
    assert all(d.status == "missing" for d in deltas)
    _, ok = compare_directories(baselines, current, allow_missing=True)
    assert ok


def test_compare_directories_requires_baselines(tmp_path):
    with pytest.raises(FileNotFoundError):
        compare_directories(tmp_path, tmp_path)


def test_repo_baselines_pass_against_committed_artifacts():
    """The committed BENCH_*.json must satisfy the committed baselines."""
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    deltas, ok = compare_directories(root / "benchmarks" / "baselines", root)
    assert ok, format_delta_table(deltas)


def test_bench_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "redirected"))
    assert default_bench_dir() == tmp_path / "redirected"
    monkeypatch.delenv("REPRO_BENCH_DIR")
    assert (default_bench_dir() / "pyproject.toml").is_file()


# ----------------------------------------------------------------------
# profiled pipeline (integration)
# ----------------------------------------------------------------------
def test_profile_pipeline_emits_manifest_and_spans(tmp_path):
    from repro.eval import PROFILE_CONFIG, profile_pipeline

    config = replace(
        PROFILE_CONFIG,
        samples_per_family=2,
        gnn_epochs=6,
        explainer_epochs=8,
        gnnexplainer_epochs=2,
        pgexplainer_epochs=2,
        subgraphx_iterations=3,
        subgraphx_shapley_samples=1,
        step_size=50,
    )
    result = profile_pipeline(config, out_dir=tmp_path, graphs_per_explainer=1)

    stats = result.tracer.aggregate()
    for stage in (
        "run",
        "pipeline.corpus",
        "pipeline.dataset",
        "pipeline.train",
        "pipeline.eval",
        "pipeline.explain",
        "train.epoch",
        "explain.CFGExplainer",
        "eval.accuracy",
    ):
        assert stage in stats, f"missing span {stage}"
        assert stats[stage].wall_seconds > 0
    assert stats["train.epoch"].count == config.gnn_epochs
    assert stats["train.epoch"].counters["train.graphs"] > 0

    data = json.loads(result.manifest_path.read_text())
    assert data["config"]["samples_per_family"] == 2
    root = data["span_tree"][0]
    assert root["name"] == "run"
    assert sum(c["wall_seconds"] for c in root["children"]) <= root["wall_seconds"]
    assert data["total_wall_seconds"] == root["wall_seconds"]
    # Cache traffic from the shared embedding cache shows up as metrics.
    assert any(k.startswith("cache.") for k in data["metrics"])
    assert result.trace_path.is_file()
    events = [json.loads(x) for x in result.trace_path.read_text().splitlines()]
    assert events[-1]["type"] == "metrics"
    assert sum(e["type"] == "span" for e in events) == sum(
        s.count for s in stats.values()
    )
