"""Tests for the profile-driven sparse kernel backend (PR 8).

Covers the four tentpole guarantees:

* backend-seam conformance — ScipyBackend and the LoopBackend
  reference produce the same kernels outputs, and the autograd ops
  dispatch through whichever backend is installed;
* fused Â+matmul — :func:`repro.nn.gcn_layer` is bit-identical to the
  composed op chain, and the CSR-computed Â matches the dense
  reference at 1e-8;
* buffer reuse — :class:`repro.nn.KernelWorkspace` buffers are reused
  across steps without ever aliasing a parameter gradient, and
  workspace-driven training reproduces the reference losses exactly;
* dtype control — float32 end-to-end training tracks the float64
  reference within the documented tolerance, and the in-place Adam
  update is bit-identical to the allocating formulation.
"""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.acfg import ACFGDataset, FeatureScaler, train_test_split
from repro.gnn import GCNClassifier, evaluate_accuracy, train_gnn
from repro.gnn.batch import BatchPacker, GraphBatch, iter_batches
from repro.gnn.cache import AHatCache
from repro.gnn.normalize import normalized_adjacency, normalized_adjacency_csr
from repro.malgen import generate_corpus
from repro.nn import (
    Adam,
    CSRMatrix,
    KernelWorkspace,
    LoopBackend,
    ScipyBackend,
    SparseBackend,
    Tensor,
    compute_dtype,
    cross_entropy_batch,
    csr_matmul,
    gcn_layer,
    get_backend,
    get_compute_dtype,
    segment_max,
    segment_starts,
    segment_sum,
    set_backend,
    use_backend,
)


@pytest.fixture(scope="module")
def small_sets():
    corpus = generate_corpus(3, seed=11, size_multiplier=1)
    dataset = ACFGDataset.from_corpus(corpus)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
    scaler = FeatureScaler().fit(list(train))
    return train.scaled(scaler), test.scaled(scaler)


def _random_csr(rng, n, m, density=0.15):
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    return sp.csr_matrix(dense)


# ----------------------------------------------------------------------
# backend seam conformance
# ----------------------------------------------------------------------
BACKENDS = [ScipyBackend(), LoopBackend()]


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
def test_spmm_conformance(backend):
    rng = np.random.default_rng(0)
    a = _random_csr(rng, 13, 9)
    x = rng.standard_normal((9, 5))
    expected = a.toarray() @ x
    np.testing.assert_allclose(backend.spmm(a, x), expected, atol=1e-12)
    out = np.empty((13, 5), dtype=np.float64)
    result = backend.spmm(a, x, out=out)
    assert result is out
    np.testing.assert_allclose(out, expected, atol=1e-12)


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
def test_segment_conformance(backend):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((10, 4))
    sorted_ids = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2, 3], dtype=np.intp)
    starts = segment_starts(sorted_ids, 4)
    assert starts is not None
    scattered_ids = np.array([2, 0, 1, 3, 1, 0, 2, 3, 0, 1], dtype=np.intp)

    for ids, st in [(sorted_ids, starts), (scattered_ids, None)]:
        expect_sum = np.zeros((4, 4))
        np.add.at(expect_sum, ids, x)
        np.testing.assert_allclose(
            backend.segment_sum(x, ids, 4, st), expect_sum, atol=1e-12
        )
        expect_max = np.full((4, 4), -np.inf)
        np.maximum.at(expect_max, ids, x)
        np.testing.assert_allclose(
            backend.segment_max(x, ids, 4, st), expect_max, atol=1e-12
        )


def test_segment_starts_refuses_unsafe_layouts():
    # Empty segment: reduceat would silently repeat a row.
    assert segment_starts(np.array([0, 0, 2, 2]), 3) is None
    # Unsorted ids: offsets are meaningless.
    assert segment_starts(np.array([1, 0, 1]), 2) is None
    starts = segment_starts(np.array([0, 0, 1, 2, 2]), 3)
    np.testing.assert_array_equal(starts, [0, 2, 3])


def test_autograd_ops_follow_installed_backend(small_sets):
    train_set, _ = small_sets
    batch = GraphBatch.from_graphs(list(train_set)[:4])
    model = GCNClassifier(hidden=(8, 6), rng=np.random.default_rng(3))
    _, logits_scipy = model.forward_batch(batch)
    with use_backend(LoopBackend()):
        assert get_backend().name == "loop"
        _, logits_loop = model.forward_batch(batch)
    assert get_backend().name == "scipy"
    np.testing.assert_allclose(
        logits_scipy.numpy(), logits_loop.numpy(), atol=1e-10
    )


def test_set_backend_rejects_non_backends():
    with pytest.raises(TypeError):
        set_backend(object())
    assert isinstance(get_backend(), SparseBackend)


# ----------------------------------------------------------------------
# fused Â + matmul
# ----------------------------------------------------------------------
def test_normalized_adjacency_csr_matches_dense_reference():
    rng = np.random.default_rng(7)
    n = 40
    adjacency = (rng.random((n, n)) < 0.1).astype(np.float64)
    adjacency[rng.random((n, n)) < 0.02] = 2.0
    adjacency *= adjacency <= 2.0
    mask = np.ones(n, dtype=bool)
    mask[n - 5 :] = False
    adjacency[n - 5 :, :] = 0.0
    adjacency[:, n - 5 :] = 0.0
    dense = normalized_adjacency(adjacency, mask)
    via_csr = normalized_adjacency_csr(adjacency, mask).toarray()
    np.testing.assert_allclose(via_csr, dense, atol=1e-8)
    # isolated-but-active node keeps its self-loop; padded rows stay 0
    assert via_csr[n - 1].sum() == 0.0


def test_fused_gcn_layer_bitwise_equals_composed():
    rng = np.random.default_rng(5)
    n, d, f = 17, 6, 4
    a = CSRMatrix(_random_csr(rng, n, n))
    x_data = rng.standard_normal((n, d))
    weight_data = rng.standard_normal((d, f))
    bias_data = rng.standard_normal((1, f))
    mask = (rng.random(n) < 0.8).astype(np.float64).reshape(n, 1)

    def composed():
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(weight_data, requires_grad=True)
        b = Tensor(bias_data, requires_grad=True)
        out = (csr_matmul(a, x @ w) + b).relu() * Tensor(mask)
        out.backward(np.ones_like(out.data))
        return out.data, x.grad, w.grad, b.grad

    def fused(workspace):
        x = Tensor(x_data, requires_grad=True)
        w = Tensor(weight_data, requires_grad=True)
        b = Tensor(bias_data, requires_grad=True)
        out = gcn_layer(a, x, w, b, mask, workspace=workspace)
        out.backward(np.ones_like(out.data))
        return out.data, x.grad, w.grad, b.grad

    reference = composed()
    for workspace in (None, KernelWorkspace()):
        result = fused(workspace)
        for got, want in zip(result, reference):
            np.testing.assert_array_equal(got, want)


def test_fused_layer_drives_the_batched_path(small_sets):
    """embed_batch output must equal per-graph embeddings exactly."""
    train_set, _ = small_sets
    graphs = list(train_set)[:5]
    model = GCNClassifier(hidden=(8, 6), rng=np.random.default_rng(2))
    batch = GraphBatch.from_graphs(graphs, a_hat_cache=model.a_hat_cache)
    z = model.embed_batch(batch)
    assert z._op == "gcn_layer"
    for i, graph in enumerate(graphs):
        mask = np.zeros(graph.n, dtype=bool)
        mask[: graph.n_real] = True
        solo = model.embed(graph.adjacency, graph.features, mask)
        np.testing.assert_allclose(
            z.numpy()[batch.rows_of(i)], solo.numpy(), atol=1e-8
        )


# ----------------------------------------------------------------------
# workspace / buffer reuse
# ----------------------------------------------------------------------
def test_workspace_reuses_buffers_by_slot():
    ws = KernelWorkspace()
    a = ws.buffer("x", (4, 3), np.float64)
    b = ws.buffer("x", (4, 3), np.float64)
    assert a is b
    assert ws.hits == 1 and ws.allocations == 1
    assert ws.buffer("y", (4, 3), np.float64) is not a
    assert ws.buffer("x", (5, 3), np.float64) is not a
    assert ws.buffer("x", (4, 3), np.float32) is not a
    assert ws.owns(a) and not ws.owns(np.zeros(3))
    assert ws.nbytes > 0
    ws.clear()
    assert ws.nbytes == 0


def test_training_reuses_workspace_without_aliasing_grads(small_sets):
    train_set, _ = small_sets
    model = GCNClassifier(hidden=(8, 6), rng=np.random.default_rng(0))
    packer = BatchPacker(train_set, a_hat_cache=model.a_hat_cache)
    optimizer = Adam(model.parameters(), lr=0.005)
    for _ in range(3):  # several epochs over the same workspace
        for batch in packer.batches(4):
            assert batch.workspace is packer.workspace
            optimizer.zero_grad()
            _, logits = model.forward_batch(batch)
            loss = cross_entropy_batch(logits, batch.labels)
            loss.backward()
            for param in model.parameters():
                assert param.grad is not None
                assert not packer.workspace.owns(param.grad)
            optimizer.step()
    # Buffers were actually recycled, not reallocated per step.
    assert packer.workspace.hits > packer.workspace.allocations


def test_workspace_training_is_bit_identical_to_reference(small_sets):
    """Buffer reuse and fused kernels must not change a single bit."""
    train_set, _ = small_sets
    losses = {}
    for mode in ("per_graph", "batched"):
        model = GCNClassifier(hidden=(8, 6), rng=np.random.default_rng(4))
        history = train_gnn(
            model, train_set, epochs=4, batch_size=4, seed=1, mode=mode
        )
        losses[mode] = history.losses
    np.testing.assert_allclose(
        losses["batched"], losses["per_graph"], atol=1e-8
    )


def test_iter_batches_shares_one_workspace(small_sets):
    train_set, _ = small_sets
    batches = list(iter_batches(list(train_set), batch_size=2))
    assert len(batches) > 1
    assert all(b.workspace is batches[0].workspace for b in batches)


# ----------------------------------------------------------------------
# dtype control
# ----------------------------------------------------------------------
def test_compute_dtype_context_switches_and_restores():
    assert get_compute_dtype() is np.float64
    with compute_dtype(np.float32):
        assert get_compute_dtype() is np.float32
        assert Tensor(np.arange(3)).data.dtype == np.float32
    assert get_compute_dtype() is np.float64
    with pytest.raises(ValueError):
        with compute_dtype(np.int32):
            pass  # pragma: no cover


def test_float32_model_runs_float32_end_to_end(small_sets):
    train_set, _ = small_sets
    with compute_dtype(np.float32):
        model = GCNClassifier(hidden=(8, 6), rng=np.random.default_rng(0))
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        batch = GraphBatch.from_graphs(
            list(train_set)[:4], a_hat_cache=model.a_hat_cache
        )
        assert batch.features.dtype == np.float32
        assert batch.a_hat.dtype == np.float32
        z, logits = model.forward_batch(batch)
        assert z.numpy().dtype == np.float32
        assert logits.numpy().dtype == np.float32


def test_float32_losses_track_float64_within_tolerance(small_sets):
    """The documented tolerance contract: ~1e-4 relative over short runs."""
    train_set, test_set = small_sets

    def run(dtype):
        with compute_dtype(dtype):
            model = GCNClassifier(hidden=(8, 6), rng=np.random.default_rng(0))
        history = train_gnn(
            model, train_set, epochs=5, batch_size=4, seed=1, dtype=dtype
        )
        return np.asarray(history.losses), evaluate_accuracy(model, test_set)

    losses64, acc64 = run(np.float64)
    losses32, acc32 = run(np.float32)
    np.testing.assert_allclose(losses32, losses64, rtol=1e-3)
    assert abs(acc32 - acc64) <= 0.25


# ----------------------------------------------------------------------
# in-place Adam
# ----------------------------------------------------------------------
def _reference_adam_step(params, grads, state, lr, betas, eps, wd, step):
    beta1, beta2 = betas
    bias1 = 1.0 - beta1**step
    bias2 = 1.0 - beta2**step
    for param, grad, (m, v) in zip(params, grads, state):
        if wd:
            grad = grad + wd * param
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad**2
        m_hat = m / bias1
        v_hat = v / bias2
        param -= lr * m_hat / (np.sqrt(v_hat) + eps)


@pytest.mark.parametrize("weight_decay", [0.0, 0.01])
def test_inplace_adam_is_bitwise_identical_to_reference(weight_decay):
    rng = np.random.default_rng(9)
    shapes = [(5, 3), (1, 3), (4,)]
    initial = [rng.standard_normal(s) for s in shapes]
    tensors = [Tensor(p.copy(), requires_grad=True) for p in initial]
    optimizer = Adam(tensors, lr=0.01, weight_decay=weight_decay)
    reference = [p.copy() for p in initial]
    state = [(np.zeros_like(p), np.zeros_like(p)) for p in initial]
    for step in range(1, 6):
        grads = [rng.standard_normal(s) for s in shapes]
        for tensor, grad in zip(tensors, grads):
            tensor.grad = grad.copy()
        optimizer.step()
        _reference_adam_step(
            reference, grads, state, 0.01, (0.9, 0.999), 1e-8,
            weight_decay, step,
        )
        for tensor, want in zip(tensors, reference):
            np.testing.assert_array_equal(tensor.data, want)


# ----------------------------------------------------------------------
# content keys
# ----------------------------------------------------------------------
def test_graph_content_keys_unify_with_raw_array_hashing(small_sets):
    train_set, _ = small_sets
    graph = train_set[0]
    cache = AHatCache()
    mask = np.zeros(graph.n, dtype=bool)
    mask[: graph.n_real] = True
    # Raw-array lookup populates; graph-keyed lookup must hit it.
    cache.get(graph.adjacency, mask)
    cache.get_csr(graph.adjacency, mask, key=graph.content_key())
    assert cache.cache_info().misses == 1
    assert cache.cache_info().hits == 1


def test_content_keys_invalidate_after_in_place_mutation(small_sets):
    train_set, _ = small_sets
    graph = train_set[0]
    before_content = graph.content_key()
    before_embed = graph.embed_key()
    assert graph.content_key() is before_content  # cached, not recomputed
    graph.features[0, 0] += 1.0
    graph.invalidate_content_keys()
    assert graph.embed_key() != before_embed
    # features don't enter the Â key, adjacency does
    assert graph.content_key() == before_content
    graph.adjacency[0, 0] = 1.0
    graph.invalidate_content_keys()
    assert graph.content_key() != before_content
    # restore for other module-scoped tests
    graph.features[0, 0] -= 1.0
    graph.adjacency[0, 0] = 0.0
    graph.invalidate_content_keys()


def test_csr_matrix_caches_casts_and_transposes():
    rng = np.random.default_rng(2)
    a = CSRMatrix(_random_csr(rng, 6, 6))
    assert a.astype(np.float64) is a.matrix
    f32 = a.astype(np.float32)
    assert f32.dtype == np.float32
    assert a.astype(np.float32) is f32
    t64 = a.transpose()
    assert a.transpose() is t64
    t32 = a.transpose(np.float32)
    assert t32.dtype == np.float32
    np.testing.assert_allclose(
        t32.toarray(), a.matrix.toarray().T.astype(np.float32), atol=0
    )
