"""Content-addressed graph fingerprints (repro.obs.fingerprint_graph).

The serving cache keys explanations by this hash, so the properties
under test are exactly the cache-correctness properties: invariance
under node relabeling and padding, sensitivity to any content change,
and byte-for-byte determinism across processes.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.acfg import ACFG, from_sample
from repro.disasm import build_cfg, parse_program
from repro.malgen import generate_corpus
from repro.obs import fingerprint_graph


def _toy_acfg(seed: int = 0, n: int = 7) -> ACFG:
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    for i in range(n - 1):
        adjacency[i, i + 1] = 1.0
    adjacency[0, n - 1] = 2.0
    adjacency[n - 2, 1] = 2.0
    features = rng.integers(0, 20, size=(n, 12)).astype(float)
    return ACFG(adjacency=adjacency, features=features, label=0, family="toy")


def _permuted(graph: ACFG, permutation: np.ndarray) -> ACFG:
    adjacency = graph.adjacency[np.ix_(permutation, permutation)]
    features = graph.features[permutation]
    return ACFG(
        adjacency=adjacency, features=features, label=graph.label, family=graph.family
    )


def test_deterministic_within_process():
    graph = _toy_acfg()
    assert fingerprint_graph(graph) == fingerprint_graph(graph)


def test_permutation_invariant():
    graph = _toy_acfg()
    rng = np.random.default_rng(1)
    for _ in range(5):
        permutation = rng.permutation(graph.n)
        assert fingerprint_graph(_permuted(graph, permutation)) == fingerprint_graph(
            graph
        )


def test_padding_invariant():
    graph = _toy_acfg()
    assert fingerprint_graph(graph.padded(graph.n + 13)) == fingerprint_graph(graph)


def test_feature_edit_changes_fingerprint():
    graph = _toy_acfg()
    edited = _toy_acfg()
    edited.features[3, 5] += 1.0
    assert fingerprint_graph(edited) != fingerprint_graph(graph)


def test_edge_edit_changes_fingerprint():
    graph = _toy_acfg()
    added = _toy_acfg()
    added.adjacency[2, 5] = 1.0
    assert fingerprint_graph(added) != fingerprint_graph(graph)

    retyped = _toy_acfg()
    retyped.adjacency[0, 1] = 2.0  # unconditional → conditional branch
    assert fingerprint_graph(retyped) != fingerprint_graph(graph)


def test_non_isomorphic_relabel_changes_fingerprint():
    # Swapping two nodes' features WITHOUT swapping their adjacency rows
    # is a relabel that breaks isomorphism; the hash must notice.
    graph = _toy_acfg()
    broken = _toy_acfg()
    broken.features[[0, 4]] = broken.features[[4, 0]]
    assert fingerprint_graph(broken) != fingerprint_graph(graph)


def test_negative_zero_canonicalized():
    graph = _toy_acfg()
    signed = _toy_acfg()
    signed.features[0, 0] = 0.0
    graph.features[0, 0] = -0.0
    assert fingerprint_graph(signed) == fingerprint_graph(graph)


def test_structure_matters_beyond_features():
    # Same feature multiset, different wiring.
    chain = _toy_acfg()
    rewired = _toy_acfg()
    rewired.adjacency = np.zeros_like(chain.adjacency)
    for i in range(rewired.n - 1):
        rewired.adjacency[rewired.n - 1 - i, rewired.n - 2 - i] = 1.0
    assert fingerprint_graph(rewired) != fingerprint_graph(chain)


def test_corpus_fingerprints_unique():
    corpus = generate_corpus(2, seed=11)
    prints = {fingerprint_graph(from_sample(sample)) for sample in corpus}
    assert len(prints) == len(corpus)


def test_real_submission_roundtrip():
    text = """
    start:
        mov r1, 4
        cmp r1, 0
        jnz body
    body:
        add r1, r1
        jmp done
    done:
        ret
    """
    program = parse_program(textwrap.dedent(text), name="fp-demo")
    graph = from_sample_like(program)
    again = from_sample_like(program)
    assert fingerprint_graph(graph) == fingerprint_graph(again)


def from_sample_like(program):
    from repro.malgen.corpus import LabeledSample, block_motif_tags

    cfg = build_cfg(program)
    sample = LabeledSample(
        program=program,
        cfg=cfg,
        family="unknown",
        label=0,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )
    return from_sample(sample)


@pytest.mark.parametrize("seed", [0, 3])
def test_deterministic_across_processes(seed, tmp_path: Path):
    script = textwrap.dedent(
        f"""
        import numpy as np
        from repro.acfg import ACFG
        from repro.obs import fingerprint_graph

        rng = np.random.default_rng({seed})
        n = 7
        adjacency = np.zeros((n, n))
        for i in range(n - 1):
            adjacency[i, i + 1] = 1.0
        adjacency[0, n - 1] = 2.0
        adjacency[n - 2, 1] = 2.0
        features = rng.integers(0, 20, size=(n, 12)).astype(float)
        graph = ACFG(adjacency=adjacency, features=features, label=0, family="toy")
        print(fingerprint_graph(graph))
        """
    )
    src = Path(__file__).resolve().parent.parent / "src"
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "random"},
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == fingerprint_graph(_toy_acfg(seed=seed))
