; jumps to a label that is never defined
start:
    cmp eax, 0
    je nowhere_to_be_found
    ret
