; parses fine but the CFG is a single self-looping block
spin:
    nop
    jmp spin
