; labels with no code — trailing label gets the synthetic ret anchor
alpha:
beta:
gamma:
