; mnemonic outside the ISA — Instruction validation must raise
start:
    mov eax, 1
    frobnicate eax, ebx
    ret
