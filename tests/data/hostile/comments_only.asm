; a file with no instructions at all
; just commentary
; the parser yields an empty program and the CFG is empty

