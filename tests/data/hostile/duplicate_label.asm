; the same label defined twice — ambiguous jump target
loop:
    inc eax
loop:
    dec eax
    jmp loop
