; a bare colon is a label with no name
    mov eax, 1
:
    ret
