; memory operand bracket never closed
start:
    mov eax, [ebx + 4
    ret
