; string literal never closed — operand splitter must reject, not hang
start:
    mov eax, 'hello
    ret
