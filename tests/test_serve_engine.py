"""Engine layer: the single-submission request path (repro.serve.engine)."""

import numpy as np
import pytest

from repro.acfg import ACFG, IngestPolicy
from repro.acfg.graph import from_sample
from repro.harden import GraphSanitizer
from repro.reduce import ReduceConfig
from repro.serve import InferenceEngine, RequestRejected, submission_from_text


def test_submit_runs_full_path(serve_engine, serve_corpus):
    sample = serve_corpus[0]
    response = serve_engine.submit(sample)
    assert response.name == sample.program.name
    assert len(response.fingerprint) == 64
    assert response.probabilities.shape == (len(serve_engine.families),)
    assert np.isclose(response.probabilities.sum(), 1.0)
    assert response.family == serve_engine.families[response.predicted_class]
    assert response.explainer == "CFGExplainer"
    assert not response.cached
    explanation = response.explanation
    assert explanation.node_order.shape[0] == explanation.graph.n_real


def test_classify_matches_single_graph_path(serve_engine, serve_corpus):
    requests = [serve_engine.admit(sample) for sample in serve_corpus[:4]]
    batched = serve_engine.classify(requests)
    for request, probs in zip(requests, batched):
        single = serve_engine.gnn.predict_proba(request.graph)
        np.testing.assert_allclose(probs, single, atol=1e-8)


def test_fingerprint_stable_across_submissions(serve_engine, serve_corpus):
    first = serve_engine.admit(serve_corpus[0])
    second = serve_engine.admit(serve_corpus[0])
    assert first.fingerprint == second.fingerprint
    other = serve_engine.admit(serve_corpus[1])
    assert other.fingerprint != first.fingerprint


def test_bare_graph_submission_matches_sample_path(serve_engine, serve_corpus):
    sample = serve_corpus[0]
    via_sample = serve_engine.admit(sample)
    via_graph = serve_engine.admit(sample, graph=from_sample(sample))
    assert via_graph.fingerprint == via_sample.fingerprint
    response = serve_engine.submit_graph(from_sample(sample))
    assert response.fingerprint == via_sample.fingerprint


def test_submit_text_parses_and_serves(serve_engine):
    text = """
    start:
        mov r1, 4
        cmp r1, 0
        jnz body
    body:
        add r1, r1
        jmp done
    done:
        ret
    """
    response = serve_engine.submit_text(text, name="inline-demo")
    assert response.name == "inline-demo"
    assert response.explanation.node_order.size > 0


def test_hostile_graph_rejected_as_quarantine(serve_engine):
    adjacency = np.array([[0.0, 1.0], [0.0, 0.0]])
    features = np.full((2, 12), np.nan)
    hostile = ACFG(adjacency=adjacency, features=features, label=0, family="evil")
    with pytest.raises(RequestRejected) as excinfo:
        serve_engine.submit_graph(hostile)
    assert excinfo.value.reason == "quarantine"
    assert any(r.reason == "nan_feature" for r in excinfo.value.records)


def test_oversize_rejected_with_typed_reason(serve_corpus, serve_engine):
    tight = InferenceEngine(
        gnn=serve_engine.gnn,
        scaler=serve_engine.scaler,
        explainers=serve_engine.explainers,
        families=serve_engine.families,
        policy=IngestPolicy(
            on_bad_input="quarantine",
            verify="strict",
            sanitizer=GraphSanitizer(max_nodes=2),
        ),
    )
    with pytest.raises(RequestRejected) as excinfo:
        tight.submit(serve_corpus[0])
    assert excinfo.value.reason == "oversize"


def test_unknown_default_explainer_rejected(serve_engine):
    with pytest.raises(ValueError, match="unknown explainer"):
        InferenceEngine(
            gnn=serve_engine.gnn,
            scaler=serve_engine.scaler,
            explainers=serve_engine.explainers,
            families=serve_engine.families,
            default_explainer="nope",
        )


def test_reduced_engine_lifts_explanations(serve_engine, serve_corpus):
    reduced = InferenceEngine(
        gnn=serve_engine.gnn,
        scaler=serve_engine.scaler,
        explainers=serve_engine.explainers,
        families=serve_engine.families,
        policy=IngestPolicy(
            on_bad_input="quarantine", verify="strict", reduce=ReduceConfig()
        ),
    )
    sample = serve_corpus[0]
    request = reduced.admit(sample)
    original = from_sample(sample)
    if request.lift is None:
        pytest.skip("reduction was an identity on this sample")
    assert request.graph.n_real < original.n_real
    response = reduced.execute(request)
    # The explanation is lifted: it ranks *original* block indices.
    assert response.explanation.graph.n_real == original.n_real
    assert response.explanation.node_order.shape[0] == original.n_real


def test_from_artifacts_duck_types(serve_engine, serve_corpus):
    class FakeArtifacts:
        class config:
            on_bad_input = None
            verify_mode = "strict"
            reduce = None
            step_size = 10

        gnn = serve_engine.gnn
        scaler = serve_engine.scaler
        explainers = serve_engine.explainers

        class train_set:
            families = serve_engine.families

    engine = InferenceEngine.from_artifacts(FakeArtifacts())
    # Serving never trusts input: on_bad_input=None is upgraded.
    assert engine.policy.on_bad_input == "quarantine"
    response = engine.submit(serve_corpus[0])
    assert response.fingerprint == serve_engine.submit(serve_corpus[0]).fingerprint


def test_submission_from_text_shape():
    sample = submission_from_text("a:\n  ret\n", name="tiny")
    assert sample.program.name == "tiny"
    assert sample.family == "unknown"
    assert len(sample.block_tags) == len(sample.cfg.blocks)
