"""Static reduction: chain collapse, feature merging, lift maps.

Covers the documented contracts of ``repro.reduce``: collapse
idempotence (default config), the feature-aggregation arithmetic
(sum everything, recompute offspring), lift-map round-trips (partition
+ conserved importance mass), composition with the hostile-input
quarantine, and GNN parity where reduction is a no-op.
"""

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.acfg import ACFGDataset
from repro.acfg.features import NUM_FEATURES
from repro.acfg.graph import ACFG, from_sample
from repro.disasm.cfg import CFGBuildError, build_cfg
from repro.disasm.parser import ParseError, parse_program
from repro.eval.pipeline import ExperimentConfig
from repro.explain.base import ladder_from_order
from repro.explain.explanation import Explanation
from repro.gnn.model import GCNClassifier
from repro.malgen import generate_corpus
from repro.malgen.corpus import LabeledSample, block_motif_tags
from repro.malgen.families import FAMILIES
from repro.nn import NumericalError, no_grad
from repro.reduce import (
    PRUNED,
    LiftMap,
    ReduceConfig,
    merge_stats,
    reduce_acfg,
    reduce_sample,
)

HOSTILE_DIR = Path(__file__).parent / "data" / "hostile"

AGGRESSIVE = ReduceConfig(
    prune_dead_stores=True,
    filter_leaves=True,
    leaf_max_in_degree=8,
    max_rounds=8,
)


def make_acfg(adjacency, features=None, name="t", block_tags=()):
    adjacency = np.asarray(adjacency, dtype=float)
    n = adjacency.shape[0]
    if features is None:
        features = np.arange(n * NUM_FEATURES, dtype=float).reshape(
            n, NUM_FEATURES
        )
    return ACFG(
        adjacency=adjacency,
        features=np.asarray(features, dtype=float),
        label=0,
        family=FAMILIES[0],
        name=name,
        n_real=n,
        block_tags=tuple(block_tags),
    )


def chain3():
    """0 → 1 → 2, pure fallthrough: one maximal chain."""
    return make_acfg([[0, 1, 0], [0, 0, 1], [0, 0, 0]])


def diamond():
    """0 → {1, 2} → 3: no chain anywhere, reduction is a no-op.

    The offspring column is set to the true successor counts so the
    no-op reduction's offspring recomputation changes nothing.
    """
    features = np.arange(4 * NUM_FEATURES, dtype=float).reshape(4, NUM_FEATURES)
    features[:, 10] = [2.0, 1.0, 1.0, 0.0]
    return make_acfg(
        [
            [0, 1, 1, 0],
            [0, 0, 0, 1],
            [0, 0, 0, 1],
            [0, 0, 0, 0],
        ],
        features=features,
    )


@pytest.fixture(scope="module")
def small_corpus():
    return generate_corpus(2, seed=11, families=FAMILIES[:3])


class TestChainCollapse:
    def test_linear_chain_collapses_to_one_supernode(self):
        result = reduce_acfg(chain3())
        assert result.graph.n_real == 1
        assert result.lift.members == ((0, 1, 2),)
        assert result.stats.chains_collapsed == 1
        # blocks_merged counts every member of a collapsed chain
        assert result.stats.blocks_merged == 3

    def test_entry_stays_index_zero(self):
        # 0 → 1, 0 → 2, 2 → 3 (chain 2-3 merges; entry must stay first)
        graph = make_acfg(
            [
                [0, 1, 1, 0],
                [0, 0, 0, 0],
                [0, 0, 0, 1],
                [0, 0, 0, 0],
            ]
        )
        result = reduce_acfg(graph)
        assert result.lift.super_of[0] == 0
        assert result.lift.members[0] == (0,)
        assert result.lift.members[2] == (2, 3)

    def test_retreating_edge_never_merges(self):
        # 0 → 1 → 2 → 1: the loop body must not fold into the header.
        graph = make_acfg([[0, 1, 0], [0, 0, 1], [0, 1, 0]])
        result = reduce_acfg(graph)
        # 1 → 2 is a legal merge (2's only pred is 1, and 1's only
        # weight-1 succ is 2); the back edge 2 → 1 becomes a self-loop
        # but 1 itself is never absorbed into 0's chain because 1 has
        # two predecessors.
        assert result.lift.super_of[0] == 0
        assert result.lift.members[0] == (0,)

    def test_call_edges_do_not_break_chains(self):
        # 0 → 1 (fallthrough) with a call edge 0 → 2; 1 still merges.
        graph = make_acfg(
            [
                [0, 1, 2],
                [0, 0, 0],
                [0, 0, 0],
            ]
        )
        result = reduce_acfg(graph)
        assert result.lift.members[0] == (0, 1)
        assert set(np.unique(result.graph.adjacency)) <= {0.0, 1.0, 2.0}

    def test_max_chain_length_caps_merges(self):
        graph = make_acfg(np.diag([1.0, 1.0, 1.0], k=1))  # 0→1→2→3
        capped = reduce_acfg(graph, config=ReduceConfig(max_chain_length=2))
        assert max(len(m) for m in capped.lift.members) <= 2
        free = reduce_acfg(graph)
        assert free.graph.n_real == 1

    def test_default_config_idempotent(self, small_corpus):
        for sample in small_corpus:
            once = reduce_acfg(from_sample(sample))
            twice = reduce_acfg(once.graph)
            assert twice.lift.is_identity, sample.program.name
            np.testing.assert_array_equal(
                twice.graph.adjacency, once.graph.adjacency
            )
            np.testing.assert_array_equal(
                twice.graph.features, once.graph.features
            )

    def test_unreachable_blocks_pruned(self):
        # Block 2 is unreachable from entry.
        graph = make_acfg([[0, 1, 0], [0, 0, 0], [0, 1, 0]])
        result = reduce_acfg(
            graph, config=ReduceConfig(collapse_chains=False)
        )
        assert result.stats.unreachable_pruned == 1
        assert result.lift.super_of[2] == PRUNED


class TestFeatureMerge:
    def test_features_sum_and_offspring_recomputed(self):
        features = np.ones((3, NUM_FEATURES))
        features[1] = 2.0
        features[2] = 4.0
        result = reduce_acfg(chain3(), config=ReduceConfig())
        merged = reduce_acfg(make_acfg(chain3().adjacency, features)).graph
        assert result.graph.n_real == 1
        # Every column sums across members...
        from repro.reduce.passes import OFFSPRING_COLUMN

        for column in range(NUM_FEATURES):
            if column == OFFSPRING_COLUMN:
                continue
            assert merged.features[0, column] == pytest.approx(7.0)
        # ...except offspring, recomputed on the reduced structure
        # (a single node with no successors has offspring 0).
        assert merged.features[0, OFFSPRING_COLUMN] == 0.0

    def test_offspring_counts_reduced_successors(self):
        # 0 → 1 → {2, 3}: chain (0,1) merges, keeping two successors.
        graph = make_acfg(
            [
                [0, 1, 0, 0],
                [0, 0, 1, 1],
                [0, 0, 0, 0],
                [0, 0, 0, 0],
            ],
            features=np.ones((4, NUM_FEATURES)),
        )
        result = reduce_acfg(graph)
        from repro.reduce.passes import OFFSPRING_COLUMN

        assert result.lift.members[0] == (0, 1)
        assert result.graph.features[0, OFFSPRING_COLUMN] == 2.0

    def test_block_tags_union(self):
        tags = (frozenset({"a"}), frozenset({"b"}), frozenset())
        result = reduce_acfg(make_acfg(chain3().adjacency, block_tags=tags))
        assert result.graph.block_tags[0] == frozenset({"a", "b"})

    def test_nonfinite_merge_raises_numerical_error(self):
        features = np.full((3, NUM_FEATURES), 1e308)
        graph = make_acfg(chain3().adjacency, features)
        with pytest.raises(NumericalError):
            reduce_acfg(graph)

    def test_mass_totals_preserved_on_corpus(self, small_corpus):
        from repro.reduce.passes import OFFSPRING_COLUMN

        for sample in small_corpus:
            graph = from_sample(sample)
            result = reduce_acfg(graph)
            for column in range(NUM_FEATURES):
                if column == OFFSPRING_COLUMN:
                    continue
                assert result.graph.features[:, column].sum() == pytest.approx(
                    graph.features[: graph.n_real, column].sum()
                ), (sample.program.name, column)


class TestLiftMap:
    def test_every_block_has_exactly_one_home(self, small_corpus):
        for sample in small_corpus:
            graph = from_sample(sample)
            result = reduce_sample(sample, config=AGGRESSIVE)
            lift = result.lift
            assert lift.original_n == graph.n_real
            counted = sum(len(m) for m in lift.members)
            assert counted + len(lift.pruned_blocks) == lift.original_n
            for s, member in enumerate(lift.members):
                for index in member:
                    assert lift.super_of[index] == s

    def test_importance_mass_conserved(self, small_corpus):
        rng = np.random.default_rng(5)
        for sample in small_corpus:
            result = reduce_sample(sample, config=AGGRESSIVE)
            scores = rng.random(result.graph.n_real)
            lifted = result.lift.lift_scores(scores)
            assert lifted.sum() == pytest.approx(scores.sum())
            assert np.all(lifted[result.lift.pruned_blocks] == 0.0)

    def test_lift_order_is_permutation(self, small_corpus):
        rng = np.random.default_rng(6)
        for sample in small_corpus:
            result = reduce_sample(sample, config=AGGRESSIVE)
            order = rng.permutation(result.graph.n_real)
            lifted = result.lift.lift_order(order)
            np.testing.assert_array_equal(
                np.sort(lifted), np.arange(result.lift.original_n)
            )

    def test_round_trip_through_dict(self, small_corpus):
        sample = small_corpus[0]
        lift = reduce_sample(sample, config=AGGRESSIVE).lift
        restored = LiftMap.from_dict(json.loads(json.dumps(lift.to_dict())))
        assert restored.members == lift.members
        np.testing.assert_array_equal(restored.super_of, lift.super_of)

    def test_lift_explanation_rebuilds_ladder(self, small_corpus):
        sample = small_corpus[0]
        original = from_sample(sample)
        result = reduce_acfg(original)
        reduced = result.graph
        order = np.arange(reduced.n_real)[::-1].copy()
        explanation = Explanation(
            graph=reduced,
            explainer_name="unit",
            predicted_class=0,
            node_order=order,
            levels=ladder_from_order(reduced, order, 20),
            node_scores=np.linspace(1.0, 0.0, reduced.n_real),
        )
        lifted = result.lift.lift_explanation(explanation, original)
        assert lifted.graph is original
        assert len(lifted.levels) == len(explanation.levels)
        np.testing.assert_array_equal(
            np.sort(lifted.node_order), np.arange(original.n_real)
        )
        assert lifted.node_scores.sum() == pytest.approx(
            explanation.node_scores.sum()
        )

    def test_identity_map(self):
        lift = LiftMap.identity(4)
        assert lift.is_identity
        np.testing.assert_array_equal(
            lift.lift_scores(np.array([1.0, 2.0, 3.0, 4.0])),
            [1.0, 2.0, 3.0, 4.0],
        )


class TestHostileCompose:
    @pytest.mark.parametrize(
        "path", sorted(HOSTILE_DIR.glob("*.asm")), ids=lambda p: p.stem
    )
    def test_hostile_listing_never_crashes_reduction(self, path):
        """Every hostile listing: typed rejection upstream, or reduce cleanly."""
        try:
            program = parse_program(path.read_text(), name=path.stem)
            cfg = build_cfg(program)
        except (ParseError, CFGBuildError):
            return  # rejected before reduction — the quarantine contract
        sample = LabeledSample(
            program=program,
            cfg=cfg,
            family=FAMILIES[0],
            label=0,
            motif_spans=[],
            block_tags=block_motif_tags(cfg, []),
        )
        try:
            result = reduce_sample(sample, config=AGGRESSIVE)
        except (ValueError, NumericalError):
            return  # typed rejection is also a pass
        assert np.all(np.isfinite(result.graph.features))
        assert result.graph.n_real <= sample.cfg.node_count

    def test_from_corpus_reduce_with_quarantine(self, small_corpus):
        dataset = ACFGDataset.from_corpus(
            small_corpus,
            reduce=ReduceConfig(),
            on_bad_input="quarantine",
        )
        assert len(dataset.lift_maps) == len(dataset)
        for graph in dataset:
            lift = dataset.lift_map_for(graph.name)
            assert lift is not None
            assert lift.num_supernodes == graph.n_real

    def test_dataset_stats_aggregate(self, small_corpus):
        per_graph = [
            reduce_sample(sample, config=AGGRESSIVE).stats
            for sample in small_corpus
        ]
        totals = merge_stats(per_graph)
        assert totals.nodes_before == sum(s.nodes_before for s in per_graph)
        assert totals.nodes_after == sum(s.nodes_after for s in per_graph)
        assert totals.node_compression >= 1.0


class TestNoopParity:
    def test_diamond_is_identity_and_gnn_agrees(self):
        graph = diamond()
        result = reduce_acfg(graph)
        assert result.lift.is_identity
        model = GCNClassifier(
            in_features=NUM_FEATURES, hidden=(8, 8), rng=np.random.default_rng(0)
        )
        with no_grad():
            _, probs_original = model.forward_acfg(graph)
            _, probs_reduced = model.forward_acfg(result.graph)
        np.testing.assert_allclose(
            probs_reduced.numpy(), probs_original.numpy(), atol=0
        )

    def test_noop_config_returns_identity(self):
        graph = chain3()
        config = ReduceConfig(collapse_chains=False, prune_unreachable=False)
        assert config.is_noop
        result = reduce_acfg(graph, config=config)
        assert result.lift.is_identity
        np.testing.assert_array_equal(result.graph.adjacency, graph.adjacency)


class TestConfigPlumbing:
    def test_experiment_config_json_round_trip(self):
        config = ExperimentConfig(
            samples_per_family=2,
            reduce=ReduceConfig(filter_leaves=True, leaf_max_in_degree=3),
        )
        restored = ExperimentConfig(**json.loads(json.dumps(asdict(config))))
        assert restored == config
        assert isinstance(restored.reduce, ReduceConfig)

    def test_reduce_config_validation(self):
        with pytest.raises(ValueError):
            ReduceConfig(max_chain_length=1)
        with pytest.raises(ValueError):
            ReduceConfig(max_rounds=0)
        with pytest.raises(ValueError):
            ReduceConfig(leaf_max_in_degree=-1)

    def test_dataset_split_shares_lift_maps(self, small_corpus):
        from repro.acfg import train_test_split

        dataset = ACFGDataset.from_corpus(small_corpus, reduce=ReduceConfig())
        train, test = train_test_split(dataset, test_fraction=0.5, seed=0)
        assert train.lift_maps is dataset.lift_maps
        assert test.lift_maps is dataset.lift_maps
