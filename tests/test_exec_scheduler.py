"""Tests for the repro.exec process-pool scheduler."""

import os
import time

import pytest

from repro.exec import (
    RetryPolicy,
    Task,
    TaskFailure,
    TaskSuccess,
    WorkerInitError,
    run_tasks,
)

FAST_RETRY = RetryPolicy(max_retries=1, backoff_seconds=0.01)
NO_RETRY = RetryPolicy(max_retries=0)


# Task/init functions must be module-level so spawned workers can
# unpickle them.
def _double_spec(spec):
    return spec * 2


def _add_square(context, payload):
    return context + payload**2


def _raise_always(context, payload):
    raise ValueError(f"boom {payload}")


def _crash_on_bad(context, payload):
    if payload == "bad":
        os._exit(13)
    return payload


def _sleep_for(context, payload):
    time.sleep(payload)
    return "slept"


def _fail_until_marker(context, payload):
    """Fails once, then succeeds: flips a marker file on first attempt."""
    marker = payload
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("x")
        raise RuntimeError("first attempt fails")
    return "recovered"


def _bad_init(spec):
    raise RuntimeError("no context for you")


class TestInline:
    def test_success_and_order(self):
        out = run_tasks(
            [Task("a", 2), Task("b", 3)], _add_square, init_fn=_double_spec, spec=5
        )
        assert [o.value for o in out] == [14, 19]
        assert all(isinstance(o, TaskSuccess) and o.attempts == 1 for o in out)
        assert all(o.worker_id is None for o in out)

    def test_failure_becomes_record(self):
        out = run_tasks([Task("x", 1)], _raise_always, retry=NO_RETRY)
        (failure,) = out
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "exception"
        assert "boom 1" in failure.message
        assert failure.attempts == 1
        assert "ValueError" in failure.traceback

    def test_retry_then_success(self, tmp_path):
        marker = str(tmp_path / "marker")
        out = run_tasks(
            [Task("flaky", marker)], _fail_until_marker, retry=FAST_RETRY
        )
        (success,) = out
        assert success.ok and success.value == "recovered"
        assert success.attempts == 2

    def test_retry_exhausted_counts_attempts(self):
        out = run_tasks(
            [Task("x", 1)],
            _raise_always,
            retry=RetryPolicy(max_retries=2, backoff_seconds=0.0),
        )
        assert out[0].attempts == 3

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_tasks([Task("k", 1), Task("k", 2)], _add_square)

    def test_on_result_streams_outcomes(self):
        seen = []
        run_tasks(
            [Task("a", 1), Task("b", 2)],
            _add_square,
            spec=0,
            on_result=seen.append,
        )
        assert [o.key for o in seen] == ["a", "b"]


class TestPool:
    def test_matches_inline_results(self):
        tasks = [Task(f"t{i}", i) for i in range(6)]
        inline = run_tasks(tasks, _add_square, init_fn=_double_spec, spec=5)
        pooled = run_tasks(
            tasks, _add_square, init_fn=_double_spec, spec=5, num_workers=3
        )
        assert [o.value for o in pooled] == [o.value for o in inline]
        assert all(o.worker_id is not None for o in pooled)

    def test_worker_crash_degrades_to_failure(self):
        out = run_tasks(
            [Task("good", "g"), Task("bad", "bad")],
            _crash_on_bad,
            num_workers=2,
            retry=FAST_RETRY,
        )
        by_key = {o.key: o for o in out}
        assert by_key["good"].ok and by_key["good"].value == "g"
        failure = by_key["bad"]
        assert not failure.ok
        assert failure.kind == "crash"
        assert failure.attempts == 2  # retried once, crashed again
        assert "exit code" in failure.message

    def test_timeout_kills_and_records(self):
        out = run_tasks(
            [Task("slow", 10.0), Task("fast", 0.01)],
            _sleep_for,
            num_workers=2,
            timeout_seconds=0.5,
            retry=NO_RETRY,
        )
        by_key = {o.key: o for o in out}
        assert by_key["fast"].ok
        assert by_key["slow"].kind == "timeout"

    def test_exception_in_worker_is_typed(self):
        out = run_tasks(
            [Task("x", 7)], _raise_always, num_workers=2, retry=NO_RETRY
        )
        assert out[0].kind == "exception"
        assert "boom 7" in out[0].message

    def test_init_failure_aborts_run(self):
        with pytest.raises(WorkerInitError, match="no context for you"):
            run_tasks(
                [Task("x", 1)], _add_square, init_fn=_bad_init, num_workers=2
            )

    def test_empty_task_list(self):
        assert run_tasks([], _add_square, num_workers=2) == []
