"""Tests for stage-level checkpoint/resume of run_pipeline."""

from dataclasses import replace

import numpy as np
import pytest

from repro.eval import ExperimentConfig, run_pipeline
from repro.eval.pipeline import PIPELINE_STAGES, PipelineInterrupted
from repro.obs import metrics_registry

TINY = ExperimentConfig(
    samples_per_family=2,
    gnn_hidden=(8, 4),
    gnn_epochs=3,
    explainer_epochs=5,
    gnnexplainer_epochs=2,
    pgexplainer_epochs=1,
    subgraphx_iterations=2,
    subgraphx_shapley_samples=1,
    step_size=20,
)


@pytest.fixture(scope="module")
def reference():
    """An uncheckpointed run — ground truth for every resumed variant."""
    return run_pipeline(TINY)


def assert_same_models(a, b):
    for pa, pb in zip(a.gnn.parameters(), b.gnn.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
    ta = a.explainers["CFGExplainer"].theta
    tb = b.explainers["CFGExplainer"].theta
    for pa, pb in zip(ta.parameters(), tb.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
    graph = a.test_set.graphs[0]
    np.testing.assert_allclose(
        a.gnn.predict_proba(graph), b.gnn.predict_proba(graph), atol=1e-12
    )


class TestStageResume:
    def test_full_resume_restores_every_stage(self, reference, tmp_path):
        run_dir = tmp_path / "run"
        first = run_pipeline(TINY, resume_from=run_dir)
        assert_same_models(first, reference)

        before = metrics_registry().snapshot()
        resumed = run_pipeline(TINY, resume_from=run_dir)
        delta = metrics_registry().delta_since(before)
        assert delta.get("pipeline.stage.restored", 0) == len(PIPELINE_STAGES)
        assert not delta.get("pipeline.stage.persisted", 0)
        assert_same_models(resumed, reference)
        assert resumed.gnn_test_accuracy == pytest.approx(
            reference.gnn_test_accuracy
        )
        assert resumed.offline_training_seconds["CFGExplainer"] > 0

    def test_interrupt_after_gnn_resumes_without_retraining(
        self, reference, tmp_path
    ):
        run_dir = tmp_path / "run"
        with pytest.raises(PipelineInterrupted) as excinfo:
            run_pipeline(TINY, resume_from=run_dir, stop_after="gnn")
        assert excinfo.value.stage == "gnn"
        gnn_path = run_dir / "stages" / "gnn" / "gnn.npz"
        gnn_bytes = gnn_path.read_bytes()
        # later stages never ran
        assert not (run_dir / "stages" / "theta").exists()

        resumed = run_pipeline(TINY, resume_from=run_dir)
        # the checkpoint was restored, not rewritten by a retrain
        assert gnn_path.read_bytes() == gnn_bytes
        assert_same_models(resumed, reference)

    def test_stop_after_each_stage_then_resume(self, reference, tmp_path):
        run_dir = tmp_path / "run"
        for stage in PIPELINE_STAGES:
            with pytest.raises(PipelineInterrupted):
                run_pipeline(TINY, resume_from=run_dir, stop_after=stage)
        resumed = run_pipeline(TINY, resume_from=run_dir)
        assert_same_models(resumed, reference)

    def test_incompatible_config_rejected(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(PipelineInterrupted):
            run_pipeline(TINY, resume_from=run_dir, stop_after="corpus")
        with pytest.raises(ValueError, match="incompatible"):
            run_pipeline(replace(TINY, seed=1), resume_from=run_dir)

    def test_execution_knobs_may_change_between_runs(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(PipelineInterrupted):
            run_pipeline(TINY, resume_from=run_dir, stop_after="corpus")
        # worker count is execution-only; resuming with it changed is fine
        run_pipeline(replace(TINY, num_workers=4), resume_from=run_dir)

    def test_stop_after_requires_resume_dir(self):
        with pytest.raises(ValueError, match="resume_from"):
            run_pipeline(TINY, stop_after="gnn")

    def test_unknown_stage_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="stop_after"):
            run_pipeline(TINY, resume_from=tmp_path / "r", stop_after="nope")
