"""Integration tests for the evaluation harness (tiny configuration)."""

import numpy as np
import pytest

from repro.eval import (
    ExperimentConfig,
    PAPER_SCALE_CONFIG,
    build_table3,
    format_figure2,
    format_table3,
    format_table4,
    measure_timings,
    run_pipeline,
    sweep_all_families,
)
from repro.malgen import FAMILIES


TINY = ExperimentConfig(
    samples_per_family=3,
    gnn_hidden=(16, 8),
    gnn_epochs=10,
    explainer_epochs=15,
    gnnexplainer_epochs=5,
    pgexplainer_epochs=2,
    subgraphx_iterations=5,
    subgraphx_shapley_samples=2,
)


@pytest.fixture(scope="module")
def artifacts():
    return run_pipeline(TINY)


class TestPipeline:
    def test_artifacts_complete(self, artifacts):
        assert len(artifacts.corpus) == 3 * len(FAMILIES)
        assert len(artifacts.train_set) + len(artifacts.test_set) == len(
            artifacts.corpus
        )
        assert set(artifacts.explainers) == {
            "CFGExplainer",
            "GNNExplainer",
            "SubgraphX",
            "PGExplainer",
            "CFExplainer",
        }
        assert 0.0 <= artifacts.gnn_test_accuracy <= 1.0

    def test_offline_times_recorded(self, artifacts):
        offline = artifacts.offline_training_seconds
        assert offline["CFGExplainer"] > 0
        assert offline["PGExplainer"] > 0
        assert offline["GNNExplainer"] == 0.0
        assert offline["SubgraphX"] == 0.0
        assert offline["CFExplainer"] == 0.0

    def test_sample_lookup(self, artifacts):
        graph = artifacts.test_set.graphs[0]
        sample = artifacts.sample_for(graph.name)
        assert sample.family == graph.family

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(samples_per_family=1)

    def test_paper_scale_config_documents_paper_values(self):
        assert PAPER_SCALE_CONFIG.gnn_hidden == (1024, 512, 128)
        assert PAPER_SCALE_CONFIG.samples_per_family * 12 == 1056


class TestSweepAndTables:
    @pytest.fixture(scope="class")
    def sweeps(self, artifacts):
        # Two explainers keep this fast; the benches run all four.
        subset = {
            name: artifacts.explainers[name]
            for name in ("CFGExplainer", "PGExplainer")
        }
        return sweep_all_families(
            artifacts.gnn, subset, artifacts.test_set, step_size=20
        )

    def test_sweeps_cover_all_families(self, sweeps, artifacts):
        families_in_test = {g.family for g in artifacts.test_set}
        assert set(sweeps) == families_in_test

    def test_curves_end_at_one(self, sweeps):
        for by_explainer in sweeps.values():
            for sweep in by_explainer.values():
                assert sweep.accuracies[-1] == 1.0  # 100% graph = original prediction

    def test_auc_in_unit_interval(self, sweeps):
        for by_explainer in sweeps.values():
            for sweep in by_explainer.values():
                assert 0.0 <= sweep.auc <= 1.0

    def test_table3_has_average_row(self, sweeps):
        rows = build_table3(sweeps)
        assert rows[-1].family == "Average"
        text = format_table3(rows)
        assert "CFGExplainer" in text
        assert "Average" in text

    def test_table3_average_is_mean(self, sweeps):
        rows = build_table3(sweeps)
        body = [r for r in rows if r.family != "Average"]
        average = rows[-1]
        for name, cell in average.cells.items():
            manual = np.mean([r.cells[name] for r in body if name in r.cells], axis=0)
            np.testing.assert_allclose(cell, manual)

    def test_figure2_renders_all_series(self, sweeps):
        text = format_figure2(sweeps)
        for family in sweeps:
            assert family in text
        assert "AUC" in text


class TestTiming:
    def test_timings_measured(self, artifacts):
        graphs = artifacts.test_set.graphs[:2]
        subset = {
            name: artifacts.explainers[name]
            for name in ("CFGExplainer", "GNNExplainer")
        }
        timings = measure_timings(
            subset, graphs, artifacts.offline_training_seconds
        )
        assert {t.explainer_name for t in timings} == set(subset)
        for timing in timings:
            assert timing.mean_seconds > 0
            assert timing.samples == 2
        text = format_table4(timings)
        assert "Offline training" in text

    def test_empty_graphs_raise(self, artifacts):
        with pytest.raises(ValueError):
            measure_timings(artifacts.explainers, [])
