"""Resilience through the daemon: retries, ladder, deadlines, breakers.

Driven two ways, mirroring ``test_serve_daemon``:

* A scripted engine double whose classify/execute stages fail on
  command — deterministic coverage of the retry loop, the explainer
  degradation ladder, deadline drops, breaker trip/shed/recover, and
  the ``stop()`` drain under a faulting batch.
* The real session engine under a :class:`~repro.resilience.FaultPlan`
  with probability-one faults — end-to-end proof that injected chaos
  comes back as typed :class:`DegradedResponse` objects, and that an
  *empty* plan leaves serving bit-identical to a direct
  ``InferenceEngine.submit``.
"""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.exec import RetryPolicy
from repro.obs import metrics_registry
from repro.resilience import FaultPlan, FaultSpec, ResilienceConfig
from repro.serve import (
    DaemonConfig,
    DegradedResponse,
    EngineResponse,
    ExplanationCache,
    PreparedRequest,
    ServeDaemon,
)


def _sample(name: str) -> SimpleNamespace:
    return SimpleNamespace(program=SimpleNamespace(name=name), family="fake")


def _explanation() -> SimpleNamespace:
    return SimpleNamespace(
        node_order=np.array([0]), node_scores=np.array([1.0])
    )


class ScriptedEngine:
    """Engine double whose stage failures are scripted by the test."""

    default_explainer = "CFGExplainer"
    families = ("fake", "other")

    def __init__(self, classify_failures: int = 0, failing_explainers=()):
        self.classify_failures = classify_failures
        self.failing_explainers = set(failing_explainers)
        self.classify_calls = 0
        self.execute_calls: list[str] = []
        self.explainers = {"CFGExplainer": object(), "Gradient": object()}
        self.gate = threading.Event()
        self.gate.set()
        self.entered = threading.Event()

    def admit(self, sample, graph=None, deadline=None, stage_hook=None):
        if stage_hook is not None:
            for stage in ("sanitize", "verify", "reduce"):
                stage_hook(stage)
        return PreparedRequest(
            sample=sample,
            graph=None,
            fingerprint=f"fp-{sample.program.name}",
            deadline=deadline,
        )

    def classify(self, requests):
        self.entered.set()
        assert self.gate.wait(timeout=10), "classify gate never released"
        self.classify_calls += 1
        if self.classify_failures > 0:
            self.classify_failures -= 1
            raise RuntimeError("scripted classify failure")
        return np.tile([0.75, 0.25], (len(requests), 1))

    def execute(self, request, probabilities=None, explainer=None):
        name = explainer or self.default_explainer
        self.execute_calls.append(name)
        if name in self.failing_explainers:
            raise RuntimeError(f"scripted {name} failure")
        return EngineResponse(
            name=request.sample.program.name,
            fingerprint=request.fingerprint,
            probabilities=np.asarray(probabilities, dtype=float),
            predicted_class=0,
            family="fake",
            explainer=name,
            explanation=_explanation(),
        )


def _config(**resilience) -> DaemonConfig:
    return DaemonConfig(
        cache_capacity=0, resilience=ResilienceConfig(**resilience)
    )


# ----------------------------------------------------------------------
# bounded retry
# ----------------------------------------------------------------------
def test_transient_classify_fault_retried_to_full_response():
    # Failure 1 hits the batched fast path, failure 2 the per-ticket
    # attempt; the bounded retry's second attempt then succeeds.
    engine = ScriptedEngine(classify_failures=2)
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, _config()) as daemon:
        response = daemon.submit(_sample("a"))
    assert not response.degraded
    assert not isinstance(response, DegradedResponse)
    np.testing.assert_allclose(response.probabilities, [0.75, 0.25])
    delta = metrics_registry().delta_since(before)
    assert delta.get("resilience.retry.classify", 0) >= 1


# ----------------------------------------------------------------------
# explainer degradation ladder
# ----------------------------------------------------------------------
def test_explain_fault_falls_back_to_gradient():
    engine = ScriptedEngine(failing_explainers={"CFGExplainer"})
    config = DaemonConfig(  # cache on: the fallback must NOT be cached
        cache_capacity=8, resilience=ResilienceConfig(breaker_threshold=100)
    )
    with ServeDaemon(engine, config) as daemon:
        response = daemon.submit(_sample("a"))
        repeat = daemon.submit(_sample("a"))
    assert isinstance(response, DegradedResponse)
    assert response.degradation_reason == "explainer_fallback"
    assert response.explainer == "Gradient"
    assert response.explanation is not None
    assert response.failed_stage == "explain"
    np.testing.assert_allclose(response.probabilities, [0.75, 0.25])
    # Degraded responses never enter the cache: the repeat re-ran the
    # ladder (execute called again) instead of replaying the fault.
    assert len(daemon.cache) == 0
    assert repeat.degradation_reason == "explainer_fallback"
    assert not repeat.cached


def test_persistent_explain_failure_serves_classification_only():
    engine = ScriptedEngine(failing_explainers={"CFGExplainer", "Gradient"})
    with ServeDaemon(engine, _config(breaker_threshold=100)) as daemon:
        response = daemon.submit(_sample("a"))
    assert isinstance(response, DegradedResponse)
    assert response.degradation_reason == "classification_only"
    assert response.explanation is None
    # The classification fields are the real ones, not placeholders.
    assert response.predicted_class == 0
    assert response.family == "fake"
    np.testing.assert_allclose(response.probabilities, [0.75, 0.25])


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_expired_ticket_dropped_from_queue():
    engine = ScriptedEngine()
    engine.gate.clear()  # first ticket stalls inside classify
    config = DaemonConfig(
        max_batch=1,
        batch_window_ms=0.0,
        cache_capacity=0,
        resilience=ResilienceConfig(deadline_ms=150.0),
    )
    before = metrics_registry().snapshot()
    responses: dict[str, EngineResponse] = {}
    with ServeDaemon(engine, config) as daemon:
        threads = [
            threading.Thread(
                target=lambda n: responses.__setitem__(n, daemon.submit(_sample(n))),
                args=(name,),
            )
            for name in ("a", "b")
        ]
        threads[0].start()
        assert engine.entered.wait(timeout=5)
        threads[1].start()  # queued behind the stalled batch
        time.sleep(0.25)  # both deadlines expire while "b" queues
        engine.gate.set()
        for thread in threads:
            thread.join(timeout=10)
    assert isinstance(responses["b"], DegradedResponse)
    assert responses["b"].degradation_reason == "deadline"
    assert responses["b"].failed_stage == "queue"
    assert responses["b"].failure_kind == "timeout"
    delta = metrics_registry().delta_since(before)
    assert delta.get("resilience.deadline.dropped", 0) == 1


# ----------------------------------------------------------------------
# circuit breaker through the daemon
# ----------------------------------------------------------------------
def test_breaker_trips_then_sheds_requests():
    engine = ScriptedEngine(classify_failures=10**6)
    config = _config(
        retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
        breaker_threshold=3,
        breaker_cooldown_ms=60_000.0,
    )
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, config) as daemon:
        first = [daemon.submit(_sample(f"g{i}")) for i in range(3)]
        shed = daemon.submit(_sample("g3"))
    for response in first:
        assert response.degradation_reason == "unavailable"
        assert response.failed_stage == "classify"
    assert shed.degradation_reason == "breaker_open"
    delta = metrics_registry().delta_since(before)
    assert delta.get("resilience.breaker.classify.trip", 0) == 1
    assert delta.get("resilience.breaker.classify.short_circuit", 0) >= 1


def test_breaker_recovers_via_half_open_probe():
    # Exactly 6 scripted failures: 3 submissions consume two each (the
    # batched fast path plus the per-ticket attempt) and trip the
    # breaker; after the 1 ms cooldown the 4th submission is the
    # half-open probe, succeeds, and closes the breaker.
    engine = ScriptedEngine(classify_failures=6)
    config = _config(
        retry=RetryPolicy(max_retries=0, backoff_seconds=0.0),
        breaker_threshold=3,
        breaker_cooldown_ms=1.0,
    )
    before = metrics_registry().snapshot()
    with ServeDaemon(engine, config) as daemon:
        for i in range(3):
            assert daemon.submit(_sample(f"g{i}")).degraded
        time.sleep(0.005)
        recovered = daemon.submit(_sample("g3"))
    assert not recovered.degraded
    np.testing.assert_allclose(recovered.probabilities, [0.75, 0.25])
    delta = metrics_registry().delta_since(before)
    assert delta.get("resilience.breaker.classify.trip", 0) == 1
    assert delta.get("resilience.breaker.classify.recover", 0) == 1


# ----------------------------------------------------------------------
# stop() drain under a faulting in-flight batch (no lost tickets)
# ----------------------------------------------------------------------
def test_stop_drains_while_batch_is_faulting():
    engine = ScriptedEngine(classify_failures=10**6)
    engine.gate.clear()  # hold the in-flight batch mid-classify
    config = DaemonConfig(
        max_queue_depth=16,
        max_batch=4,
        batch_window_ms=1.0,
        cache_capacity=0,
        resilience=ResilienceConfig(retry=RetryPolicy(max_retries=0)),
    )
    daemon = ServeDaemon(engine, config)
    daemon.start()
    responses: dict[str, EngineResponse] = {}

    def client(name: str) -> None:
        responses[name] = daemon.submit(_sample(name))

    threads = [
        threading.Thread(target=client, args=(f"g{i}",)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    assert engine.entered.wait(timeout=5)
    # One more ticket lands in the queue while the batch is in flight,
    # then stop() starts draining before anything has resolved.
    late = threading.Thread(target=client, args=("late",))
    late.start()
    stopper = threading.Thread(target=daemon.stop)
    stopper.start()
    engine.gate.set()  # the held batch now fails its classify
    for thread in [*threads, late, stopper]:
        thread.join(timeout=10)
        assert not thread.is_alive()
    # Every submitter got a typed response; nobody hung, nothing raised.
    assert sorted(responses) == ["g0", "g1", "g2", "g3", "late"]
    for response in responses.values():
        assert isinstance(response, DegradedResponse)
        assert response.degradation_reason in ("unavailable", "breaker_open")
    assert daemon._thread is None


# ----------------------------------------------------------------------
# satellite regressions: zero batch window, concurrent cache access
# ----------------------------------------------------------------------
def test_zero_batch_window_serves_normally():
    engine = ScriptedEngine()
    config = DaemonConfig(batch_window_ms=0.0, max_batch=4, cache_capacity=0)
    responses = []
    with ServeDaemon(engine, config) as daemon:
        threads = [
            threading.Thread(
                target=lambda n: responses.append(daemon.submit(_sample(n))),
                args=(f"g{i}",),
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
    assert len(responses) == 4
    assert not any(r.degraded for r in responses)


def test_cache_concurrent_get_put_stress():
    cache = ExplanationCache(capacity=8)

    def _response(name: str) -> EngineResponse:
        return EngineResponse(
            name=name,
            fingerprint=f"fp-{name}",
            probabilities=np.array([1.0, 0.0]),
            predicted_class=0,
            family="fake",
            explainer="CFGExplainer",
            explanation=_explanation(),
        )

    errors: list[BaseException] = []

    def writer(offset: int) -> None:
        try:
            for i in range(200):
                cache.put(_response(f"w{(offset + i) % 32}"))
        except BaseException as error:  # pragma: no cover - diagnostic
            errors.append(error)

    def reader(offset: int) -> None:
        try:
            for i in range(200):
                hit = cache.get(f"fp-w{(offset + i) % 32}")
                if hit is not None:
                    assert hit.cached
        except BaseException as error:  # pragma: no cover - diagnostic
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
    threads += [threading.Thread(target=reader, args=(k,)) for k in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert len(cache) <= 8
    keys = cache.keys()
    assert len(keys) == len(set(keys))


def test_concurrent_submits_share_cache_entry():
    engine = ScriptedEngine()
    responses: list[EngineResponse] = []
    lock = threading.Lock()

    def client() -> None:
        response = daemon.submit(_sample("same"))
        with lock:
            responses.append(response)

    with ServeDaemon(engine, DaemonConfig(cache_capacity=8)) as daemon:
        cold = daemon.submit(_sample("same"))  # fill the cache first
        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
    assert not cold.cached
    assert len(responses) == 8
    assert len(daemon.cache) == 1
    assert all(r.fingerprint == "fp-same" for r in responses)
    assert all(r.cached for r in responses)


# ----------------------------------------------------------------------
# fault injection end-to-end on the real engine
# ----------------------------------------------------------------------
def test_injected_admission_fault_degrades_unavailable(serve_engine, serve_corpus):
    plan = FaultPlan(seed=0, stages={"sanitize": FaultSpec(error=1.0)})
    with ServeDaemon(serve_engine, DaemonConfig(), fault_plan=plan) as daemon:
        response = daemon.submit(serve_corpus[0])
    assert isinstance(response, DegradedResponse)
    assert response.degradation_reason == "unavailable"
    assert response.failed_stage == "sanitize"
    assert response.predicted_class == -1
    assert "injected" in response.detail


def test_injected_explain_fault_serves_classification_only(
    serve_engine, serve_corpus
):
    plan = FaultPlan(seed=0, stages={"explain": FaultSpec(error=1.0)})
    # Threshold above the 6 ladder attempts (2 rungs x 3 tries): the
    # breaker must not trip mid-ladder, so every rung genuinely runs.
    config = DaemonConfig(resilience=ResilienceConfig(breaker_threshold=10))
    with ServeDaemon(serve_engine, config, fault_plan=plan) as daemon:
        response = daemon.submit(serve_corpus[0])
    assert isinstance(response, DegradedResponse)
    assert response.degradation_reason == "classification_only"
    assert response.explanation is None
    # Classification survived: real, finite probabilities.
    probabilities = np.asarray(response.probabilities)
    assert np.all(np.isfinite(probabilities))
    assert probabilities.sum() == pytest.approx(1.0, abs=1e-6)
    assert 0 <= response.predicted_class < len(serve_engine.families)


def test_empty_fault_plan_bit_identical_to_engine(serve_engine, serve_corpus):
    direct = serve_engine.submit(serve_corpus[1])
    with ServeDaemon(
        serve_engine, DaemonConfig(), fault_plan=FaultPlan()
    ) as daemon:
        served = daemon.submit(serve_corpus[1])
    assert not served.degraded
    assert served.fingerprint == direct.fingerprint
    np.testing.assert_array_equal(served.probabilities, direct.probabilities)
    np.testing.assert_array_equal(
        served.explanation.node_order, direct.explanation.node_order
    )
    np.testing.assert_array_equal(
        served.explanation.node_scores, direct.explanation.node_scores
    )
