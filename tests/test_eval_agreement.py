"""Tests for the static-agreement metric (repro.eval.agreement)."""

import numpy as np

from repro.acfg import from_sample
from repro.disasm import ProgramBuilder, build_cfg
from repro.eval.agreement import (
    agreement_rows,
    format_agreement,
    static_agreement,
    suspicious_blocks,
)
from repro.explain.base import ladder_from_order
from repro.explain.explanation import Explanation
from repro.malgen.corpus import LabeledSample, block_motif_tags


def five_block_sample():
    """Five blocks; only block 2 contains a statically suspicious XOR."""
    builder = ProgramBuilder("agree")
    builder.emit("mov", "eax", "1")
    builder.emit("jmp", "b1")
    builder.label("b1")
    builder.emit("mov", "ebx", "2")
    builder.emit("jmp", "b2")
    builder.label("b2")
    builder.emit("xor", "[ecx]", "al")  # memory XOR: always suspicious
    builder.emit("jmp", "b3")
    builder.label("b3")
    builder.emit("inc", "eax")
    builder.emit("jmp", "b4")
    builder.label("b4")
    builder.emit("ret")
    program = builder.build()
    cfg = build_cfg(program)
    assert cfg.node_count == 5
    return LabeledSample(
        program=program,
        cfg=cfg,
        family="Benign",
        label=0,
        motif_spans=[],
        block_tags=block_motif_tags(cfg, []),
    )


def explanation_with_order(sample, order, step_size=20):
    graph = from_sample(sample)
    node_order = np.asarray(order, dtype=int)
    return Explanation(
        graph=graph,
        explainer_name="handmade",
        predicted_class=0,
        node_order=node_order,
        levels=ladder_from_order(graph, node_order, step_size),
    )


class TestSuspiciousBlocks:
    def test_only_the_xor_block_is_flagged(self):
        sample = five_block_sample()
        assert suspicious_blocks(sample) == frozenset({2})

    def test_clean_program_has_no_signal(self):
        builder = ProgramBuilder("clean")
        builder.emit("mov", "eax", "1")
        builder.emit("ret")
        program = builder.build()
        cfg = build_cfg(program)
        sample = LabeledSample(
            program=program,
            cfg=cfg,
            family="Benign",
            label=0,
            motif_spans=[],
            block_tags=block_motif_tags(cfg, []),
        )
        assert suspicious_blocks(sample) == frozenset()


class TestStaticAgreement:
    def test_top_ranked_suspicious_block_scores_full_coverage(self):
        sample = five_block_sample()
        explanation = explanation_with_order(sample, [2, 0, 1, 3, 4])
        scored, coverage, baseline = static_agreement(
            [(sample, explanation)], fraction=0.2
        )
        assert scored == 1
        assert coverage == 1.0
        assert 0.0 < baseline <= 0.3  # one of five nodes kept

    def test_bottom_ranked_suspicious_block_scores_zero(self):
        sample = five_block_sample()
        explanation = explanation_with_order(sample, [0, 1, 3, 4, 2])
        _, coverage, _ = static_agreement([(sample, explanation)], fraction=0.2)
        assert coverage == 0.0

    def test_graphs_without_signal_are_skipped(self):
        scored, coverage, baseline = static_agreement([], fraction=0.2)
        assert (scored, coverage, baseline) == (0, 0.0, 0.0)


class TestAgreementRows:
    def make_sweeps(self, sample, order_by_explainer):
        from repro.eval.sweep import FamilySweep

        sweeps = {"Benign": {}}
        for name, order in order_by_explainer.items():
            explanation = explanation_with_order(sample, order)
            sweeps["Benign"][name] = FamilySweep(
                family="Benign",
                explainer_name=name,
                fractions=np.array([0.2, 1.0]),
                accuracies=np.array([1.0, 1.0]),
                explanations=[explanation],
            )
        return sweeps

    def test_rows_rank_explainers_by_agreement(self):
        sample = five_block_sample()
        sweeps = self.make_sweeps(
            sample, {"good": [2, 0, 1, 3, 4], "bad": [0, 1, 3, 4, 2]}
        )
        rows = agreement_rows(
            sweeps, {sample.program.name: sample}, fraction=0.2
        )
        by_name = {row.explainer_name: row for row in rows}
        assert by_name["good"].coverage == 1.0
        assert by_name["bad"].coverage == 0.0
        assert by_name["good"].graphs_scored == 1

    def test_format_agreement_renders_every_row(self):
        sample = five_block_sample()
        sweeps = self.make_sweeps(sample, {"good": [2, 0, 1, 3, 4]})
        rows = agreement_rows(sweeps, {sample.program.name: sample})
        text = format_agreement(rows)
        assert "good" in text
        assert "Coverage@20%" in text

    def test_format_agreement_empty(self):
        assert "no graphs" in format_agreement([])
