"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disasm import build_cfg
from repro.malgen import (
    FAMILIES,
    GENERIC_MOTIFS,
    MOTIF_LIBRARY,
    MotifWriter,
    api_names,
    family_profile,
    generate_corpus,
    generate_program,
)
from repro.malgen.apis import group_of
from repro.disasm.program import ProgramBuilder


class TestApis:
    def test_groups_nonempty(self):
        for names in api_names(), api_names("network"), api_names("process"):
            assert names

    def test_unknown_group_raises(self):
        with pytest.raises(ValueError, match="unknown API group"):
            api_names("nonexistent")

    def test_group_of(self):
        assert group_of("CreateThread") == "process"
        assert group_of("RegOpenKeyExA") == "registry"
        assert group_of("NotAnApi") is None


class TestMotifLibrary:
    def test_all_families_registered(self):
        assert FAMILIES == (
            "Bagle", "Bifrose", "Hupigon", "Ldpinch", "Lmir", "Rbot",
            "Sdbot", "Swizzor", "Vundo", "Zbot", "Zlob", "Benign",
        )

    def test_generic_motifs_are_subset(self):
        assert GENERIC_MOTIFS <= set(MOTIF_LIBRARY)
        assert len(GENERIC_MOTIFS) >= 4

    @pytest.mark.parametrize("name", sorted(MOTIF_LIBRARY))
    def test_each_motif_emits_valid_code(self, name):
        """Every motif must produce a buildable program with a valid CFG."""
        rng = np.random.default_rng(7)
        writer = MotifWriter(ProgramBuilder(name))
        span = writer.run_motif(name, rng)
        assert span.stop > span.start, "motif emitted nothing"
        writer.emit("ret")
        writer.flush_helpers(rng)
        cfg = build_cfg(writer.build())
        assert cfg.node_count >= 1

    def test_unknown_motif_raises(self):
        writer = MotifWriter(ProgramBuilder())
        with pytest.raises(ValueError, match="unknown motif"):
            writer.run_motif("no_such_motif", np.random.default_rng(0))

    def test_helper_reuse(self):
        rng = np.random.default_rng(0)
        writer = MotifWriter(ProgramBuilder())
        writer.run_motif("seh_prolog", rng)
        writer.run_motif("seh_prolog", rng)
        writer.emit("ret")
        writer.flush_helpers(rng)
        program = writer.build()
        assert "_SEH_prolog" in program.labels


class TestFamilyProfiles:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_profile_exists(self, family):
        profile = family_profile(family)
        assert profile.name == family
        assert set(profile.signature_motifs) <= set(MOTIF_LIBRARY)

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown family"):
            family_profile("NotAFamily")


class TestGenerateProgram:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_generates_valid_cfg(self, family):
        program, spans = generate_program(family, seed=3)
        cfg = build_cfg(program)
        assert cfg.node_count > 5
        assert cfg.edge_count > 5
        assert spans

    def test_deterministic_per_seed(self):
        p1, s1 = generate_program("Rbot", seed=42)
        p2, s2 = generate_program("Rbot", seed=42)
        assert p1.to_text() == p2.to_text()
        assert s1 == s2

    def test_different_seeds_differ(self):
        p1, _ = generate_program("Rbot", seed=1)
        p2, _ = generate_program("Rbot", seed=2)
        assert p1.to_text() != p2.to_text()

    @settings(max_examples=20, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=100_000),
    )
    def test_property_every_program_builds(self, family, seed):
        """Any (family, seed) pair yields a structurally valid program."""
        program, spans = generate_program(family, seed)
        cfg = build_cfg(program)
        matrix = cfg.adjacency_matrix()
        assert set(np.unique(matrix)) <= {0, 1, 2}
        # Spans are within bounds and non-overlapping by construction order.
        for span in spans:
            assert 0 <= span.start <= span.stop <= len(program)


class TestGenerateCorpus:
    def test_balanced_and_labelled(self):
        corpus = generate_corpus(3, seed=1)
        assert len(corpus) == 3 * len(FAMILIES)
        by_family = {}
        for sample in corpus:
            by_family.setdefault(sample.family, []).append(sample)
            assert FAMILIES[sample.label] == sample.family
        assert all(len(v) == 3 for v in by_family.values())

    def test_block_tags_align_with_blocks(self):
        corpus = generate_corpus(1, seed=2)
        for sample in corpus:
            assert len(sample.block_tags) == sample.cfg.node_count

    def test_malware_families_have_signature_blocks(self):
        corpus = generate_corpus(2, seed=3)
        for sample in corpus:
            if sample.family != "Benign":
                assert sample.signature_blocks, f"{sample.family} has no signature blocks"

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            generate_corpus(0)

    def test_disjoint_base_seeds_do_not_collide(self):
        c1 = generate_corpus(1, seed=0)
        c2 = generate_corpus(1, seed=1)
        texts1 = {s.program.to_text() for s in c1}
        texts2 = {s.program.to_text() for s in c2}
        assert not texts1 & texts2
